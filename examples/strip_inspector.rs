//! Inspect the strip-graph extraction on the Table II presets: how many
//! strips and strip edges the aggregation produces versus the raw grid
//! graph, plus a visual of strips on a small map.
//!
//! ```sh
//! cargo run --release --example strip_inspector
//! ```

use srp_warehouse::prelude::*;
use srp_warehouse::srp::{StripDir, StripKind};

fn main() {
    // Visual: paint strip ids (mod 36) over a small generated layout.
    let layout = LayoutConfig::small().generate();
    let graph = StripGraph::build(&layout.matrix);
    println!(
        "small layout {}×{}: {} strips / {} cells\n",
        layout.matrix.rows(),
        layout.matrix.cols(),
        graph.num_vertices(),
        layout.matrix.num_cells()
    );
    const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    for i in 0..layout.matrix.rows() {
        let mut line = String::new();
        for j in 0..layout.matrix.cols() {
            let cell = Cell::new(i, j);
            let id = graph.strip_of(&layout.matrix, cell) as usize;
            let ch = if layout.matrix.is_rack(cell) {
                '#'
            } else {
                GLYPHS[id % GLYPHS.len()] as char
            };
            line.push(ch);
        }
        println!("  {line}");
    }
    println!("\n  (# = rack strip cell; letters/digits = aisle strip id mod 36)\n");

    // Table II reproduction: grid vs strip scale on all presets.
    println!(
        "{:<6} {:>9} {:>7} {:>8} {:>8} | {:>10} {:>10} | {:>10} {:>10} | {:>6} {:>6}",
        "Name",
        "H×W",
        "#Rack",
        "#Robot",
        "#Picker",
        "grid #V",
        "grid #E",
        "strip #V",
        "strip #E",
        "V%",
        "E%"
    );
    for preset in WarehousePreset::ALL {
        let layout = preset.generate();
        let stats = layout.stats();
        let graph = StripGraph::build(&layout.matrix);
        println!(
            "{:<6} {:>9} {:>7} {:>8} {:>8} | {:>10} {:>10} | {:>10} {:>10} | {:>5.1}% {:>5.1}%",
            preset.name(),
            format!("{}x{}", stats.rows, stats.cols),
            stats.racks,
            stats.robots,
            stats.pickers,
            stats.grid_vertices,
            stats.grid_edges,
            graph.num_vertices(),
            graph.num_edges(),
            100.0 * graph.num_vertices() as f64 / stats.grid_vertices as f64,
            100.0 * graph.num_edges() as f64 / stats.grid_edges as f64,
        );
    }

    // Strip composition of the largest preset.
    let layout = WarehousePreset::W3.generate();
    let graph = StripGraph::build(&layout.matrix);
    let mut lat = 0;
    let mut lon_aisle = 0;
    let mut lon_rack = 0;
    let mut len_sum = 0u64;
    for s in &graph.strips {
        len_sum += s.len() as u64;
        match (s.dir, s.kind) {
            (StripDir::Latitudinal, _) => lat += 1,
            (StripDir::Longitudinal, StripKind::Aisle) => lon_aisle += 1,
            (StripDir::Longitudinal, StripKind::Rack) => lon_rack += 1,
        }
    }
    println!(
        "\nW-3 strip composition: {lat} latitudinal aisles, {lon_aisle} longitudinal aisles, \
         {lon_rack} rack strips; mean strip length {:.1} grids",
        len_sum as f64 / graph.num_vertices() as f64
    );
}
