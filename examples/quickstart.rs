//! Quickstart: build a small warehouse, plan a handful of collision-free
//! routes with SRP, and print the routes on an ASCII map.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use srp_warehouse::prelude::*;
use srp_warehouse::warehouse::render::Canvas;

fn main() {
    // A miniature warehouse: two rack clusters, aisles all around.
    let matrix = WarehouseMatrix::from_ascii(
        "..........\n\
         .##...##..\n\
         .##...##..\n\
         .##...##..\n\
         ..........\n\
         .##...##..\n\
         .##...##..\n\
         ..........",
    );
    println!(
        "Warehouse ({} × {} grids, {} racks):",
        matrix.rows(),
        matrix.cols(),
        matrix.num_racks()
    );
    println!("{}", matrix.to_ascii());

    let mut planner = SrpPlanner::new(matrix.clone(), SrpConfig::default());
    println!(
        "Strip graph: {} strips, {} edges (vs {} grid cells)\n",
        planner.graph().num_vertices(),
        planner.graph().num_edges(),
        matrix.num_cells()
    );

    // Three requests: a pickup to a rack, a crossing trip, and a return.
    let requests = [
        Request::new(0, 0, Cell::new(0, 0), Cell::new(2, 1), QueryKind::Pickup),
        Request::new(
            1,
            0,
            Cell::new(7, 9),
            Cell::new(0, 9),
            QueryKind::Transmission,
        ),
        Request::new(2, 1, Cell::new(4, 5), Cell::new(6, 7), QueryKind::Return),
    ];

    let mut routes = Vec::new();
    for req in &requests {
        match planner.plan(req) {
            PlanOutcome::Planned(route) => {
                println!(
                    "request {}: {} → {}  start t={} duration {} steps",
                    req.id,
                    req.origin,
                    req.destination,
                    route.start,
                    route.duration()
                );
                print_route(&matrix, &route);
                routes.push(route);
            }
            PlanOutcome::Infeasible => println!("request {} infeasible", req.id),
        }
    }

    // The planner guarantees mutual collision-freedom; double-check with
    // the ground-truth validator.
    match srp_warehouse::warehouse::collision::validate_routes(&routes) {
        None => println!("✓ all {} routes mutually collision-free", routes.len()),
        Some(c) => println!("✗ conflict found: {c:?}"),
    }
}

/// Draw the route onto the map with digits marking visit order (mod 10).
fn print_route(matrix: &WarehouseMatrix, route: &srp_warehouse::prelude::Route) {
    let mut canvas = Canvas::from_matrix(matrix);
    canvas.draw_route(route);
    for line in canvas.render().lines() {
        println!("  {line}");
    }
    println!();
}
