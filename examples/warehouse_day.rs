//! Simulate a (scaled-down) day of warehouse operation on the W-1 preset
//! and compare SRP with one baseline of your choice.
//!
//! ```sh
//! cargo run --release --example warehouse_day -- [tasks] [baseline]
//! # e.g.
//! cargo run --release --example warehouse_day -- 300 ACP
//! ```
//!
//! `baseline` is one of SAP, RP, TWP, ACP (default ACP).

use srp_warehouse::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tasks_n: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let baseline = args
        .get(2)
        .map(String::as_str)
        .unwrap_or("ACP")
        .to_uppercase();

    println!("Generating W-1 layout (Table II scale)…");
    let layout = WarehousePreset::W1.generate();
    let stats = layout.stats();
    println!(
        "  {} × {} grids, {} racks, {} robots, {} pickers",
        stats.rows, stats.cols, stats.racks, stats.robots, stats.pickers
    );

    let horizon = 1800; // half an hour of simulated time
    let tasks = generate_tasks(&layout, &DayProfile::new(horizon, tasks_n), 2023);
    println!(
        "  {} delivery tasks over {horizon}s (3 planning queries each)\n",
        tasks.len()
    );

    let srp = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
    let (srp_report, srp_planner) =
        Simulation::new(&layout, &tasks, srp, SimConfig::default()).run();
    print_report(&srp_report);
    println!(
        "    strips settled {}, intra calls {}, fallbacks {}\n",
        srp_planner.stats.strips_settled,
        srp_planner.stats.intra_calls,
        srp_planner.stats.fallbacks
    );

    let baseline_report = match baseline.as_str() {
        "SAP" => {
            let p = SapPlanner::new(layout.matrix.clone(), AStarConfig::default());
            Simulation::new(&layout, &tasks, p, SimConfig::default())
                .run()
                .0
        }
        "RP" => {
            let p = RpPlanner::new(layout.matrix.clone(), RpConfig::default());
            Simulation::new(&layout, &tasks, p, SimConfig::default())
                .run()
                .0
        }
        "TWP" => {
            let p = TwpPlanner::new(layout.matrix.clone(), TwpConfig::default());
            Simulation::new(&layout, &tasks, p, SimConfig::default())
                .run()
                .0
        }
        "ACP" => {
            let p = AcpPlanner::new(layout.matrix.clone(), AcpConfig::default());
            Simulation::new(&layout, &tasks, p, SimConfig::default())
                .run()
                .0
        }
        other => {
            eprintln!("unknown baseline {other}; use SAP, RP, TWP or ACP");
            std::process::exit(1);
        }
    };
    print_report(&baseline_report);

    println!();
    println!(
        "SRP vs {}: {:.1}× faster planning, {:.1}× less memory, makespan ratio {:.3}",
        baseline_report.planner,
        baseline_report.planning_secs / srp_report.planning_secs.max(1e-9),
        baseline_report.peak_memory_bytes as f64 / srp_report.peak_memory_bytes.max(1) as f64,
        srp_report.makespan as f64 / baseline_report.makespan.max(1) as f64,
    );
}

fn print_report(r: &DayReport) {
    println!("[{}]", r.planner);
    println!("    tasks completed   {}/{}", r.completed, r.tasks);
    println!("    makespan (OG)     {} s", r.makespan);
    println!("    planning (TC)     {:.3} s", r.planning_secs);
    println!(
        "    peak memory (MC)  {:.1} KiB",
        r.peak_memory_bytes as f64 / 1024.0
    );
    println!("    audit conflicts   {}", r.audit_conflicts);
}
