//! Visualize how SRP turns route collisions into segment intersections
//! (§V, Figs. 4–6): draws space-time diagrams of segments within one strip
//! and reports what the exact intersection test and the paper's Eq. (2)/(3)
//! say about each pair.
//!
//! ```sh
//! cargo run --example collision_debug
//! ```

use srp_warehouse::geometry::{
    collide_paper, collision_time_paper, earliest_collision, CollisionKind, Segment,
};
use srp_warehouse::warehouse::render::space_time_diagram;

fn main() {
    let scenarios: &[(&str, Segment, Segment)] = &[
        (
            "head-on crossing between integer times (swap conflict, Fig. 6(b))",
            Segment::travel(0, 0, 5),
            Segment::travel(0, 5, 0),
        ),
        (
            "head-on meeting exactly on a grid (vertex conflict, Fig. 6(a))",
            Segment::travel(0, 0, 4),
            Segment::travel(0, 4, 0),
        ),
        (
            "mover vs. parked robot (slope 0)",
            Segment::travel(0, 0, 7),
            Segment::wait(2, 9, 4),
        ),
        (
            "follower one step behind the leader (no conflict)",
            Segment::travel(0, 0, 6),
            Segment::travel(1, 0, 6),
        ),
        (
            "collinear overlap the strict Eq.(2) misses",
            Segment::travel(0, 0, 6),
            Segment::travel(3, 3, 9),
        ),
    ];

    for (label, phi, psi) in scenarios {
        println!("── {label}");
        println!("   φ = {phi}    ψ = {psi}");
        draw(phi, psi);
        match earliest_collision(phi, psi) {
            Some(c) => {
                let kind = match c.kind {
                    CollisionKind::Vertex => "vertex",
                    CollisionKind::Swap => "swap",
                };
                println!("   exact test: {kind} conflict at t = {}", c.time);
            }
            None => println!("   exact test: no conflict"),
        }
        println!(
            "   paper Eq.(2): {}   Eq.(3) time: {}",
            if collide_paper(phi, psi) {
                "intersect"
            } else {
                "no proper crossing"
            },
            collision_time_paper(phi, psi)
        );
        println!();
    }
}

/// ASCII space-time diagram: rows = grid numbers (space), cols = time.
fn draw(phi: &Segment, psi: &Segment) {
    let traj = |seg: &Segment| -> Vec<i32> { seg.occupancy().map(|(_, s)| s).collect() };
    let diagram = space_time_diagram(&[('φ', traj(phi), phi.t0), ('ψ', traj(psi), psi.t0)]);
    for line in diagram.lines() {
        println!("   {line}");
    }
}
