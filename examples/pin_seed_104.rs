//! Regenerate (or verify) the pinned seed-104 `ReproBundle` fixture.
//!
//! The original proptest byte-seed of the seed-104 collision regression
//! predates the vendored RNG and can no longer be decoded, so the replay
//! grid in `tests/prop_end_to_end.rs` re-derives the instance space
//! deterministically. This fixture goes one step further: it freezes the
//! densest grid instance (the one whose rack count matches the historical
//! shrink) as an explicit, self-contained JSON repro under
//! `crates/srp/tests/fixtures/`, so the exact layout and request stream
//! survive any future change to the layout generator or task RNG.
//!
//! ```sh
//! cargo run --example pin_seed_104            # verify the fixture is current
//! cargo run --example pin_seed_104 -- --write # rewrite the fixture
//! ```

use srp_warehouse::prelude::*;

const FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/crates/srp/tests/fixtures/seed_104.json"
);

/// The pinned instance: the densest configuration of the
/// `seed_104_regression_replay` grid (cluster 2×4, tightest aisles,
/// 79 requested racks) with the historical request stream
/// `generate_requests(layout, 40, 3.0, 104)`.
pub fn seed_104_layout() -> LayoutConfig {
    LayoutConfig {
        rows: 24,
        cols: 20,
        cluster_len: 4,
        col_gap: 1,
        band_gap: 1,
        margin_top: 2,
        margin_bottom: 3,
        margin_left: 2,
        margin_right: 2,
        target_racks: 79,
        pickers: 4,
        robots: 6,
    }
}

fn build_bundle() -> ReproBundle {
    let cfg = seed_104_layout();
    let layout = cfg.generate();
    let requests = generate_requests(&layout, 40, 3.0, 104);
    ReproBundle {
        layout: cfg,
        requests,
        conflict: "historical: seed-104 shrink of srp_streams_are_collision_free — \
                   swap conflict between two committed SRP routes; fixed in PR 1, \
                   pinned here as a permanent replay instance"
            .into(),
        provenance: vec![
            "existing: direct strip search (historical)".into(),
            "incoming: direct strip search (historical)".into(),
        ],
        timeline: "regenerate by replaying the bundle: plan every request in order \
                   and audit each commit (see seed_104_regression_replay)"
            .into(),
    }
}

fn main() {
    let json = build_bundle().to_json();
    let write = std::env::args().any(|a| a == "--write");
    if write {
        std::fs::write(FIXTURE_PATH, format!("{json}\n")).expect("fixture written");
        println!("wrote {FIXTURE_PATH} ({} bytes)", json.len() + 1);
        return;
    }
    match std::fs::read_to_string(FIXTURE_PATH) {
        Ok(on_disk) if on_disk.trim_end() == json => {
            println!("fixture is current: {FIXTURE_PATH}");
        }
        Ok(_) => {
            eprintln!("fixture is STALE — rerun with --write: {FIXTURE_PATH}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("fixture missing ({e}) — rerun with --write: {FIXTURE_PATH}");
            std::process::exit(1);
        }
    }
}
