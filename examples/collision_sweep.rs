//! Exhaustive collision sweep over the `prop_end_to_end` instance space.
//!
//! Plans a 40-request stream on every layout-shape/seed combination,
//! audits every commit online with the incremental auditor, and validates
//! the committed routes with the ground-truth batch validator. Prints one
//! line per failing instance (layout knobs, seed, first conflict and the
//! provenance of the offending routes) so a regression can be pinned as an
//! explicit test.
//!
//! Run with: `cargo run --release --example collision_sweep [seeds] [requests] [rate]`

use srp_warehouse::prelude::*;
use srp_warehouse::warehouse::collision::validate_routes;

fn main() {
    let mut args = std::env::args().skip(1);
    let seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(200);
    let n_requests: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(40);
    let rate: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3.0);
    let mut instances = 0u64;
    let mut failures = 0u64;
    let (mut planned, mut retries, mut fallbacks, mut infeasible) =
        (0usize, 0usize, 0usize, 0usize);
    for cluster_len in 2u16..5 {
        for col_gap in 1u16..3 {
            for band_gap in 1u16..3 {
                for racks in (16u32..80).step_by(7) {
                    let cfg = LayoutConfig {
                        rows: 24,
                        cols: 20,
                        cluster_len,
                        col_gap,
                        band_gap,
                        margin_top: 2,
                        margin_bottom: 3,
                        margin_left: 2,
                        margin_right: 2,
                        target_racks: racks,
                        pickers: 4,
                        robots: 6,
                    };
                    let layout = cfg.generate();
                    for seed in 0..seeds {
                        instances += 1;
                        let mut planner =
                            SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
                        let requests = generate_requests(&layout, n_requests, rate, seed);
                        let mut auditor = IncrementalAuditor::new();
                        let mut routes = Vec::new();
                        for req in &requests {
                            if let PlanOutcome::Planned(r) = planner.plan(req) {
                                if let Err(e) = r.validate(&layout.matrix) {
                                    failures += 1;
                                    println!(
                                        "INVALID cluster_len={cluster_len} col_gap={col_gap} \
                                         band_gap={band_gap} racks={racks} seed={seed} \
                                         req={} err={e:?}",
                                        req.id
                                    );
                                }
                                if let Err(c) = auditor.commit(req.id, &r) {
                                    failures += 1;
                                    println!(
                                        "AUDIT cluster_len={cluster_len} col_gap={col_gap} \
                                         band_gap={band_gap} racks={racks} seed={seed} {c}\n\
                                         \x20 existing: {}\n  incoming: {}",
                                        planner
                                            .provenance(c.existing)
                                            .unwrap_or_else(|| "unrecorded".into()),
                                        planner
                                            .provenance(c.incoming)
                                            .unwrap_or_else(|| "unrecorded".into()),
                                    );
                                }
                                routes.push(r);
                            }
                        }
                        planned += planner.stats.planned;
                        retries += planner.stats.retries;
                        fallbacks += planner.stats.fallbacks;
                        infeasible += planner.stats.infeasible;
                        if let Some(c) = validate_routes(&routes) {
                            failures += 1;
                            println!(
                                "CONFLICT cluster_len={cluster_len} col_gap={col_gap} \
                                 band_gap={band_gap} racks={racks} seed={seed} {c:?}"
                            );
                        }
                    }
                }
            }
        }
    }
    println!(
        "swept {instances} instances, {failures} failures \
         (planned={planned} retries={retries} fallbacks={fallbacks} infeasible={infeasible})"
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
