//! # srp-warehouse
//!
//! A full Rust reproduction of *"Collision-Aware Route Planning in
//! Warehouses Made Efficient: A Strip-based Framework"* (ICDE 2023):
//! the SRP planner, the grid-level substrate, the four baselines of the
//! paper's evaluation, and the online test environment that regenerates
//! its tables and figures.
//!
//! This meta-crate re-exports the workspace:
//!
//! * [`warehouse`] — the CARP problem domain: matrix, layouts, tasks,
//!   routes, conflict semantics, the [`warehouse::Planner`] trait;
//! * [`geometry`] — exact space-time segment geometry and the slope index;
//! * [`srp`] — the strip-based planner (the paper's contribution);
//! * [`spacetime`] — space-time A\*, reservation tables, CBS;
//! * [`baselines`] — SAP, RP, TWP, ACP;
//! * [`simenv`] — the day simulator and OG/TC/MC metrics;
//! * [`service`] — the online planning service (bounded queue,
//!   backpressure, deadlines) and its deterministic load generator.
//!
//! ## Quickstart
//!
//! ```
//! use srp_warehouse::prelude::*;
//!
//! // A tiny warehouse with one rack cluster.
//! let matrix = WarehouseMatrix::from_ascii(
//!     "......\n\
//!      .##...\n\
//!      .##...\n\
//!      ......");
//! let mut planner = SrpPlanner::new(matrix, SrpConfig::default());
//! let request = Request::new(0, 0, Cell::new(0, 0), Cell::new(3, 5), QueryKind::Pickup);
//! let route = planner.plan(&request).route().cloned().expect("collision-free route");
//! assert_eq!(route.destination(), Cell::new(3, 5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use carp_baselines as baselines;
pub use carp_geometry as geometry;
pub use carp_service as service;
pub use carp_simenv as simenv;
pub use carp_spacetime as spacetime;
pub use carp_srp as srp;
pub use carp_warehouse as warehouse;

/// Everything needed for typical use in one import.
pub mod prelude {
    pub use carp_baselines::{
        AcpConfig, AcpPlanner, RpConfig, RpPlanner, SapPlanner, TwpConfig, TwpPlanner,
    };
    pub use carp_geometry::{NaiveStore, Segment, SegmentStore, SlopeIndexStore};
    pub use carp_service::{LoadScenario, PlanningService, ServiceConfig, ServiceMetrics};
    pub use carp_simenv::{DayReport, ReproBundle, SimConfig, Simulation};
    pub use carp_spacetime::AStarConfig;
    pub use carp_srp::{PlannerPath, Provenance, SrpConfig, SrpPlanner, StripGraph};
    pub use carp_warehouse::layout::{LayoutConfig, WarehousePreset};
    pub use carp_warehouse::tasks::{generate_requests, generate_tasks, DayProfile};
    pub use carp_warehouse::types::Cell;
    pub use carp_warehouse::{
        AuditConflict, Conflict, ConflictKind, IncrementalAuditor, PlanOutcome, Planner, QueryKind,
        Request, Route, WarehouseMatrix,
    };
}
