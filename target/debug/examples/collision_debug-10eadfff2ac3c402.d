/root/repo/target/debug/examples/collision_debug-10eadfff2ac3c402.d: examples/collision_debug.rs

/root/repo/target/debug/examples/libcollision_debug-10eadfff2ac3c402.rmeta: examples/collision_debug.rs

examples/collision_debug.rs:
