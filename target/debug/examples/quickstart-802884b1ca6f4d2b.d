/root/repo/target/debug/examples/quickstart-802884b1ca6f4d2b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-802884b1ca6f4d2b: examples/quickstart.rs

examples/quickstart.rs:
