/root/repo/target/debug/examples/quickstart-ed337a9374338970.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-ed337a9374338970.rmeta: examples/quickstart.rs

examples/quickstart.rs:
