/root/repo/target/debug/examples/warehouse_day-b1261d78d52fae7b.d: examples/warehouse_day.rs

/root/repo/target/debug/examples/warehouse_day-b1261d78d52fae7b: examples/warehouse_day.rs

examples/warehouse_day.rs:
