/root/repo/target/debug/examples/warehouse_day-80cef30fb8df57a5.d: examples/warehouse_day.rs Cargo.toml

/root/repo/target/debug/examples/libwarehouse_day-80cef30fb8df57a5.rmeta: examples/warehouse_day.rs Cargo.toml

examples/warehouse_day.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
