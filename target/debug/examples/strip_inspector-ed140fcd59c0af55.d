/root/repo/target/debug/examples/strip_inspector-ed140fcd59c0af55.d: examples/strip_inspector.rs

/root/repo/target/debug/examples/strip_inspector-ed140fcd59c0af55: examples/strip_inspector.rs

examples/strip_inspector.rs:
