/root/repo/target/debug/examples/strip_inspector-d0678a92c4e4adaf.d: examples/strip_inspector.rs

/root/repo/target/debug/examples/libstrip_inspector-d0678a92c4e4adaf.rmeta: examples/strip_inspector.rs

examples/strip_inspector.rs:
