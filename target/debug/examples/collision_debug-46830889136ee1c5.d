/root/repo/target/debug/examples/collision_debug-46830889136ee1c5.d: examples/collision_debug.rs

/root/repo/target/debug/examples/collision_debug-46830889136ee1c5: examples/collision_debug.rs

examples/collision_debug.rs:
