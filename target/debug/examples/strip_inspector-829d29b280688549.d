/root/repo/target/debug/examples/strip_inspector-829d29b280688549.d: examples/strip_inspector.rs Cargo.toml

/root/repo/target/debug/examples/libstrip_inspector-829d29b280688549.rmeta: examples/strip_inspector.rs Cargo.toml

examples/strip_inspector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
