/root/repo/target/debug/examples/collision_debug-35e28aeb7304fbb7.d: examples/collision_debug.rs Cargo.toml

/root/repo/target/debug/examples/libcollision_debug-35e28aeb7304fbb7.rmeta: examples/collision_debug.rs Cargo.toml

examples/collision_debug.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
