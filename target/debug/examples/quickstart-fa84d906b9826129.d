/root/repo/target/debug/examples/quickstart-fa84d906b9826129.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-fa84d906b9826129.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
