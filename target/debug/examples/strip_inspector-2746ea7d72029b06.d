/root/repo/target/debug/examples/strip_inspector-2746ea7d72029b06.d: examples/strip_inspector.rs

/root/repo/target/debug/examples/strip_inspector-2746ea7d72029b06: examples/strip_inspector.rs

examples/strip_inspector.rs:
