/root/repo/target/debug/examples/audit_demo_tmp-b62f66ac19c3feae.d: examples/audit_demo_tmp.rs

/root/repo/target/debug/examples/audit_demo_tmp-b62f66ac19c3feae: examples/audit_demo_tmp.rs

examples/audit_demo_tmp.rs:
