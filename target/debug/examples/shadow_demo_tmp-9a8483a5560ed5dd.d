/root/repo/target/debug/examples/shadow_demo_tmp-9a8483a5560ed5dd.d: examples/shadow_demo_tmp.rs

/root/repo/target/debug/examples/shadow_demo_tmp-9a8483a5560ed5dd: examples/shadow_demo_tmp.rs

examples/shadow_demo_tmp.rs:
