/root/repo/target/debug/examples/collision_sweep-fa126e985f8ff9a7.d: examples/collision_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libcollision_sweep-fa126e985f8ff9a7.rmeta: examples/collision_sweep.rs Cargo.toml

examples/collision_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
