/root/repo/target/debug/examples/strip_inspector-c5ab10fa6a230078.d: examples/strip_inspector.rs Cargo.toml

/root/repo/target/debug/examples/libstrip_inspector-c5ab10fa6a230078.rmeta: examples/strip_inspector.rs Cargo.toml

examples/strip_inspector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
