/root/repo/target/debug/examples/warehouse_day-9f2516d0a8d3d42e.d: examples/warehouse_day.rs Cargo.toml

/root/repo/target/debug/examples/libwarehouse_day-9f2516d0a8d3d42e.rmeta: examples/warehouse_day.rs Cargo.toml

examples/warehouse_day.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
