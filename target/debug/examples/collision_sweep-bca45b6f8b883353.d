/root/repo/target/debug/examples/collision_sweep-bca45b6f8b883353.d: examples/collision_sweep.rs

/root/repo/target/debug/examples/libcollision_sweep-bca45b6f8b883353.rmeta: examples/collision_sweep.rs

examples/collision_sweep.rs:
