/root/repo/target/debug/examples/warehouse_day-219f020e18f21054.d: examples/warehouse_day.rs

/root/repo/target/debug/examples/libwarehouse_day-219f020e18f21054.rmeta: examples/warehouse_day.rs

examples/warehouse_day.rs:
