/root/repo/target/debug/examples/quickstart-76cc3ea818f85854.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-76cc3ea818f85854: examples/quickstart.rs

examples/quickstart.rs:
