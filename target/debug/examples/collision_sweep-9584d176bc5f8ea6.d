/root/repo/target/debug/examples/collision_sweep-9584d176bc5f8ea6.d: examples/collision_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libcollision_sweep-9584d176bc5f8ea6.rmeta: examples/collision_sweep.rs Cargo.toml

examples/collision_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
