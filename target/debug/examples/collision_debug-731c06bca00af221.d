/root/repo/target/debug/examples/collision_debug-731c06bca00af221.d: examples/collision_debug.rs

/root/repo/target/debug/examples/collision_debug-731c06bca00af221: examples/collision_debug.rs

examples/collision_debug.rs:
