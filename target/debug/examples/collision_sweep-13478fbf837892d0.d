/root/repo/target/debug/examples/collision_sweep-13478fbf837892d0.d: examples/collision_sweep.rs

/root/repo/target/debug/examples/collision_sweep-13478fbf837892d0: examples/collision_sweep.rs

examples/collision_sweep.rs:
