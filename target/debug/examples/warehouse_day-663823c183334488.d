/root/repo/target/debug/examples/warehouse_day-663823c183334488.d: examples/warehouse_day.rs

/root/repo/target/debug/examples/warehouse_day-663823c183334488: examples/warehouse_day.rs

examples/warehouse_day.rs:
