/root/repo/target/debug/deps/cross_planner-8ed0bd4288251cd1.d: tests/cross_planner.rs

/root/repo/target/debug/deps/libcross_planner-8ed0bd4288251cd1.rmeta: tests/cross_planner.rs

tests/cross_planner.rs:
