/root/repo/target/debug/deps/prop_intra-6cbb6ae895e2bff3.d: crates/srp/tests/prop_intra.rs

/root/repo/target/debug/deps/libprop_intra-6cbb6ae895e2bff3.rmeta: crates/srp/tests/prop_intra.rs

crates/srp/tests/prop_intra.rs:
