/root/repo/target/debug/deps/repro-16b77d075c09ab10.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-16b77d075c09ab10: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
