/root/repo/target/debug/deps/shadow-e344ff57e338a6fd.d: crates/srp/tests/shadow.rs Cargo.toml

/root/repo/target/debug/deps/libshadow-e344ff57e338a6fd.rmeta: crates/srp/tests/shadow.rs Cargo.toml

crates/srp/tests/shadow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
