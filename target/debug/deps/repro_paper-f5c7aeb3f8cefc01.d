/root/repo/target/debug/deps/repro_paper-f5c7aeb3f8cefc01.d: crates/bench/benches/repro_paper.rs Cargo.toml

/root/repo/target/debug/deps/librepro_paper-f5c7aeb3f8cefc01.rmeta: crates/bench/benches/repro_paper.rs Cargo.toml

crates/bench/benches/repro_paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
