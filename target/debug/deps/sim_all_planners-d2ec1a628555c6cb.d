/root/repo/target/debug/deps/sim_all_planners-d2ec1a628555c6cb.d: crates/simenv/tests/sim_all_planners.rs

/root/repo/target/debug/deps/sim_all_planners-d2ec1a628555c6cb: crates/simenv/tests/sim_all_planners.rs

crates/simenv/tests/sim_all_planners.rs:
