/root/repo/target/debug/deps/carp_bench-17e8908520be8841.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/libcarp_bench-17e8908520be8841.rlib: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/libcarp_bench-17e8908520be8841.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
