/root/repo/target/debug/deps/planner_integration-6d8f14674063cc98.d: crates/srp/tests/planner_integration.rs

/root/repo/target/debug/deps/planner_integration-6d8f14674063cc98: crates/srp/tests/planner_integration.rs

crates/srp/tests/planner_integration.rs:
