/root/repo/target/debug/deps/sim_protocol-70170042436aa18f.d: crates/simenv/tests/sim_protocol.rs

/root/repo/target/debug/deps/libsim_protocol-70170042436aa18f.rmeta: crates/simenv/tests/sim_protocol.rs

crates/simenv/tests/sim_protocol.rs:
