/root/repo/target/debug/deps/cross_planner-98a3abe235079e6a.d: tests/cross_planner.rs Cargo.toml

/root/repo/target/debug/deps/libcross_planner-98a3abe235079e6a.rmeta: tests/cross_planner.rs Cargo.toml

tests/cross_planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
