/root/repo/target/debug/deps/cancellation-8a754273f0b012e4.d: tests/cancellation.rs Cargo.toml

/root/repo/target/debug/deps/libcancellation-8a754273f0b012e4.rmeta: tests/cancellation.rs Cargo.toml

tests/cancellation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
