/root/repo/target/debug/deps/srp_warehouse-e9032be2bd8ee163.d: src/lib.rs

/root/repo/target/debug/deps/libsrp_warehouse-e9032be2bd8ee163.rmeta: src/lib.rs

src/lib.rs:
