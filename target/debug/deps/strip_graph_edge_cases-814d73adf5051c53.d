/root/repo/target/debug/deps/strip_graph_edge_cases-814d73adf5051c53.d: crates/srp/tests/strip_graph_edge_cases.rs

/root/repo/target/debug/deps/libstrip_graph_edge_cases-814d73adf5051c53.rmeta: crates/srp/tests/strip_graph_edge_cases.rs

crates/srp/tests/strip_graph_edge_cases.rs:
