/root/repo/target/debug/deps/carp_simenv-132b26f845b4121b.d: crates/simenv/src/lib.rs crates/simenv/src/audit.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

/root/repo/target/debug/deps/libcarp_simenv-132b26f845b4121b.rmeta: crates/simenv/src/lib.rs crates/simenv/src/audit.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

crates/simenv/src/lib.rs:
crates/simenv/src/audit.rs:
crates/simenv/src/metrics.rs:
crates/simenv/src/sim.rs:
