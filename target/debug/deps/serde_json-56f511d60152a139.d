/root/repo/target/debug/deps/serde_json-56f511d60152a139.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-56f511d60152a139.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
