/root/repo/target/debug/deps/carp_baselines-18cab7f1c0a835d5.d: crates/baselines/src/lib.rs crates/baselines/src/acp.rs crates/baselines/src/common.rs crates/baselines/src/rp.rs crates/baselines/src/sap.rs crates/baselines/src/sipp.rs crates/baselines/src/twp.rs

/root/repo/target/debug/deps/libcarp_baselines-18cab7f1c0a835d5.rmeta: crates/baselines/src/lib.rs crates/baselines/src/acp.rs crates/baselines/src/common.rs crates/baselines/src/rp.rs crates/baselines/src/sap.rs crates/baselines/src/sipp.rs crates/baselines/src/twp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/acp.rs:
crates/baselines/src/common.rs:
crates/baselines/src/rp.rs:
crates/baselines/src/sap.rs:
crates/baselines/src/sipp.rs:
crates/baselines/src/twp.rs:
