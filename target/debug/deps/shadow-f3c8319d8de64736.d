/root/repo/target/debug/deps/shadow-f3c8319d8de64736.d: crates/srp/tests/shadow.rs Cargo.toml

/root/repo/target/debug/deps/libshadow-f3c8319d8de64736.rmeta: crates/srp/tests/shadow.rs Cargo.toml

crates/srp/tests/shadow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
