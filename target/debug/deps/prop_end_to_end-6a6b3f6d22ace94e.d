/root/repo/target/debug/deps/prop_end_to_end-6a6b3f6d22ace94e.d: tests/prop_end_to_end.rs

/root/repo/target/debug/deps/prop_end_to_end-6a6b3f6d22ace94e: tests/prop_end_to_end.rs

tests/prop_end_to_end.rs:
