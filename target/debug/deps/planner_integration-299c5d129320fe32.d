/root/repo/target/debug/deps/planner_integration-299c5d129320fe32.d: crates/srp/tests/planner_integration.rs Cargo.toml

/root/repo/target/debug/deps/libplanner_integration-299c5d129320fe32.rmeta: crates/srp/tests/planner_integration.rs Cargo.toml

crates/srp/tests/planner_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
