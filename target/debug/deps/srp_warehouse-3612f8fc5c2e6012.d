/root/repo/target/debug/deps/srp_warehouse-3612f8fc5c2e6012.d: src/lib.rs

/root/repo/target/debug/deps/srp_warehouse-3612f8fc5c2e6012: src/lib.rs

src/lib.rs:
