/root/repo/target/debug/deps/prop_geometry-8d65a46a2fd74752.d: crates/geometry/tests/prop_geometry.rs

/root/repo/target/debug/deps/prop_geometry-8d65a46a2fd74752: crates/geometry/tests/prop_geometry.rs

crates/geometry/tests/prop_geometry.rs:
