/root/repo/target/debug/deps/shadow-a62420dca36a8b2a.d: crates/srp/tests/shadow.rs

/root/repo/target/debug/deps/shadow-a62420dca36a8b2a: crates/srp/tests/shadow.rs

crates/srp/tests/shadow.rs:
