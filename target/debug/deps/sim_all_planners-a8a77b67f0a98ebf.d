/root/repo/target/debug/deps/sim_all_planners-a8a77b67f0a98ebf.d: crates/simenv/tests/sim_all_planners.rs Cargo.toml

/root/repo/target/debug/deps/libsim_all_planners-a8a77b67f0a98ebf.rmeta: crates/simenv/tests/sim_all_planners.rs Cargo.toml

crates/simenv/tests/sim_all_planners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
