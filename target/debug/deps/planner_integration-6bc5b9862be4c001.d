/root/repo/target/debug/deps/planner_integration-6bc5b9862be4c001.d: crates/srp/tests/planner_integration.rs

/root/repo/target/debug/deps/planner_integration-6bc5b9862be4c001: crates/srp/tests/planner_integration.rs

crates/srp/tests/planner_integration.rs:
