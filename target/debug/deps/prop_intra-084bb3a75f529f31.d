/root/repo/target/debug/deps/prop_intra-084bb3a75f529f31.d: crates/srp/tests/prop_intra.rs Cargo.toml

/root/repo/target/debug/deps/libprop_intra-084bb3a75f529f31.rmeta: crates/srp/tests/prop_intra.rs Cargo.toml

crates/srp/tests/prop_intra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
