/root/repo/target/debug/deps/planner_integration-88a7c27970e72e27.d: crates/srp/tests/planner_integration.rs

/root/repo/target/debug/deps/libplanner_integration-88a7c27970e72e27.rmeta: crates/srp/tests/planner_integration.rs

crates/srp/tests/planner_integration.rs:
