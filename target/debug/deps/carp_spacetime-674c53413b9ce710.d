/root/repo/target/debug/deps/carp_spacetime-674c53413b9ce710.d: crates/spacetime/src/lib.rs crates/spacetime/src/astar.rs crates/spacetime/src/cbs.rs crates/spacetime/src/reservation.rs

/root/repo/target/debug/deps/libcarp_spacetime-674c53413b9ce710.rlib: crates/spacetime/src/lib.rs crates/spacetime/src/astar.rs crates/spacetime/src/cbs.rs crates/spacetime/src/reservation.rs

/root/repo/target/debug/deps/libcarp_spacetime-674c53413b9ce710.rmeta: crates/spacetime/src/lib.rs crates/spacetime/src/astar.rs crates/spacetime/src/cbs.rs crates/spacetime/src/reservation.rs

crates/spacetime/src/lib.rs:
crates/spacetime/src/astar.rs:
crates/spacetime/src/cbs.rs:
crates/spacetime/src/reservation.rs:
