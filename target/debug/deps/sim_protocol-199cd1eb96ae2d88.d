/root/repo/target/debug/deps/sim_protocol-199cd1eb96ae2d88.d: crates/simenv/tests/sim_protocol.rs

/root/repo/target/debug/deps/sim_protocol-199cd1eb96ae2d88: crates/simenv/tests/sim_protocol.rs

crates/simenv/tests/sim_protocol.rs:
