/root/repo/target/debug/deps/rand-67fe3e6308a4a639.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-67fe3e6308a4a639.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-67fe3e6308a4a639.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
