/root/repo/target/debug/deps/serde-7f1096eac5f5030d.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-7f1096eac5f5030d.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
