/root/repo/target/debug/deps/rand-4d5d4b5c6bb60d78.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-4d5d4b5c6bb60d78.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
