/root/repo/target/debug/deps/carp_geometry-92ec3ce2a63a718b.d: crates/geometry/src/lib.rs crates/geometry/src/index.rs crates/geometry/src/intersect.rs crates/geometry/src/segment.rs crates/geometry/src/shadow.rs crates/geometry/src/store.rs

/root/repo/target/debug/deps/libcarp_geometry-92ec3ce2a63a718b.rlib: crates/geometry/src/lib.rs crates/geometry/src/index.rs crates/geometry/src/intersect.rs crates/geometry/src/segment.rs crates/geometry/src/shadow.rs crates/geometry/src/store.rs

/root/repo/target/debug/deps/libcarp_geometry-92ec3ce2a63a718b.rmeta: crates/geometry/src/lib.rs crates/geometry/src/index.rs crates/geometry/src/intersect.rs crates/geometry/src/segment.rs crates/geometry/src/shadow.rs crates/geometry/src/store.rs

crates/geometry/src/lib.rs:
crates/geometry/src/index.rs:
crates/geometry/src/intersect.rs:
crates/geometry/src/segment.rs:
crates/geometry/src/shadow.rs:
crates/geometry/src/store.rs:
