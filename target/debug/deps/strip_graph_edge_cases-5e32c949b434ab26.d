/root/repo/target/debug/deps/strip_graph_edge_cases-5e32c949b434ab26.d: crates/srp/tests/strip_graph_edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libstrip_graph_edge_cases-5e32c949b434ab26.rmeta: crates/srp/tests/strip_graph_edge_cases.rs Cargo.toml

crates/srp/tests/strip_graph_edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
