/root/repo/target/debug/deps/cancellation-9249bae3e3129573.d: tests/cancellation.rs

/root/repo/target/debug/deps/libcancellation-9249bae3e3129573.rmeta: tests/cancellation.rs

tests/cancellation.rs:
