/root/repo/target/debug/deps/srp_warehouse-569488827af029b9.d: src/lib.rs

/root/repo/target/debug/deps/libsrp_warehouse-569488827af029b9.rlib: src/lib.rs

/root/repo/target/debug/deps/libsrp_warehouse-569488827af029b9.rmeta: src/lib.rs

src/lib.rs:
