/root/repo/target/debug/deps/micro-9d0056afe29af438.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-9d0056afe29af438.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
