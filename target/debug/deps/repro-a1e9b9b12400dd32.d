/root/repo/target/debug/deps/repro-a1e9b9b12400dd32.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-a1e9b9b12400dd32.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
