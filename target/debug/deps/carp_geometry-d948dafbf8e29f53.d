/root/repo/target/debug/deps/carp_geometry-d948dafbf8e29f53.d: crates/geometry/src/lib.rs crates/geometry/src/index.rs crates/geometry/src/intersect.rs crates/geometry/src/segment.rs crates/geometry/src/shadow.rs crates/geometry/src/store.rs

/root/repo/target/debug/deps/carp_geometry-d948dafbf8e29f53: crates/geometry/src/lib.rs crates/geometry/src/index.rs crates/geometry/src/intersect.rs crates/geometry/src/segment.rs crates/geometry/src/shadow.rs crates/geometry/src/store.rs

crates/geometry/src/lib.rs:
crates/geometry/src/index.rs:
crates/geometry/src/intersect.rs:
crates/geometry/src/segment.rs:
crates/geometry/src/shadow.rs:
crates/geometry/src/store.rs:
