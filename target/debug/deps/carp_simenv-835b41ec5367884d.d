/root/repo/target/debug/deps/carp_simenv-835b41ec5367884d.d: crates/simenv/src/lib.rs crates/simenv/src/audit.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libcarp_simenv-835b41ec5367884d.rmeta: crates/simenv/src/lib.rs crates/simenv/src/audit.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs Cargo.toml

crates/simenv/src/lib.rs:
crates/simenv/src/audit.rs:
crates/simenv/src/metrics.rs:
crates/simenv/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
