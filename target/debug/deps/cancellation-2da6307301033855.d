/root/repo/target/debug/deps/cancellation-2da6307301033855.d: tests/cancellation.rs

/root/repo/target/debug/deps/cancellation-2da6307301033855: tests/cancellation.rs

tests/cancellation.rs:
