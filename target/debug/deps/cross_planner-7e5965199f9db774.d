/root/repo/target/debug/deps/cross_planner-7e5965199f9db774.d: tests/cross_planner.rs

/root/repo/target/debug/deps/cross_planner-7e5965199f9db774: tests/cross_planner.rs

tests/cross_planner.rs:
