/root/repo/target/debug/deps/srp_warehouse-88dc64ab54fb5eb2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsrp_warehouse-88dc64ab54fb5eb2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
