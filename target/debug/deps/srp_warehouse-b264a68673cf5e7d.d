/root/repo/target/debug/deps/srp_warehouse-b264a68673cf5e7d.d: src/lib.rs

/root/repo/target/debug/deps/srp_warehouse-b264a68673cf5e7d: src/lib.rs

src/lib.rs:
