/root/repo/target/debug/deps/prop_intra-22dabd2d15480548.d: crates/srp/tests/prop_intra.rs

/root/repo/target/debug/deps/prop_intra-22dabd2d15480548: crates/srp/tests/prop_intra.rs

crates/srp/tests/prop_intra.rs:
