/root/repo/target/debug/deps/cancellation-9d9beb3f67963c04.d: tests/cancellation.rs Cargo.toml

/root/repo/target/debug/deps/libcancellation-9d9beb3f67963c04.rmeta: tests/cancellation.rs Cargo.toml

tests/cancellation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
