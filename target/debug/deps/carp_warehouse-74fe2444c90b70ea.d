/root/repo/target/debug/deps/carp_warehouse-74fe2444c90b70ea.d: crates/warehouse/src/lib.rs crates/warehouse/src/collision.rs crates/warehouse/src/dataset.rs crates/warehouse/src/layout.rs crates/warehouse/src/matrix.rs crates/warehouse/src/memory.rs crates/warehouse/src/planner.rs crates/warehouse/src/render.rs crates/warehouse/src/request.rs crates/warehouse/src/route.rs crates/warehouse/src/tasks.rs crates/warehouse/src/types.rs

/root/repo/target/debug/deps/libcarp_warehouse-74fe2444c90b70ea.rmeta: crates/warehouse/src/lib.rs crates/warehouse/src/collision.rs crates/warehouse/src/dataset.rs crates/warehouse/src/layout.rs crates/warehouse/src/matrix.rs crates/warehouse/src/memory.rs crates/warehouse/src/planner.rs crates/warehouse/src/render.rs crates/warehouse/src/request.rs crates/warehouse/src/route.rs crates/warehouse/src/tasks.rs crates/warehouse/src/types.rs

crates/warehouse/src/lib.rs:
crates/warehouse/src/collision.rs:
crates/warehouse/src/dataset.rs:
crates/warehouse/src/layout.rs:
crates/warehouse/src/matrix.rs:
crates/warehouse/src/memory.rs:
crates/warehouse/src/planner.rs:
crates/warehouse/src/render.rs:
crates/warehouse/src/request.rs:
crates/warehouse/src/route.rs:
crates/warehouse/src/tasks.rs:
crates/warehouse/src/types.rs:
