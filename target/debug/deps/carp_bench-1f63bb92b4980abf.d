/root/repo/target/debug/deps/carp_bench-1f63bb92b4980abf.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/libcarp_bench-1f63bb92b4980abf.rlib: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/libcarp_bench-1f63bb92b4980abf.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
