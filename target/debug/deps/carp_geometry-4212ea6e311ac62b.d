/root/repo/target/debug/deps/carp_geometry-4212ea6e311ac62b.d: crates/geometry/src/lib.rs crates/geometry/src/index.rs crates/geometry/src/intersect.rs crates/geometry/src/segment.rs crates/geometry/src/store.rs

/root/repo/target/debug/deps/libcarp_geometry-4212ea6e311ac62b.rlib: crates/geometry/src/lib.rs crates/geometry/src/index.rs crates/geometry/src/intersect.rs crates/geometry/src/segment.rs crates/geometry/src/store.rs

/root/repo/target/debug/deps/libcarp_geometry-4212ea6e311ac62b.rmeta: crates/geometry/src/lib.rs crates/geometry/src/index.rs crates/geometry/src/intersect.rs crates/geometry/src/segment.rs crates/geometry/src/store.rs

crates/geometry/src/lib.rs:
crates/geometry/src/index.rs:
crates/geometry/src/intersect.rs:
crates/geometry/src/segment.rs:
crates/geometry/src/store.rs:
