/root/repo/target/debug/deps/micro-9fc2254e8ebad18d.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/libmicro-9fc2254e8ebad18d.rmeta: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
