/root/repo/target/debug/deps/strip_graph_edge_cases-4f5d4d7a93bdb721.d: crates/srp/tests/strip_graph_edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libstrip_graph_edge_cases-4f5d4d7a93bdb721.rmeta: crates/srp/tests/strip_graph_edge_cases.rs Cargo.toml

crates/srp/tests/strip_graph_edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
