/root/repo/target/debug/deps/carp_bench-429d71f7f8c32d7e.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/carp_bench-429d71f7f8c32d7e: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
