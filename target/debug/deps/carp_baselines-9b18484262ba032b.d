/root/repo/target/debug/deps/carp_baselines-9b18484262ba032b.d: crates/baselines/src/lib.rs crates/baselines/src/acp.rs crates/baselines/src/common.rs crates/baselines/src/rp.rs crates/baselines/src/sap.rs crates/baselines/src/sipp.rs crates/baselines/src/twp.rs

/root/repo/target/debug/deps/libcarp_baselines-9b18484262ba032b.rmeta: crates/baselines/src/lib.rs crates/baselines/src/acp.rs crates/baselines/src/common.rs crates/baselines/src/rp.rs crates/baselines/src/sap.rs crates/baselines/src/sipp.rs crates/baselines/src/twp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/acp.rs:
crates/baselines/src/common.rs:
crates/baselines/src/rp.rs:
crates/baselines/src/sap.rs:
crates/baselines/src/sipp.rs:
crates/baselines/src/twp.rs:
