/root/repo/target/debug/deps/strip_graph_edge_cases-d063d48f9ba0c4c8.d: crates/srp/tests/strip_graph_edge_cases.rs

/root/repo/target/debug/deps/strip_graph_edge_cases-d063d48f9ba0c4c8: crates/srp/tests/strip_graph_edge_cases.rs

crates/srp/tests/strip_graph_edge_cases.rs:
