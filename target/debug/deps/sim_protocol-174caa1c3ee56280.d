/root/repo/target/debug/deps/sim_protocol-174caa1c3ee56280.d: crates/simenv/tests/sim_protocol.rs

/root/repo/target/debug/deps/sim_protocol-174caa1c3ee56280: crates/simenv/tests/sim_protocol.rs

crates/simenv/tests/sim_protocol.rs:
