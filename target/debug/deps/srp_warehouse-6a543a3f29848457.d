/root/repo/target/debug/deps/srp_warehouse-6a543a3f29848457.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsrp_warehouse-6a543a3f29848457.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
