/root/repo/target/debug/deps/carp_warehouse-eb702bce3a6eaa9c.d: crates/warehouse/src/lib.rs crates/warehouse/src/collision.rs crates/warehouse/src/dataset.rs crates/warehouse/src/layout.rs crates/warehouse/src/matrix.rs crates/warehouse/src/memory.rs crates/warehouse/src/planner.rs crates/warehouse/src/render.rs crates/warehouse/src/request.rs crates/warehouse/src/route.rs crates/warehouse/src/tasks.rs crates/warehouse/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libcarp_warehouse-eb702bce3a6eaa9c.rmeta: crates/warehouse/src/lib.rs crates/warehouse/src/collision.rs crates/warehouse/src/dataset.rs crates/warehouse/src/layout.rs crates/warehouse/src/matrix.rs crates/warehouse/src/memory.rs crates/warehouse/src/planner.rs crates/warehouse/src/render.rs crates/warehouse/src/request.rs crates/warehouse/src/route.rs crates/warehouse/src/tasks.rs crates/warehouse/src/types.rs Cargo.toml

crates/warehouse/src/lib.rs:
crates/warehouse/src/collision.rs:
crates/warehouse/src/dataset.rs:
crates/warehouse/src/layout.rs:
crates/warehouse/src/matrix.rs:
crates/warehouse/src/memory.rs:
crates/warehouse/src/planner.rs:
crates/warehouse/src/render.rs:
crates/warehouse/src/request.rs:
crates/warehouse/src/route.rs:
crates/warehouse/src/tasks.rs:
crates/warehouse/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
