/root/repo/target/debug/deps/srp_warehouse-96c8fdc783ce8db1.d: src/lib.rs

/root/repo/target/debug/deps/libsrp_warehouse-96c8fdc783ce8db1.rlib: src/lib.rs

/root/repo/target/debug/deps/libsrp_warehouse-96c8fdc783ce8db1.rmeta: src/lib.rs

src/lib.rs:
