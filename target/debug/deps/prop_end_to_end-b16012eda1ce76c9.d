/root/repo/target/debug/deps/prop_end_to_end-b16012eda1ce76c9.d: tests/prop_end_to_end.rs

/root/repo/target/debug/deps/prop_end_to_end-b16012eda1ce76c9: tests/prop_end_to_end.rs

tests/prop_end_to_end.rs:
