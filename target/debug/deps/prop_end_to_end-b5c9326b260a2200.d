/root/repo/target/debug/deps/prop_end_to_end-b5c9326b260a2200.d: tests/prop_end_to_end.rs

/root/repo/target/debug/deps/libprop_end_to_end-b5c9326b260a2200.rmeta: tests/prop_end_to_end.rs

tests/prop_end_to_end.rs:
