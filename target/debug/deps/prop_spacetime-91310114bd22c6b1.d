/root/repo/target/debug/deps/prop_spacetime-91310114bd22c6b1.d: crates/spacetime/tests/prop_spacetime.rs

/root/repo/target/debug/deps/libprop_spacetime-91310114bd22c6b1.rmeta: crates/spacetime/tests/prop_spacetime.rs

crates/spacetime/tests/prop_spacetime.rs:
