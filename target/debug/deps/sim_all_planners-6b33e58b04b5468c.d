/root/repo/target/debug/deps/sim_all_planners-6b33e58b04b5468c.d: crates/simenv/tests/sim_all_planners.rs

/root/repo/target/debug/deps/sim_all_planners-6b33e58b04b5468c: crates/simenv/tests/sim_all_planners.rs

crates/simenv/tests/sim_all_planners.rs:
