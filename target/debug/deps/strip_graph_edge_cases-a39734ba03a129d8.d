/root/repo/target/debug/deps/strip_graph_edge_cases-a39734ba03a129d8.d: crates/srp/tests/strip_graph_edge_cases.rs

/root/repo/target/debug/deps/strip_graph_edge_cases-a39734ba03a129d8: crates/srp/tests/strip_graph_edge_cases.rs

crates/srp/tests/strip_graph_edge_cases.rs:
