/root/repo/target/debug/deps/carp_simenv-9b4d32bc5e269b3a.d: crates/simenv/src/lib.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

/root/repo/target/debug/deps/libcarp_simenv-9b4d32bc5e269b3a.rlib: crates/simenv/src/lib.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

/root/repo/target/debug/deps/libcarp_simenv-9b4d32bc5e269b3a.rmeta: crates/simenv/src/lib.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

crates/simenv/src/lib.rs:
crates/simenv/src/metrics.rs:
crates/simenv/src/sim.rs:
