/root/repo/target/debug/deps/carp_srp-0052d9796feee3af.d: crates/srp/src/lib.rs crates/srp/src/convert.rs crates/srp/src/intra.rs crates/srp/src/planner.rs crates/srp/src/strip_graph.rs Cargo.toml

/root/repo/target/debug/deps/libcarp_srp-0052d9796feee3af.rmeta: crates/srp/src/lib.rs crates/srp/src/convert.rs crates/srp/src/intra.rs crates/srp/src/planner.rs crates/srp/src/strip_graph.rs Cargo.toml

crates/srp/src/lib.rs:
crates/srp/src/convert.rs:
crates/srp/src/intra.rs:
crates/srp/src/planner.rs:
crates/srp/src/strip_graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
