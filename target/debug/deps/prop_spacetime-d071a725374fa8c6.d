/root/repo/target/debug/deps/prop_spacetime-d071a725374fa8c6.d: crates/spacetime/tests/prop_spacetime.rs

/root/repo/target/debug/deps/prop_spacetime-d071a725374fa8c6: crates/spacetime/tests/prop_spacetime.rs

crates/spacetime/tests/prop_spacetime.rs:
