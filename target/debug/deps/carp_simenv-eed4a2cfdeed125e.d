/root/repo/target/debug/deps/carp_simenv-eed4a2cfdeed125e.d: crates/simenv/src/lib.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

/root/repo/target/debug/deps/carp_simenv-eed4a2cfdeed125e: crates/simenv/src/lib.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

crates/simenv/src/lib.rs:
crates/simenv/src/metrics.rs:
crates/simenv/src/sim.rs:
