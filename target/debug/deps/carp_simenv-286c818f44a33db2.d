/root/repo/target/debug/deps/carp_simenv-286c818f44a33db2.d: crates/simenv/src/lib.rs crates/simenv/src/audit.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

/root/repo/target/debug/deps/carp_simenv-286c818f44a33db2: crates/simenv/src/lib.rs crates/simenv/src/audit.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

crates/simenv/src/lib.rs:
crates/simenv/src/audit.rs:
crates/simenv/src/metrics.rs:
crates/simenv/src/sim.rs:
