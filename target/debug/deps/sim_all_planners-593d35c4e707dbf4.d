/root/repo/target/debug/deps/sim_all_planners-593d35c4e707dbf4.d: crates/simenv/tests/sim_all_planners.rs Cargo.toml

/root/repo/target/debug/deps/libsim_all_planners-593d35c4e707dbf4.rmeta: crates/simenv/tests/sim_all_planners.rs Cargo.toml

crates/simenv/tests/sim_all_planners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
