/root/repo/target/debug/deps/carp_srp-2718709c395dea17.d: crates/srp/src/lib.rs crates/srp/src/convert.rs crates/srp/src/intra.rs crates/srp/src/planner.rs crates/srp/src/strip_graph.rs

/root/repo/target/debug/deps/carp_srp-2718709c395dea17: crates/srp/src/lib.rs crates/srp/src/convert.rs crates/srp/src/intra.rs crates/srp/src/planner.rs crates/srp/src/strip_graph.rs

crates/srp/src/lib.rs:
crates/srp/src/convert.rs:
crates/srp/src/intra.rs:
crates/srp/src/planner.rs:
crates/srp/src/strip_graph.rs:
