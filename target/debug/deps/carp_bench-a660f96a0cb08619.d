/root/repo/target/debug/deps/carp_bench-a660f96a0cb08619.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/libcarp_bench-a660f96a0cb08619.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
