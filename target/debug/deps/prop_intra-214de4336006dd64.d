/root/repo/target/debug/deps/prop_intra-214de4336006dd64.d: crates/srp/tests/prop_intra.rs Cargo.toml

/root/repo/target/debug/deps/libprop_intra-214de4336006dd64.rmeta: crates/srp/tests/prop_intra.rs Cargo.toml

crates/srp/tests/prop_intra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
