/root/repo/target/debug/deps/prop_end_to_end-26b5b06ffdd6fe11.d: tests/prop_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libprop_end_to_end-26b5b06ffdd6fe11.rmeta: tests/prop_end_to_end.rs Cargo.toml

tests/prop_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
