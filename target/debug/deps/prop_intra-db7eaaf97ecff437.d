/root/repo/target/debug/deps/prop_intra-db7eaaf97ecff437.d: crates/srp/tests/prop_intra.rs

/root/repo/target/debug/deps/prop_intra-db7eaaf97ecff437: crates/srp/tests/prop_intra.rs

crates/srp/tests/prop_intra.rs:
