/root/repo/target/debug/deps/carp_bench-e5add03f706cf4b4.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/carp_bench-e5add03f706cf4b4: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
