/root/repo/target/debug/deps/carp_srp-9ee5df16b3a2667f.d: crates/srp/src/lib.rs crates/srp/src/convert.rs crates/srp/src/intra.rs crates/srp/src/planner.rs crates/srp/src/strip_graph.rs

/root/repo/target/debug/deps/carp_srp-9ee5df16b3a2667f: crates/srp/src/lib.rs crates/srp/src/convert.rs crates/srp/src/intra.rs crates/srp/src/planner.rs crates/srp/src/strip_graph.rs

crates/srp/src/lib.rs:
crates/srp/src/convert.rs:
crates/srp/src/intra.rs:
crates/srp/src/planner.rs:
crates/srp/src/strip_graph.rs:
