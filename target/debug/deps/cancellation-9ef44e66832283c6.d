/root/repo/target/debug/deps/cancellation-9ef44e66832283c6.d: tests/cancellation.rs

/root/repo/target/debug/deps/cancellation-9ef44e66832283c6: tests/cancellation.rs

tests/cancellation.rs:
