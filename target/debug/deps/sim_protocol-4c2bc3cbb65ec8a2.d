/root/repo/target/debug/deps/sim_protocol-4c2bc3cbb65ec8a2.d: crates/simenv/tests/sim_protocol.rs Cargo.toml

/root/repo/target/debug/deps/libsim_protocol-4c2bc3cbb65ec8a2.rmeta: crates/simenv/tests/sim_protocol.rs Cargo.toml

crates/simenv/tests/sim_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
