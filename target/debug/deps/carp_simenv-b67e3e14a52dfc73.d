/root/repo/target/debug/deps/carp_simenv-b67e3e14a52dfc73.d: crates/simenv/src/lib.rs crates/simenv/src/audit.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libcarp_simenv-b67e3e14a52dfc73.rmeta: crates/simenv/src/lib.rs crates/simenv/src/audit.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs Cargo.toml

crates/simenv/src/lib.rs:
crates/simenv/src/audit.rs:
crates/simenv/src/metrics.rs:
crates/simenv/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
