/root/repo/target/debug/deps/repro-58dc136d37421ac1.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-58dc136d37421ac1: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
