/root/repo/target/debug/deps/sim_all_planners-904dd7881551d0b7.d: crates/simenv/tests/sim_all_planners.rs

/root/repo/target/debug/deps/libsim_all_planners-904dd7881551d0b7.rmeta: crates/simenv/tests/sim_all_planners.rs

crates/simenv/tests/sim_all_planners.rs:
