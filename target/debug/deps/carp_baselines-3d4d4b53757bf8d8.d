/root/repo/target/debug/deps/carp_baselines-3d4d4b53757bf8d8.d: crates/baselines/src/lib.rs crates/baselines/src/acp.rs crates/baselines/src/common.rs crates/baselines/src/rp.rs crates/baselines/src/sap.rs crates/baselines/src/sipp.rs crates/baselines/src/twp.rs Cargo.toml

/root/repo/target/debug/deps/libcarp_baselines-3d4d4b53757bf8d8.rmeta: crates/baselines/src/lib.rs crates/baselines/src/acp.rs crates/baselines/src/common.rs crates/baselines/src/rp.rs crates/baselines/src/sap.rs crates/baselines/src/sipp.rs crates/baselines/src/twp.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/acp.rs:
crates/baselines/src/common.rs:
crates/baselines/src/rp.rs:
crates/baselines/src/sap.rs:
crates/baselines/src/sipp.rs:
crates/baselines/src/twp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
