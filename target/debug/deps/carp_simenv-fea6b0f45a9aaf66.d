/root/repo/target/debug/deps/carp_simenv-fea6b0f45a9aaf66.d: crates/simenv/src/lib.rs crates/simenv/src/audit.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

/root/repo/target/debug/deps/libcarp_simenv-fea6b0f45a9aaf66.rlib: crates/simenv/src/lib.rs crates/simenv/src/audit.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

/root/repo/target/debug/deps/libcarp_simenv-fea6b0f45a9aaf66.rmeta: crates/simenv/src/lib.rs crates/simenv/src/audit.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

crates/simenv/src/lib.rs:
crates/simenv/src/audit.rs:
crates/simenv/src/metrics.rs:
crates/simenv/src/sim.rs:
