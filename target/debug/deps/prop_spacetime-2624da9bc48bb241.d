/root/repo/target/debug/deps/prop_spacetime-2624da9bc48bb241.d: crates/spacetime/tests/prop_spacetime.rs Cargo.toml

/root/repo/target/debug/deps/libprop_spacetime-2624da9bc48bb241.rmeta: crates/spacetime/tests/prop_spacetime.rs Cargo.toml

crates/spacetime/tests/prop_spacetime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
