/root/repo/target/debug/deps/carp_spacetime-ac200ccec5125963.d: crates/spacetime/src/lib.rs crates/spacetime/src/astar.rs crates/spacetime/src/cbs.rs crates/spacetime/src/reservation.rs

/root/repo/target/debug/deps/libcarp_spacetime-ac200ccec5125963.rmeta: crates/spacetime/src/lib.rs crates/spacetime/src/astar.rs crates/spacetime/src/cbs.rs crates/spacetime/src/reservation.rs

crates/spacetime/src/lib.rs:
crates/spacetime/src/astar.rs:
crates/spacetime/src/cbs.rs:
crates/spacetime/src/reservation.rs:
