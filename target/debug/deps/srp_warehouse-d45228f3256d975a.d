/root/repo/target/debug/deps/srp_warehouse-d45228f3256d975a.d: src/lib.rs

/root/repo/target/debug/deps/libsrp_warehouse-d45228f3256d975a.rmeta: src/lib.rs

src/lib.rs:
