/root/repo/target/debug/deps/prop_geometry-f6c9dbe99a9b599e.d: crates/geometry/tests/prop_geometry.rs Cargo.toml

/root/repo/target/debug/deps/libprop_geometry-f6c9dbe99a9b599e.rmeta: crates/geometry/tests/prop_geometry.rs Cargo.toml

crates/geometry/tests/prop_geometry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
