/root/repo/target/debug/deps/carp_bench-d7911a0722781409.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/libcarp_bench-d7911a0722781409.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
