/root/repo/target/debug/deps/carp_srp-87f46ebf3c9a07fc.d: crates/srp/src/lib.rs crates/srp/src/convert.rs crates/srp/src/intra.rs crates/srp/src/planner.rs crates/srp/src/strip_graph.rs

/root/repo/target/debug/deps/libcarp_srp-87f46ebf3c9a07fc.rlib: crates/srp/src/lib.rs crates/srp/src/convert.rs crates/srp/src/intra.rs crates/srp/src/planner.rs crates/srp/src/strip_graph.rs

/root/repo/target/debug/deps/libcarp_srp-87f46ebf3c9a07fc.rmeta: crates/srp/src/lib.rs crates/srp/src/convert.rs crates/srp/src/intra.rs crates/srp/src/planner.rs crates/srp/src/strip_graph.rs

crates/srp/src/lib.rs:
crates/srp/src/convert.rs:
crates/srp/src/intra.rs:
crates/srp/src/planner.rs:
crates/srp/src/strip_graph.rs:
