/root/repo/target/debug/deps/repro-e0898d2f32eee932.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-e0898d2f32eee932.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
