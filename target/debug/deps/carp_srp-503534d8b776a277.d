/root/repo/target/debug/deps/carp_srp-503534d8b776a277.d: crates/srp/src/lib.rs crates/srp/src/convert.rs crates/srp/src/intra.rs crates/srp/src/planner.rs crates/srp/src/strip_graph.rs

/root/repo/target/debug/deps/libcarp_srp-503534d8b776a277.rmeta: crates/srp/src/lib.rs crates/srp/src/convert.rs crates/srp/src/intra.rs crates/srp/src/planner.rs crates/srp/src/strip_graph.rs

crates/srp/src/lib.rs:
crates/srp/src/convert.rs:
crates/srp/src/intra.rs:
crates/srp/src/planner.rs:
crates/srp/src/strip_graph.rs:
