/root/repo/target/debug/deps/carp_bench-ff50f683b99b0da2.d: crates/bench/src/lib.rs crates/bench/src/svg.rs Cargo.toml

/root/repo/target/debug/deps/libcarp_bench-ff50f683b99b0da2.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
