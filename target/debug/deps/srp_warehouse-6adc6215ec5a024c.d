/root/repo/target/debug/deps/srp_warehouse-6adc6215ec5a024c.d: src/lib.rs

/root/repo/target/debug/deps/libsrp_warehouse-6adc6215ec5a024c.rlib: src/lib.rs

/root/repo/target/debug/deps/libsrp_warehouse-6adc6215ec5a024c.rmeta: src/lib.rs

src/lib.rs:
