/root/repo/target/debug/deps/carp_warehouse-c62e3f9750642f4a.d: crates/warehouse/src/lib.rs crates/warehouse/src/collision.rs crates/warehouse/src/dataset.rs crates/warehouse/src/layout.rs crates/warehouse/src/matrix.rs crates/warehouse/src/memory.rs crates/warehouse/src/planner.rs crates/warehouse/src/render.rs crates/warehouse/src/request.rs crates/warehouse/src/route.rs crates/warehouse/src/tasks.rs crates/warehouse/src/types.rs

/root/repo/target/debug/deps/libcarp_warehouse-c62e3f9750642f4a.rmeta: crates/warehouse/src/lib.rs crates/warehouse/src/collision.rs crates/warehouse/src/dataset.rs crates/warehouse/src/layout.rs crates/warehouse/src/matrix.rs crates/warehouse/src/memory.rs crates/warehouse/src/planner.rs crates/warehouse/src/render.rs crates/warehouse/src/request.rs crates/warehouse/src/route.rs crates/warehouse/src/tasks.rs crates/warehouse/src/types.rs

crates/warehouse/src/lib.rs:
crates/warehouse/src/collision.rs:
crates/warehouse/src/dataset.rs:
crates/warehouse/src/layout.rs:
crates/warehouse/src/matrix.rs:
crates/warehouse/src/memory.rs:
crates/warehouse/src/planner.rs:
crates/warehouse/src/render.rs:
crates/warehouse/src/request.rs:
crates/warehouse/src/route.rs:
crates/warehouse/src/tasks.rs:
crates/warehouse/src/types.rs:
