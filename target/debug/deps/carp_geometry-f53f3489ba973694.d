/root/repo/target/debug/deps/carp_geometry-f53f3489ba973694.d: crates/geometry/src/lib.rs crates/geometry/src/index.rs crates/geometry/src/intersect.rs crates/geometry/src/segment.rs crates/geometry/src/store.rs

/root/repo/target/debug/deps/carp_geometry-f53f3489ba973694: crates/geometry/src/lib.rs crates/geometry/src/index.rs crates/geometry/src/intersect.rs crates/geometry/src/segment.rs crates/geometry/src/store.rs

crates/geometry/src/lib.rs:
crates/geometry/src/index.rs:
crates/geometry/src/intersect.rs:
crates/geometry/src/segment.rs:
crates/geometry/src/store.rs:
