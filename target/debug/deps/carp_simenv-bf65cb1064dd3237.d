/root/repo/target/debug/deps/carp_simenv-bf65cb1064dd3237.d: crates/simenv/src/lib.rs crates/simenv/src/audit.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

/root/repo/target/debug/deps/libcarp_simenv-bf65cb1064dd3237.rmeta: crates/simenv/src/lib.rs crates/simenv/src/audit.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

crates/simenv/src/lib.rs:
crates/simenv/src/audit.rs:
crates/simenv/src/metrics.rs:
crates/simenv/src/sim.rs:
