/root/repo/target/debug/deps/repro-e2bad33b96c94a43.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-e2bad33b96c94a43: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
