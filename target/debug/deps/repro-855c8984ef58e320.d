/root/repo/target/debug/deps/repro-855c8984ef58e320.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-855c8984ef58e320: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
