/root/repo/target/debug/deps/shadow-f6bbc62256bbea47.d: crates/srp/tests/shadow.rs

/root/repo/target/debug/deps/shadow-f6bbc62256bbea47: crates/srp/tests/shadow.rs

crates/srp/tests/shadow.rs:
