/root/repo/target/debug/deps/prop_geometry-9a06883d11f231e1.d: crates/geometry/tests/prop_geometry.rs

/root/repo/target/debug/deps/prop_geometry-9a06883d11f231e1: crates/geometry/tests/prop_geometry.rs

crates/geometry/tests/prop_geometry.rs:
