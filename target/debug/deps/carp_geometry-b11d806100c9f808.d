/root/repo/target/debug/deps/carp_geometry-b11d806100c9f808.d: crates/geometry/src/lib.rs crates/geometry/src/index.rs crates/geometry/src/intersect.rs crates/geometry/src/segment.rs crates/geometry/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libcarp_geometry-b11d806100c9f808.rmeta: crates/geometry/src/lib.rs crates/geometry/src/index.rs crates/geometry/src/intersect.rs crates/geometry/src/segment.rs crates/geometry/src/store.rs Cargo.toml

crates/geometry/src/lib.rs:
crates/geometry/src/index.rs:
crates/geometry/src/intersect.rs:
crates/geometry/src/segment.rs:
crates/geometry/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
