/root/repo/target/debug/deps/carp_geometry-424b2a0978e3f809.d: crates/geometry/src/lib.rs crates/geometry/src/index.rs crates/geometry/src/intersect.rs crates/geometry/src/segment.rs crates/geometry/src/store.rs

/root/repo/target/debug/deps/libcarp_geometry-424b2a0978e3f809.rmeta: crates/geometry/src/lib.rs crates/geometry/src/index.rs crates/geometry/src/intersect.rs crates/geometry/src/segment.rs crates/geometry/src/store.rs

crates/geometry/src/lib.rs:
crates/geometry/src/index.rs:
crates/geometry/src/intersect.rs:
crates/geometry/src/segment.rs:
crates/geometry/src/store.rs:
