/root/repo/target/debug/deps/carp_spacetime-aea85dea53214732.d: crates/spacetime/src/lib.rs crates/spacetime/src/astar.rs crates/spacetime/src/cbs.rs crates/spacetime/src/reservation.rs Cargo.toml

/root/repo/target/debug/deps/libcarp_spacetime-aea85dea53214732.rmeta: crates/spacetime/src/lib.rs crates/spacetime/src/astar.rs crates/spacetime/src/cbs.rs crates/spacetime/src/reservation.rs Cargo.toml

crates/spacetime/src/lib.rs:
crates/spacetime/src/astar.rs:
crates/spacetime/src/cbs.rs:
crates/spacetime/src/reservation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
