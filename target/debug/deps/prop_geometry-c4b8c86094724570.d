/root/repo/target/debug/deps/prop_geometry-c4b8c86094724570.d: crates/geometry/tests/prop_geometry.rs

/root/repo/target/debug/deps/libprop_geometry-c4b8c86094724570.rmeta: crates/geometry/tests/prop_geometry.rs

crates/geometry/tests/prop_geometry.rs:
