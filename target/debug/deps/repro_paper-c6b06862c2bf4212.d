/root/repo/target/debug/deps/repro_paper-c6b06862c2bf4212.d: crates/bench/benches/repro_paper.rs Cargo.toml

/root/repo/target/debug/deps/librepro_paper-c6b06862c2bf4212.rmeta: crates/bench/benches/repro_paper.rs Cargo.toml

crates/bench/benches/repro_paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
