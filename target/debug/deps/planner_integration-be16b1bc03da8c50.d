/root/repo/target/debug/deps/planner_integration-be16b1bc03da8c50.d: crates/srp/tests/planner_integration.rs Cargo.toml

/root/repo/target/debug/deps/libplanner_integration-be16b1bc03da8c50.rmeta: crates/srp/tests/planner_integration.rs Cargo.toml

crates/srp/tests/planner_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
