/root/repo/target/debug/deps/carp_spacetime-a6f3ee257a2e4651.d: crates/spacetime/src/lib.rs crates/spacetime/src/astar.rs crates/spacetime/src/cbs.rs crates/spacetime/src/reservation.rs

/root/repo/target/debug/deps/libcarp_spacetime-a6f3ee257a2e4651.rmeta: crates/spacetime/src/lib.rs crates/spacetime/src/astar.rs crates/spacetime/src/cbs.rs crates/spacetime/src/reservation.rs

crates/spacetime/src/lib.rs:
crates/spacetime/src/astar.rs:
crates/spacetime/src/cbs.rs:
crates/spacetime/src/reservation.rs:
