/root/repo/target/debug/deps/cross_planner-e94e2b5368efc46b.d: tests/cross_planner.rs Cargo.toml

/root/repo/target/debug/deps/libcross_planner-e94e2b5368efc46b.rmeta: tests/cross_planner.rs Cargo.toml

tests/cross_planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
