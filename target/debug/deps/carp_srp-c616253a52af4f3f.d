/root/repo/target/debug/deps/carp_srp-c616253a52af4f3f.d: crates/srp/src/lib.rs crates/srp/src/convert.rs crates/srp/src/intra.rs crates/srp/src/planner.rs crates/srp/src/strip_graph.rs

/root/repo/target/debug/deps/libcarp_srp-c616253a52af4f3f.rlib: crates/srp/src/lib.rs crates/srp/src/convert.rs crates/srp/src/intra.rs crates/srp/src/planner.rs crates/srp/src/strip_graph.rs

/root/repo/target/debug/deps/libcarp_srp-c616253a52af4f3f.rmeta: crates/srp/src/lib.rs crates/srp/src/convert.rs crates/srp/src/intra.rs crates/srp/src/planner.rs crates/srp/src/strip_graph.rs

crates/srp/src/lib.rs:
crates/srp/src/convert.rs:
crates/srp/src/intra.rs:
crates/srp/src/planner.rs:
crates/srp/src/strip_graph.rs:
