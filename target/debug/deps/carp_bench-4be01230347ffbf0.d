/root/repo/target/debug/deps/carp_bench-4be01230347ffbf0.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/libcarp_bench-4be01230347ffbf0.rlib: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/libcarp_bench-4be01230347ffbf0.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
