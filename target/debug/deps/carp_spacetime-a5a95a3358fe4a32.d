/root/repo/target/debug/deps/carp_spacetime-a5a95a3358fe4a32.d: crates/spacetime/src/lib.rs crates/spacetime/src/astar.rs crates/spacetime/src/cbs.rs crates/spacetime/src/reservation.rs

/root/repo/target/debug/deps/carp_spacetime-a5a95a3358fe4a32: crates/spacetime/src/lib.rs crates/spacetime/src/astar.rs crates/spacetime/src/cbs.rs crates/spacetime/src/reservation.rs

crates/spacetime/src/lib.rs:
crates/spacetime/src/astar.rs:
crates/spacetime/src/cbs.rs:
crates/spacetime/src/reservation.rs:
