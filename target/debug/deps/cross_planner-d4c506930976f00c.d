/root/repo/target/debug/deps/cross_planner-d4c506930976f00c.d: tests/cross_planner.rs

/root/repo/target/debug/deps/cross_planner-d4c506930976f00c: tests/cross_planner.rs

tests/cross_planner.rs:
