/root/repo/target/debug/deps/carp_bench-8953d56765297ae5.d: crates/bench/src/lib.rs crates/bench/src/svg.rs Cargo.toml

/root/repo/target/debug/deps/libcarp_bench-8953d56765297ae5.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
