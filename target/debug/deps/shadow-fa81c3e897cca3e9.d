/root/repo/target/debug/deps/shadow-fa81c3e897cca3e9.d: crates/srp/tests/shadow.rs

/root/repo/target/debug/deps/libshadow-fa81c3e897cca3e9.rmeta: crates/srp/tests/shadow.rs

crates/srp/tests/shadow.rs:
