/root/repo/target/debug/deps/repro_paper-4a5cce85ce4ce34f.d: crates/bench/benches/repro_paper.rs

/root/repo/target/debug/deps/librepro_paper-4a5cce85ce4ce34f.rmeta: crates/bench/benches/repro_paper.rs

crates/bench/benches/repro_paper.rs:
