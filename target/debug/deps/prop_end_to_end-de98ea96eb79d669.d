/root/repo/target/debug/deps/prop_end_to_end-de98ea96eb79d669.d: tests/prop_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libprop_end_to_end-de98ea96eb79d669.rmeta: tests/prop_end_to_end.rs Cargo.toml

tests/prop_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
