/root/repo/target/release/examples/collision_sweep-8a134571db4e62e2.d: examples/collision_sweep.rs

/root/repo/target/release/examples/collision_sweep-8a134571db4e62e2: examples/collision_sweep.rs

examples/collision_sweep.rs:
