/root/repo/target/release/examples/warehouse_day-5db26c23107ac0b4.d: examples/warehouse_day.rs

/root/repo/target/release/examples/warehouse_day-5db26c23107ac0b4: examples/warehouse_day.rs

examples/warehouse_day.rs:
