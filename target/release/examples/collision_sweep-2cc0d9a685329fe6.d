/root/repo/target/release/examples/collision_sweep-2cc0d9a685329fe6.d: examples/collision_sweep.rs

/root/repo/target/release/examples/collision_sweep-2cc0d9a685329fe6: examples/collision_sweep.rs

examples/collision_sweep.rs:
