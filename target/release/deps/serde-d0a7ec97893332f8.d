/root/repo/target/release/deps/serde-d0a7ec97893332f8.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-d0a7ec97893332f8.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-d0a7ec97893332f8.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
