/root/repo/target/release/deps/carp_geometry-82108528f080f81c.d: crates/geometry/src/lib.rs crates/geometry/src/index.rs crates/geometry/src/intersect.rs crates/geometry/src/segment.rs crates/geometry/src/store.rs

/root/repo/target/release/deps/libcarp_geometry-82108528f080f81c.rlib: crates/geometry/src/lib.rs crates/geometry/src/index.rs crates/geometry/src/intersect.rs crates/geometry/src/segment.rs crates/geometry/src/store.rs

/root/repo/target/release/deps/libcarp_geometry-82108528f080f81c.rmeta: crates/geometry/src/lib.rs crates/geometry/src/index.rs crates/geometry/src/intersect.rs crates/geometry/src/segment.rs crates/geometry/src/store.rs

crates/geometry/src/lib.rs:
crates/geometry/src/index.rs:
crates/geometry/src/intersect.rs:
crates/geometry/src/segment.rs:
crates/geometry/src/store.rs:
