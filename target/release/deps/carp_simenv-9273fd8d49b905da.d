/root/repo/target/release/deps/carp_simenv-9273fd8d49b905da.d: crates/simenv/src/lib.rs crates/simenv/src/audit.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

/root/repo/target/release/deps/libcarp_simenv-9273fd8d49b905da.rlib: crates/simenv/src/lib.rs crates/simenv/src/audit.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

/root/repo/target/release/deps/libcarp_simenv-9273fd8d49b905da.rmeta: crates/simenv/src/lib.rs crates/simenv/src/audit.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

crates/simenv/src/lib.rs:
crates/simenv/src/audit.rs:
crates/simenv/src/metrics.rs:
crates/simenv/src/sim.rs:
