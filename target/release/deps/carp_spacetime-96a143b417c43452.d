/root/repo/target/release/deps/carp_spacetime-96a143b417c43452.d: crates/spacetime/src/lib.rs crates/spacetime/src/astar.rs crates/spacetime/src/cbs.rs crates/spacetime/src/reservation.rs

/root/repo/target/release/deps/libcarp_spacetime-96a143b417c43452.rlib: crates/spacetime/src/lib.rs crates/spacetime/src/astar.rs crates/spacetime/src/cbs.rs crates/spacetime/src/reservation.rs

/root/repo/target/release/deps/libcarp_spacetime-96a143b417c43452.rmeta: crates/spacetime/src/lib.rs crates/spacetime/src/astar.rs crates/spacetime/src/cbs.rs crates/spacetime/src/reservation.rs

crates/spacetime/src/lib.rs:
crates/spacetime/src/astar.rs:
crates/spacetime/src/cbs.rs:
crates/spacetime/src/reservation.rs:
