/root/repo/target/release/deps/srp_warehouse-1a28e637ba969e22.d: src/lib.rs

/root/repo/target/release/deps/libsrp_warehouse-1a28e637ba969e22.rlib: src/lib.rs

/root/repo/target/release/deps/libsrp_warehouse-1a28e637ba969e22.rmeta: src/lib.rs

src/lib.rs:
