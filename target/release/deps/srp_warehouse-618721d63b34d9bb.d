/root/repo/target/release/deps/srp_warehouse-618721d63b34d9bb.d: src/lib.rs

/root/repo/target/release/deps/libsrp_warehouse-618721d63b34d9bb.rlib: src/lib.rs

/root/repo/target/release/deps/libsrp_warehouse-618721d63b34d9bb.rmeta: src/lib.rs

src/lib.rs:
