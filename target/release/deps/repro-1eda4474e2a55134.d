/root/repo/target/release/deps/repro-1eda4474e2a55134.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-1eda4474e2a55134: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
