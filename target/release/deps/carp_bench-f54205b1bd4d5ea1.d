/root/repo/target/release/deps/carp_bench-f54205b1bd4d5ea1.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/release/deps/libcarp_bench-f54205b1bd4d5ea1.rlib: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/release/deps/libcarp_bench-f54205b1bd4d5ea1.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
