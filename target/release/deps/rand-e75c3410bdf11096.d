/root/repo/target/release/deps/rand-e75c3410bdf11096.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-e75c3410bdf11096.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-e75c3410bdf11096.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
