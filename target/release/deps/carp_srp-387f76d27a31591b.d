/root/repo/target/release/deps/carp_srp-387f76d27a31591b.d: crates/srp/src/lib.rs crates/srp/src/convert.rs crates/srp/src/intra.rs crates/srp/src/planner.rs crates/srp/src/strip_graph.rs

/root/repo/target/release/deps/libcarp_srp-387f76d27a31591b.rlib: crates/srp/src/lib.rs crates/srp/src/convert.rs crates/srp/src/intra.rs crates/srp/src/planner.rs crates/srp/src/strip_graph.rs

/root/repo/target/release/deps/libcarp_srp-387f76d27a31591b.rmeta: crates/srp/src/lib.rs crates/srp/src/convert.rs crates/srp/src/intra.rs crates/srp/src/planner.rs crates/srp/src/strip_graph.rs

crates/srp/src/lib.rs:
crates/srp/src/convert.rs:
crates/srp/src/intra.rs:
crates/srp/src/planner.rs:
crates/srp/src/strip_graph.rs:
