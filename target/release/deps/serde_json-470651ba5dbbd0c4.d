/root/repo/target/release/deps/serde_json-470651ba5dbbd0c4.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-470651ba5dbbd0c4.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-470651ba5dbbd0c4.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
