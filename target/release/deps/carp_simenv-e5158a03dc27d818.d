/root/repo/target/release/deps/carp_simenv-e5158a03dc27d818.d: crates/simenv/src/lib.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

/root/repo/target/release/deps/libcarp_simenv-e5158a03dc27d818.rlib: crates/simenv/src/lib.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

/root/repo/target/release/deps/libcarp_simenv-e5158a03dc27d818.rmeta: crates/simenv/src/lib.rs crates/simenv/src/metrics.rs crates/simenv/src/sim.rs

crates/simenv/src/lib.rs:
crates/simenv/src/metrics.rs:
crates/simenv/src/sim.rs:
