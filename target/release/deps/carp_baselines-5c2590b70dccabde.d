/root/repo/target/release/deps/carp_baselines-5c2590b70dccabde.d: crates/baselines/src/lib.rs crates/baselines/src/acp.rs crates/baselines/src/common.rs crates/baselines/src/rp.rs crates/baselines/src/sap.rs crates/baselines/src/sipp.rs crates/baselines/src/twp.rs

/root/repo/target/release/deps/libcarp_baselines-5c2590b70dccabde.rlib: crates/baselines/src/lib.rs crates/baselines/src/acp.rs crates/baselines/src/common.rs crates/baselines/src/rp.rs crates/baselines/src/sap.rs crates/baselines/src/sipp.rs crates/baselines/src/twp.rs

/root/repo/target/release/deps/libcarp_baselines-5c2590b70dccabde.rmeta: crates/baselines/src/lib.rs crates/baselines/src/acp.rs crates/baselines/src/common.rs crates/baselines/src/rp.rs crates/baselines/src/sap.rs crates/baselines/src/sipp.rs crates/baselines/src/twp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/acp.rs:
crates/baselines/src/common.rs:
crates/baselines/src/rp.rs:
crates/baselines/src/sap.rs:
crates/baselines/src/sipp.rs:
crates/baselines/src/twp.rs:
