/root/repo/target/release/deps/carp_bench-ec2f3903c8a0bb4c.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/release/deps/libcarp_bench-ec2f3903c8a0bb4c.rlib: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/release/deps/libcarp_bench-ec2f3903c8a0bb4c.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
