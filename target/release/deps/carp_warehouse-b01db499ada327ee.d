/root/repo/target/release/deps/carp_warehouse-b01db499ada327ee.d: crates/warehouse/src/lib.rs crates/warehouse/src/collision.rs crates/warehouse/src/dataset.rs crates/warehouse/src/layout.rs crates/warehouse/src/matrix.rs crates/warehouse/src/memory.rs crates/warehouse/src/planner.rs crates/warehouse/src/render.rs crates/warehouse/src/request.rs crates/warehouse/src/route.rs crates/warehouse/src/tasks.rs crates/warehouse/src/types.rs

/root/repo/target/release/deps/libcarp_warehouse-b01db499ada327ee.rlib: crates/warehouse/src/lib.rs crates/warehouse/src/collision.rs crates/warehouse/src/dataset.rs crates/warehouse/src/layout.rs crates/warehouse/src/matrix.rs crates/warehouse/src/memory.rs crates/warehouse/src/planner.rs crates/warehouse/src/render.rs crates/warehouse/src/request.rs crates/warehouse/src/route.rs crates/warehouse/src/tasks.rs crates/warehouse/src/types.rs

/root/repo/target/release/deps/libcarp_warehouse-b01db499ada327ee.rmeta: crates/warehouse/src/lib.rs crates/warehouse/src/collision.rs crates/warehouse/src/dataset.rs crates/warehouse/src/layout.rs crates/warehouse/src/matrix.rs crates/warehouse/src/memory.rs crates/warehouse/src/planner.rs crates/warehouse/src/render.rs crates/warehouse/src/request.rs crates/warehouse/src/route.rs crates/warehouse/src/tasks.rs crates/warehouse/src/types.rs

crates/warehouse/src/lib.rs:
crates/warehouse/src/collision.rs:
crates/warehouse/src/dataset.rs:
crates/warehouse/src/layout.rs:
crates/warehouse/src/matrix.rs:
crates/warehouse/src/memory.rs:
crates/warehouse/src/planner.rs:
crates/warehouse/src/render.rs:
crates/warehouse/src/request.rs:
crates/warehouse/src/route.rs:
crates/warehouse/src/tasks.rs:
crates/warehouse/src/types.rs:
