/root/repo/target/release/deps/serde_derive-b79305c6ea91c6ce.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-b79305c6ea91c6ce.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
