//! Cross-crate integration tests: every planner against the same streams,
//! audited by the ground-truth conflict semantics, plus cross-planner
//! effectiveness comparisons.

use srp_warehouse::prelude::*;
use srp_warehouse::warehouse::collision::validate_routes;

fn planners(layout: &LayoutConfig) -> Vec<Box<dyn Planner>> {
    let l = layout.generate();
    vec![
        Box::new(SrpPlanner::new(l.matrix.clone(), SrpConfig::default())),
        Box::new(SapPlanner::new(l.matrix.clone(), AStarConfig::default())),
        Box::new(RpPlanner::new(l.matrix.clone(), RpConfig::default())),
        Box::new(AcpPlanner::new(l.matrix.clone(), AcpConfig::default())),
    ]
}

#[test]
fn all_planners_survive_identical_request_stream() {
    let cfg = LayoutConfig::small();
    let layout = cfg.generate();
    let requests = generate_requests(&layout, 90, 3.0, 2024);
    for mut planner in planners(&cfg) {
        let mut planned = 0usize;
        let mut final_routes: Vec<(u64, Route)> = Vec::new();
        for req in &requests {
            if let PlanOutcome::Planned(r) = planner.plan(req) {
                assert!(
                    r.validate(&layout.matrix).is_ok(),
                    "{}: invalid route",
                    planner.name()
                );
                if planner.name() == "SRP" {
                    // SRP records where each route came from; the tag must be
                    // readable while the route is committed.
                    let p = planner.provenance(req.id).expect("SRP provenance");
                    assert!(p.contains("path="), "unexpected provenance format: {p}");
                }
                planned += 1;
                final_routes.push((req.id, r));
            }
            for (rid, revised) in planner.advance(req.t) {
                // Revisions replace earlier routes.
                assert!(revised.validate(&layout.matrix).is_ok());
                if let Some(slot) = final_routes.iter_mut().find(|(id, _)| *id == rid) {
                    slot.1 = revised;
                }
            }
        }
        assert!(
            planned >= 85,
            "{}: too many infeasible ({} of {})",
            planner.name(),
            requests.len() - planned,
            requests.len()
        );
        // The final route set must be mutually collision-free: the
        // incremental auditor accepts every post-revision route.
        let mut auditor = IncrementalAuditor::new();
        for (rid, r) in &final_routes {
            if let Err(c) = auditor.commit(*rid, r) {
                panic!(
                    "{}: audit refused route: {c}\n  existing: {}\n  incoming: {}",
                    planner.name(),
                    planner
                        .provenance(c.existing)
                        .unwrap_or_else(|| "unrecorded".into()),
                    planner
                        .provenance(c.incoming)
                        .unwrap_or_else(|| "unrecorded".into()),
                );
            }
        }
        assert_eq!(auditor.active(), final_routes.len());
    }
}

#[test]
fn srp_and_sap_routes_have_comparable_length() {
    let layout = LayoutConfig::small().generate();
    let requests = generate_requests(&layout, 60, 2.0, 7);
    let mut srp = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
    let mut sap = SapPlanner::new(layout.matrix.clone(), AStarConfig::default());
    let (mut srp_total, mut sap_total) = (0u64, 0u64);
    for req in &requests {
        if let (Some(a), Some(b)) = (srp.plan(req).route(), sap.plan(req).route()) {
            srp_total += a.duration() as u64;
            sap_total += b.duration() as u64;
        }
    }
    let ratio = srp_total as f64 / sap_total as f64;
    // Theorem 1 bounds the per-route expectation by 1.788; aggregates on
    // light traffic should be much closer to 1.
    assert!(
        (0.95..1.30).contains(&ratio),
        "SRP/SAP total duration ratio {ratio:.3} ({srp_total} vs {sap_total})"
    );
}

#[test]
fn full_simulated_day_cross_planner_audit() {
    let layout = LayoutConfig::small().generate();
    let tasks = generate_tasks(&layout, &DayProfile::new(500, 35), 99);
    for kind in ["SRP", "SAP", "ACP"] {
        let planner: Box<dyn Planner> = match kind {
            "SRP" => Box::new(SrpPlanner::new(layout.matrix.clone(), SrpConfig::default())),
            "SAP" => Box::new(SapPlanner::new(
                layout.matrix.clone(),
                AStarConfig::default(),
            )),
            _ => Box::new(AcpPlanner::new(layout.matrix.clone(), AcpConfig::default())),
        };
        let (report, _) = Simulation::new(&layout, &tasks, planner, SimConfig::default()).run();
        assert_eq!(report.audit_conflicts, 0, "{kind} leaked conflicts");
        assert_eq!(
            report.completed, report.tasks,
            "{kind} left tasks unfinished"
        );
        assert!(
            report.makespan >= 500,
            "{kind}: makespan shorter than the day"
        );
    }
}

#[test]
fn segment_and_grid_representations_agree_on_collisions() {
    // Plan routes with SRP (segment-based collision state) and re-validate
    // every pair at grid level: if the representations disagreed, the audit
    // would find conflicts the segment stores missed.
    let layout = LayoutConfig::small().generate();
    let mut srp = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
    let requests = generate_requests(&layout, 150, 5.0, 1234);
    let mut routes = Vec::new();
    for req in &requests {
        if let PlanOutcome::Planned(r) = srp.plan(req) {
            routes.push(r);
        }
    }
    assert!(routes.len() > 140);
    assert_eq!(validate_routes(&routes), None);
}

#[test]
fn srp_routes_are_bit_identical_for_every_partition_count() {
    // The sharded engine is a pure storage-layout change: partitioning the
    // per-strip shards must never alter a single committed route, even with
    // retirement interleaved into the stream.
    let layout = LayoutConfig::small().generate();
    let requests = generate_requests(&layout, 120, 4.0, 104);
    let mut streams: Vec<Vec<(u64, Route)>> = Vec::new();
    for parts in [1usize, 4, 8] {
        let config = SrpConfig {
            store_partitions: parts,
            ..SrpConfig::default()
        };
        let mut planner = SrpPlanner::new(layout.matrix.clone(), config);
        let mut planned = Vec::new();
        for req in &requests {
            planner.advance(req.t);
            if let PlanOutcome::Planned(r) = planner.plan(req) {
                planned.push((req.id, r));
            }
        }
        streams.push(planned);
    }
    assert!(streams[0].len() >= 110);
    assert_eq!(
        streams[0], streams[1],
        "partitions=4 diverged from the serial engine"
    );
    assert_eq!(
        streams[0], streams[2],
        "partitions=8 diverged from the serial engine"
    );
}

#[test]
fn every_committed_route_has_provenance_in_all_three_planners() {
    // SRP tags planner paths, RP tags CBS group membership, TWP tags the
    // planning window: a committed route without provenance means an audit
    // trail gap, so the invariant holds across all three planners.
    let layout = LayoutConfig::small().generate();
    let requests = generate_requests(&layout, 60, 3.0, 11);
    let planners: Vec<Box<dyn Planner>> = vec![
        Box::new(SrpPlanner::new(layout.matrix.clone(), SrpConfig::default())),
        Box::new(RpPlanner::new(layout.matrix.clone(), RpConfig::default())),
        // A window covering the whole stream keeps TWP's optimistic
        // beyond-horizon commits out of play: this test is about provenance
        // bookkeeping, not windowed conflict deferral (twp_full_day covers
        // that), and the reservation table treats residual double bookings
        // as planner bugs in debug builds.
        Box::new(TwpPlanner::new(
            layout.matrix.clone(),
            TwpConfig {
                window: 4096,
                ..TwpConfig::default()
            },
        )),
    ];
    for mut planner in planners {
        let mut committed = 0usize;
        for req in &requests {
            if let PlanOutcome::Planned(_) = planner.plan(req) {
                committed += 1;
                let p = planner
                    .provenance(req.id)
                    .unwrap_or_else(|| panic!("{}: no provenance for {}", planner.name(), req.id));
                assert!(
                    !p.trim().is_empty(),
                    "{}: empty provenance for {}",
                    planner.name(),
                    req.id
                );
            }
            // Revisions (RP's CBS groups, TWP's window repairs) must keep the
            // tags of every revised route readable too.
            for (rid, _) in planner.advance(req.t) {
                assert!(
                    planner
                        .provenance(rid)
                        .is_some_and(|p| !p.trim().is_empty()),
                    "{}: revised route {rid} lost its provenance",
                    planner.name()
                );
            }
        }
        assert!(committed >= 50, "{}: too few planned", planner.name());
    }
}

#[test]
fn workspace_prelude_exposes_a_complete_api() {
    // Compile-time check that the prelude covers the typical workflow.
    let matrix = WarehouseMatrix::from_ascii(".....\n.##..\n.....");
    let mut planner = SrpPlanner::new(matrix, SrpConfig::default());
    let req = Request::new(0, 0, Cell::new(0, 0), Cell::new(2, 4), QueryKind::Pickup);
    let route = planner.plan(&req).route().cloned().expect("planned");
    assert_eq!(route.destination(), Cell::new(2, 4));
    assert!(planner.memory_bytes() > 0);
}
