//! Workspace-level property tests: random layouts and random request
//! streams must always yield valid, mutually collision-free routes.

use proptest::prelude::*;
use srp_warehouse::prelude::*;
use srp_warehouse::warehouse::collision::{first_conflict, validate_routes};
use srp_warehouse::warehouse::layout::LayoutConfig;
use srp_warehouse::warehouse::types::Time;

/// Random but well-formed layout configurations.
fn arb_layout() -> impl Strategy<Value = LayoutConfig> {
    (2u16..5, 1u16..3, 1u16..3, 16u32..80).prop_map(|(cluster_len, col_gap, band_gap, racks)| {
        LayoutConfig {
            rows: 24,
            cols: 20,
            cluster_len,
            col_gap,
            band_gap,
            margin_top: 2,
            margin_bottom: 3,
            margin_left: 2,
            margin_right: 2,
            target_racks: racks,
            pickers: 4,
            robots: 6,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SRP plans collision-free streams on arbitrary regular layouts. Every
    /// commit is audited online; a refusal fails the case with the route's
    /// provenance and a replayable JSON repro.
    #[test]
    fn srp_streams_are_collision_free(cfg in arb_layout(), seed in 0u64..1000) {
        let layout = cfg.generate();
        let mut planner = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
        let requests = generate_requests(&layout, 40, 3.0, seed);
        let mut auditor = IncrementalAuditor::new();
        let mut routes = Vec::new();
        for req in &requests {
            if let PlanOutcome::Planned(r) = planner.plan(req) {
                prop_assert!(r.validate(&layout.matrix).is_ok());
                prop_assert!(r.start >= req.t);
                prop_assert_eq!(r.origin(), req.origin);
                prop_assert_eq!(r.destination(), req.destination);
                if let Err(c) = auditor.commit(req.id, &r) {
                    let provenance = vec![
                        format!("existing request {}: {}", c.existing,
                            planner.provenance(c.existing).unwrap_or_else(|| "unrecorded".into())),
                        format!("incoming request {}: {}", c.incoming,
                            planner.provenance(c.incoming).unwrap_or_else(|| "unrecorded".into())),
                    ];
                    let existing = auditor.route(c.existing).cloned().expect("committed");
                    let bundle = ReproBundle::new(cfg.clone(), requests.clone(), &c, &existing, &r, provenance);
                    prop_assert!(false, "seed {seed}: audit refused route: {c}\nrepro:\n{}", bundle.to_json());
                }
                routes.push(r);
            }
        }
        prop_assert!(routes.len() >= 36, "only {} of 40 planned", routes.len());
        prop_assert_eq!(validate_routes(&routes), None);
    }

    /// The strip graph partitions every generated layout exactly.
    #[test]
    fn strip_graph_partitions_random_layouts(cfg in arb_layout()) {
        let layout = cfg.generate();
        let graph = StripGraph::build(&layout.matrix);
        let mut seen = vec![0u32; graph.num_vertices()];
        for cell in layout.matrix.cells() {
            let sid = graph.strip_of(&layout.matrix, cell);
            let strip = graph.strip(sid);
            prop_assert!(strip.contains(cell));
            seen[sid as usize] += 1;
        }
        for (i, s) in graph.strips.iter().enumerate() {
            prop_assert_eq!(seen[i], s.len(), "strip {} cell count", i);
        }
    }

    /// Retirement never changes plan outcomes for non-overlapping eras:
    /// a request issued after everything finished gets an unobstructed
    /// shortest route.
    #[test]
    fn retirement_restores_clean_state(seed in 0u64..500) {
        let layout = LayoutConfig::small().generate();
        let mut planner = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
        let requests = generate_requests(&layout, 20, 4.0, seed);
        let mut last_end = 0;
        for req in &requests {
            if let PlanOutcome::Planned(r) = planner.plan(req) {
                last_end = last_end.max(r.end_time());
            }
        }
        planner.advance(last_end + 1);
        prop_assert_eq!(planner.total_segments(), 0);
        // A fresh request sees an empty warehouse.
        let free: Vec<Cell> = layout.matrix.cells().filter(|&c| layout.matrix.is_free(c)).collect();
        let (o, d) = (free[seed as usize % free.len()], free[(seed as usize * 7 + 3) % free.len()]);
        let req = Request::new(9_999, last_end + 1, o, d, QueryKind::Pickup);
        if let PlanOutcome::Planned(r) = planner.plan(&req) {
            // Traffic-free routes must start immediately and be within the
            // small geometric detour the greedy inter-strip transit can add
            // (§VII-A) — any residual *waiting* would betray stale state.
            prop_assert_eq!(r.start, req.t);
            prop_assert!(r.duration() >= o.manhattan(d));
            prop_assert!(
                r.duration() <= o.manhattan(d) + 6,
                "duration {} far above manhattan {}",
                r.duration(),
                o.manhattan(d)
            );
        }
    }
}

/// Random bounded walks in an 8×8 open grid: start time, start cell, then a
/// sequence of clamped moves (N/S/E/W/wait).
fn arb_route() -> impl Strategy<Value = Route> {
    (
        0u32..8,
        0u16..8,
        0u16..8,
        proptest::collection::vec(0u8..5, 1..20),
    )
        .prop_map(|(start, r0, c0, moves)| {
            let mut cells = vec![Cell::new(r0, c0)];
            for m in moves {
                let last = *cells.last().expect("nonempty");
                let next = match m {
                    0 => Cell::new(last.row.saturating_sub(1), last.col),
                    1 => Cell::new((last.row + 1).min(7), last.col),
                    2 => Cell::new(last.row, last.col.saturating_sub(1)),
                    3 => Cell::new(last.row, (last.col + 1).min(7)),
                    _ => last,
                };
                cells.push(next);
            }
            Route::new(start as Time, cells)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Differential check of the two ground-truth validators: the linear-pass
    /// batch `validate_routes` must agree with the exhaustive minimum over
    /// pairwise `first_conflict` on conflict existence, kind, time and the
    /// half-step ordering (a swap at `t` occurs at `t + ½`).
    #[test]
    fn batch_validator_agrees_with_pairwise_first_conflict(
        routes in proptest::collection::vec(arb_route(), 2..6)
    ) {
        let batch = validate_routes(&routes);
        let pairwise = routes
            .iter()
            .enumerate()
            .flat_map(|(i, a)| routes.iter().enumerate().skip(i + 1).map(move |(j, b)| ((i, j), a, b)))
            .filter_map(|(pair, a, b)| first_conflict(a, b).map(|c| (pair, c)))
            .min_by_key(|(_, c)| c.order_key());
        match (batch, pairwise) {
            (None, None) => {}
            (Some(b), Some((pair, p))) => {
                // The batch pass may attribute an equal-key conflict to a
                // different pair (its map keeps the first occupant only), but
                // the earliest kind/time — hence the order key — must match.
                prop_assert_eq!(b.kind, p.kind, "pairwise pair {:?}", pair);
                prop_assert_eq!(b.time, p.time, "pairwise pair {:?}", pair);
                prop_assert_eq!(b.order_key(), p.order_key());
            }
            (b, p) => prop_assert!(false, "batch {:?} vs pairwise {:?} disagree on existence", b, p),
        }
    }

    /// The incremental auditor is a faithful online mirror of the batch
    /// validator: sequential commits accept exactly a collision-free prefix
    /// set, and a commit → cancel → recommit round trip reproduces the same
    /// verdicts from the same state.
    #[test]
    fn auditor_round_trips_commit_cancel_recommit(
        routes in proptest::collection::vec(arb_route(), 2..6)
    ) {
        let mut auditor = IncrementalAuditor::new();
        let first: Vec<bool> = routes
            .iter()
            .enumerate()
            .map(|(i, r)| auditor.commit(i as u64, r).is_ok())
            .collect();
        // The accepted subset is collision-free by construction.
        let accepted: Vec<Route> = routes
            .iter()
            .zip(&first)
            .filter(|(_, &ok)| ok)
            .map(|(r, _)| r.clone())
            .collect();
        prop_assert_eq!(validate_routes(&accepted), None);
        // All-accepted iff the whole set is collision-free (batch verdict).
        prop_assert_eq!(first.iter().all(|&ok| ok), validate_routes(&routes).is_none());
        // Cancel everything: the auditor must drain completely.
        for (i, &ok) in first.iter().enumerate() {
            prop_assert_eq!(auditor.cancel(i as u64), ok);
        }
        prop_assert!(auditor.is_empty(), "{} routes still active", auditor.active());
        // Recommit in the same order: identical verdicts.
        let second: Vec<bool> = routes
            .iter()
            .enumerate()
            .map(|(i, r)| auditor.commit(i as u64, r).is_ok())
            .collect();
        prop_assert_eq!(first, second);
    }
}

/// The pinned seed-104 instance, frozen as a self-contained JSON
/// `ReproBundle` (regenerate with `cargo run --example pin_seed_104 --
/// --write`). `include_str!` makes a missing fixture a compile error.
const SEED_104_FIXTURE: &str = include_str!("../crates/srp/tests/fixtures/seed_104.json");

/// Pinned replay of the `srp_streams_are_collision_free` regression
/// (`tests/prop_end_to_end.proptest-regressions`, "shrinks to seed = 104").
/// The saved byte seed is RNG-specific, so the replay has two layers:
/// the explicit `ReproBundle` fixture freezing the densest instance
/// verbatim (immune to generator drift), then a walk of the whole
/// deterministic configuration grid of `arb_layout` at request seed 104 —
/// a superset of the instance that originally collided.
#[test]
fn seed_104_regression_replay() {
    // Layer 1: the frozen fixture. Replay its exact request stream under
    // both the serial and the batched/parallel search configurations; the
    // audit must stay clean and the batched routes bit-identical.
    let bundle = ReproBundle::from_json(SEED_104_FIXTURE).expect("fixture parses");
    let layout = bundle.layout.generate();
    assert_eq!(
        bundle.requests,
        generate_requests(&layout, 40, 3.0, 104),
        "task generator drifted from the frozen seed-104 stream; if the \
         change is intentional, regenerate the fixture with \
         `cargo run --example pin_seed_104 -- --write`"
    );
    let configs = [
        SrpConfig {
            frontier_batch: 1,
            engine_threads: Some(1),
            ..SrpConfig::default()
        },
        SrpConfig {
            store_partitions: 8,
            frontier_batch: 64,
            engine_threads: Some(4),
            ..SrpConfig::default()
        },
    ];
    let mut per_config_routes: Vec<Vec<(u64, Route)>> = Vec::new();
    for config in configs {
        let mut planner = SrpPlanner::new(layout.matrix.clone(), config);
        let mut auditor = IncrementalAuditor::new();
        let mut routes = Vec::new();
        for req in &bundle.requests {
            if let PlanOutcome::Planned(r) = planner.plan(req) {
                assert!(r.validate(&layout.matrix).is_ok(), "fixture replay");
                auditor
                    .commit(req.id, &r)
                    .unwrap_or_else(|c| panic!("fixture replay: audit refused route: {c}"));
                routes.push((req.id, r));
            }
        }
        assert_eq!(
            validate_routes(&routes.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>()),
            None
        );
        per_config_routes.push(routes);
    }
    assert_eq!(
        per_config_routes[0], per_config_routes[1],
        "batched/parallel search diverged from serial on the pinned instance"
    );

    // Layer 2: the deterministic configuration grid.
    for cluster_len in 2u16..5 {
        for col_gap in 1u16..3 {
            for band_gap in 1u16..3 {
                for target_racks in (16u32..80).step_by(7) {
                    let cfg = LayoutConfig {
                        rows: 24,
                        cols: 20,
                        cluster_len,
                        col_gap,
                        band_gap,
                        margin_top: 2,
                        margin_bottom: 3,
                        margin_left: 2,
                        margin_right: 2,
                        target_racks,
                        pickers: 4,
                        robots: 6,
                    };
                    let layout = cfg.generate();
                    let mut planner = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
                    let mut auditor = IncrementalAuditor::new();
                    let requests = generate_requests(&layout, 40, 3.0, 104);
                    let mut routes = Vec::new();
                    for req in &requests {
                        if let PlanOutcome::Planned(r) = planner.plan(req) {
                            assert!(r.validate(&layout.matrix).is_ok(), "cfg {cfg:?}");
                            if let Err(c) = auditor.commit(req.id, &r) {
                                panic!(
                                    "cfg {cfg:?}: {c}\n  existing: {}\n  incoming: {}",
                                    planner
                                        .provenance(c.existing)
                                        .unwrap_or_else(|| "unrecorded".into()),
                                    planner
                                        .provenance(c.incoming)
                                        .unwrap_or_else(|| "unrecorded".into()),
                                );
                            }
                            routes.push(r);
                        }
                    }
                    assert_eq!(validate_routes(&routes), None, "cfg {cfg:?}");
                }
            }
        }
    }
}
