//! Workspace-level property tests: random layouts and random request
//! streams must always yield valid, mutually collision-free routes.

use proptest::prelude::*;
use srp_warehouse::prelude::*;
use srp_warehouse::warehouse::collision::validate_routes;
use srp_warehouse::warehouse::layout::LayoutConfig;

/// Random but well-formed layout configurations.
fn arb_layout() -> impl Strategy<Value = LayoutConfig> {
    (2u16..5, 1u16..3, 1u16..3, 16u32..80).prop_map(|(cluster_len, col_gap, band_gap, racks)| {
        LayoutConfig {
            rows: 24,
            cols: 20,
            cluster_len,
            col_gap,
            band_gap,
            margin_top: 2,
            margin_bottom: 3,
            margin_left: 2,
            margin_right: 2,
            target_racks: racks,
            pickers: 4,
            robots: 6,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SRP plans collision-free streams on arbitrary regular layouts.
    #[test]
    fn srp_streams_are_collision_free(cfg in arb_layout(), seed in 0u64..1000) {
        let layout = cfg.generate();
        let mut planner = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
        let requests = generate_requests(&layout, 40, 3.0, seed);
        let mut routes = Vec::new();
        for req in &requests {
            if let PlanOutcome::Planned(r) = planner.plan(req) {
                prop_assert!(r.validate(&layout.matrix).is_ok());
                prop_assert!(r.start >= req.t);
                prop_assert_eq!(r.origin(), req.origin);
                prop_assert_eq!(r.destination(), req.destination);
                routes.push(r);
            }
        }
        prop_assert!(routes.len() >= 36, "only {} of 40 planned", routes.len());
        prop_assert_eq!(validate_routes(&routes), None);
    }

    /// The strip graph partitions every generated layout exactly.
    #[test]
    fn strip_graph_partitions_random_layouts(cfg in arb_layout()) {
        let layout = cfg.generate();
        let graph = StripGraph::build(&layout.matrix);
        let mut seen = vec![0u32; graph.num_vertices()];
        for cell in layout.matrix.cells() {
            let sid = graph.strip_of(&layout.matrix, cell);
            let strip = graph.strip(sid);
            prop_assert!(strip.contains(cell));
            seen[sid as usize] += 1;
        }
        for (i, s) in graph.strips.iter().enumerate() {
            prop_assert_eq!(seen[i], s.len(), "strip {} cell count", i);
        }
    }

    /// Retirement never changes plan outcomes for non-overlapping eras:
    /// a request issued after everything finished gets an unobstructed
    /// shortest route.
    #[test]
    fn retirement_restores_clean_state(seed in 0u64..500) {
        let layout = LayoutConfig::small().generate();
        let mut planner = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
        let requests = generate_requests(&layout, 20, 4.0, seed);
        let mut last_end = 0;
        for req in &requests {
            if let PlanOutcome::Planned(r) = planner.plan(req) {
                last_end = last_end.max(r.end_time());
            }
        }
        planner.advance(last_end + 1);
        prop_assert_eq!(planner.total_segments(), 0);
        // A fresh request sees an empty warehouse.
        let free: Vec<Cell> = layout.matrix.cells().filter(|&c| layout.matrix.is_free(c)).collect();
        let (o, d) = (free[seed as usize % free.len()], free[(seed as usize * 7 + 3) % free.len()]);
        let req = Request::new(9_999, last_end + 1, o, d, QueryKind::Pickup);
        if let PlanOutcome::Planned(r) = planner.plan(&req) {
            // Traffic-free routes must start immediately and be within the
            // small geometric detour the greedy inter-strip transit can add
            // (§VII-A) — any residual *waiting* would betray stale state.
            prop_assert_eq!(r.start, req.t);
            prop_assert!(r.duration() >= o.manhattan(d));
            prop_assert!(
                r.duration() <= o.manhattan(d) + 6,
                "duration {} far above manhattan {}",
                r.duration(),
                o.manhattan(d)
            );
        }
    }
}
