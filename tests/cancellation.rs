//! Route-cancellation semantics across all planners: cancelling a
//! committed route must free its capacity exactly, and cancelling unknown
//! ids must be refused.

use srp_warehouse::prelude::*;

fn all_planners(matrix: &WarehouseMatrix) -> Vec<Box<dyn Planner>> {
    vec![
        Box::new(SrpPlanner::new(matrix.clone(), SrpConfig::default())),
        Box::new(SapPlanner::new(matrix.clone(), AStarConfig::default())),
        Box::new(RpPlanner::new(matrix.clone(), RpConfig::default())),
        Box::new(TwpPlanner::new(matrix.clone(), TwpConfig::default())),
        Box::new(AcpPlanner::new(matrix.clone(), AcpConfig::default())),
    ]
}

#[test]
fn cancelled_route_frees_the_corridor() {
    // A single-row corridor: while route 0 sweeps it, an opposing request
    // must wait/detour; after cancellation, the corridor is free again.
    let matrix = WarehouseMatrix::empty(1, 12);
    for mut planner in all_planners(&matrix) {
        let name = planner.name();
        let blocker = Request::new(0, 0, Cell::new(0, 0), Cell::new(0, 11), QueryKind::Pickup);
        assert!(planner.plan(&blocker).route().is_some(), "{name}: blocker");

        assert!(planner.cancel(0), "{name}: cancel must succeed");
        assert!(!planner.cancel(0), "{name}: double cancel must fail");

        // Same corridor, opposite direction, same instant: only possible
        // because the blocker is gone (a 1-row corridor has no detours).
        let free = Request::new(1, 0, Cell::new(0, 11), Cell::new(0, 0), QueryKind::Pickup);
        let route = planner
            .plan(&free)
            .route()
            .cloned()
            .unwrap_or_else(|| panic!("{name}: corridor still blocked after cancel"));
        assert_eq!(
            route.duration(),
            11,
            "{name}: expected the unobstructed sweep"
        );
    }
}

#[test]
fn cancel_unknown_id_is_refused_everywhere() {
    let matrix = WarehouseMatrix::empty(4, 4);
    for mut planner in all_planners(&matrix) {
        assert!(!planner.cancel(424242), "{}", planner.name());
    }
}

#[test]
fn cancel_does_not_disturb_other_routes() {
    let matrix = WarehouseMatrix::empty(4, 10);
    let mut planner = SrpPlanner::new(matrix.clone(), SrpConfig::default());
    let r0 = planner
        .plan(&Request::new(
            0,
            0,
            Cell::new(0, 0),
            Cell::new(0, 9),
            QueryKind::Pickup,
        ))
        .route()
        .cloned()
        .expect("r0");
    planner
        .plan(&Request::new(
            1,
            0,
            Cell::new(2, 0),
            Cell::new(2, 9),
            QueryKind::Pickup,
        ))
        .route()
        .expect("r1");
    assert!(planner.cancel(1));
    // Route 0's reservations must still block a head-on request on row 0.
    let head_on = planner
        .plan(&Request::new(
            2,
            0,
            Cell::new(0, 9),
            Cell::new(0, 0),
            QueryKind::Pickup,
        ))
        .route()
        .cloned()
        .expect("r2 plans around r0");
    assert!(
        srp_warehouse::warehouse::collision::first_conflict(&r0, &head_on).is_none(),
        "cancel(1) must not have freed route 0's cells"
    );
    assert!(head_on.finish_exclusive() > r0.finish_exclusive());
}
