//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! seedable deterministic generators (`StdRng`, `SmallRng`), `gen`,
//! `gen_range` over integer/float ranges and `gen_bool`.
//!
//! The value streams do **not** match upstream `rand` bit-for-bit (the
//! upstream generators are ChaCha12/Xoshiro with different seeding);
//! everything in this workspace only relies on *determinism per seed*,
//! which this crate guarantees: the same seed always yields the same
//! stream, on every platform.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a standard-distribution type (`f64`/`f32` in
    /// `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range. Panics on an empty range, like
    /// upstream `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: f64 = Standard::sample_standard(rng);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// xoshiro256** core, seeded via SplitMix64 — deterministic and portable.
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Deterministic "standard" generator (xoshiro256** here, not ChaCha).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng(Xoshiro256::seed_from_u64(state))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Small fast generator; identical engine to [`StdRng`] in this stub.
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Domain-separated from StdRng so the two streams differ.
            SmallRng(Xoshiro256::seed_from_u64(state ^ 0x5111_0a11_5111_0a11))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100)
            .filter(|_| a.gen_range(0u32..1000) == c.gen_range(0u32..1000))
            .count();
        assert!(same < 20, "different seeds should diverge");
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(0u32..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
        // Both endpoints of a small range are hit.
        let hits: std::collections::HashSet<i32> = (0..200).map(|_| rng.gen_range(0..3)).collect();
        assert_eq!(hits.len(), 3);
    }
}
