//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored Value-based `serde` by scanning the raw token stream — no
//! `syn`/`quote` (unavailable offline). Supported shapes, which cover every
//! derive in this workspace:
//!
//! * structs with named fields → JSON-style map keyed by field name;
//! * enums with unit variants only → the variant name as a string.
//!
//! Generics and `#[serde(...)]` attributes are rejected with a compile
//! error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the Value-based `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive the Value-based `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// Unit variant names, in declaration order.
    Enum(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let (name, shape) = match parse(input) {
        Ok(x) => x,
        Err(msg) => {
            let escaped = msg.replace('"', "\\\"");
            return format!("compile_error!(\"{escaped}\");").parse().unwrap();
        }
    };
    let code = match (&shape, mode) {
        (Shape::Struct(fields), Mode::Serialize) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Struct(fields), Mode::Deserialize) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::field(map, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let map = v.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", \"{name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Enum(variants), Mode::Serialize) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Enum(variants), Mode::Deserialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v.as_str().ok_or_else(|| ::serde::Error::expected(\"string\", \"{name}\"))? {{\n\
                             {arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\n\
                                 format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde stub derive: expected struct/enum, got {other:?}"
            ))
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde stub derive: expected type name, got {other:?}"
            ))
        }
    };
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!("serde stub derive: generics on `{name}` are not supported"))
        }
        _ => {
            return Err(format!(
                "serde stub derive: `{name}` must be a braced struct or enum (tuple/unit shapes unsupported)"
            ))
        }
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body, &name)?),
        "enum" => Shape::Enum(parse_unit_variants(body, &name)?),
        other => {
            return Err(format!(
                "serde stub derive: unsupported item kind `{other}`"
            ))
        }
    };
    Ok((name, shape))
}

/// Field grammar handled: `#[attr]* pub? ident : Type ,` with `<>` nesting
/// inside `Type`.
fn parse_named_fields(body: TokenStream, ty: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes / doc comments on the field.
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                iter.next();
                iter.next();
            } else {
                break;
            }
        }
        let field = loop {
            match iter.next() {
                None => return Ok(fields),
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    return Err(format!(
                        "serde stub derive: unexpected token {other} in fields of `{ty}`"
                    ))
                }
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => {
                return Err(format!(
                    "serde stub derive: expected `:` after field `{field}` of `{ty}`"
                ))
            }
        }
        fields.push(field);
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
}

fn parse_unit_variants(body: TokenStream, ty: &str) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                iter.next();
                iter.next();
            } else {
                break;
            }
        }
        match iter.next() {
            None => return Ok(variants),
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            Some(other) => {
                return Err(format!(
                    "serde stub derive: unexpected token {other} in enum `{ty}`"
                ))
            }
        }
        match iter.next() {
            None => return Ok(variants),
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde stub derive: enum `{ty}` has a non-unit variant `{}` (unsupported)",
                    variants.last().unwrap()
                ))
            }
            Some(other) => {
                return Err(format!(
                    "serde stub derive: unexpected token {other} after variant in `{ty}`"
                ))
            }
        }
    }
}
