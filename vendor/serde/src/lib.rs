//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal serialization framework under serde's names. Instead of the
//! visitor architecture, both traits go through a self-describing
//! [`Value`] tree (the shape `serde_json` needs anyway, which is the only
//! format this workspace serializes to):
//!
//! * [`Serialize`] — `fn to_value(&self) -> Value`;
//! * [`Deserialize`] — `fn from_value(&Value) -> Result<Self, Error>`.
//!
//! `#[derive(Serialize, Deserialize)]` is provided by the vendored
//! `serde_derive` (enabled via the `derive` feature, like upstream) for
//! named-field structs and unit-variant enums — the only shapes this
//! workspace derives. Serde *attributes* (`#[serde(...)]`) are not
//! supported.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree — the interchange point between
/// [`Serialize`], [`Deserialize`] and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `Option::None`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String (also the encoding of unit enum variants).
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with string keys, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up a field in a map value; used by derived `Deserialize` impls.
pub fn field<'a>(map: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// "expected X while deserializing Y" helper for derived impls.
    pub fn expected(what: &str, ty: &str) -> Self {
        Error::custom(format!("expected {what} while deserializing {ty}"))
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ----------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if (*self as i128) >= i64::MIN as i128 && (*self as i128) <= i64::MAX as i128 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match v {
                    Value::I64(n) => *n as i128,
                    Value::U64(n) => *n as i128,
                    _ => return Err(Error::expected("integer", stringify!($t))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    _ => Err(Error::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// `&'static str` fields (display names in reports) deserialize by leaking
/// the parsed string — acceptable for the replay/inspection tooling that
/// round-trips reports.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(|s| &*Box::leak(s.to_owned().into_boxed_str()))
            .ok_or_else(|| Error::expected("string", "&str"))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("sequence", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            {
                                let _ = $idx;
                                $name::from_value(
                                    it.next().ok_or_else(|| Error::expected("longer tuple", "tuple"))?,
                                )?
                            },
                        )+);
                        Ok(out)
                    }
                    _ => Err(Error::expected("sequence", "tuple")),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }
}
