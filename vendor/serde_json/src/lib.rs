//! Offline stand-in for `serde_json`, built on the vendored Value-based
//! `serde`. Provides the calls this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`] and the [`Error`] type.
//!
//! Encoding notes: floats print via Rust's shortest-round-trip `{:?}`
//! (`1.0`, not `1`), matching upstream; non-finite floats are an error;
//! strings escape `"`/`\\` and control characters.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    /// Byte offset for parse errors, when known.
    offset: Option<usize>,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            offset: None,
        }
    }

    fn at(msg: impl Into<String>, offset: usize) -> Self {
        Error {
            msg: msg.into(),
            offset: Some(offset),
        }
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at byte {o}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parse JSON into a deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at("trailing characters", p.pos));
    }
    Ok(T::from_value(&v)?)
}

// ---- writer -------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    use core::fmt::Write;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new("non-finite float is not valid JSON"));
            }
            // `{:?}` is Rust's shortest round-trip form and always keeps a
            // decimal point or exponent, like upstream serde_json.
            let _ = write!(out, "{f:?}");
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    use core::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::at(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::at("unexpected end of input", self.pos)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::at("expected `,` or `]`", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::at("expected `,` or `}`", self.pos)),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain UTF-8 runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                core::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::at("invalid UTF-8 in string", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| core::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::at("truncated \\u escape", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::at("invalid \\u escape", self.pos))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::at("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::at("unterminated string", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("invalid number", start))?;
        if text.is_empty() {
            return Err(Error::at("expected a JSON value", start));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::at(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_shapes() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("W-1 \"day\"\n".into())),
            ("n".into(), Value::I64(-3)),
            ("rate".into(), Value::F64(2.5)),
            (
                "flags".into(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        for json in [
            to_string(&W(v.clone())).unwrap(),
            to_string_pretty(&W(v.clone())).unwrap(),
        ] {
            let back: W = from_str(&json).unwrap();
            assert_eq!(back.0, v);
        }
    }

    #[test]
    fn garbage_is_an_error() {
        assert!(from_str::<W>("{not json").is_err());
        assert!(from_str::<W>("").is_err());
        assert!(from_str::<W>("[1, 2,]").is_err());
        assert!(from_str::<W>("[1] trailing").is_err());
    }

    #[test]
    fn floats_keep_roundtrip_form() {
        assert_eq!(to_string(&W(Value::F64(1.0))).unwrap(), "1.0");
        assert_eq!(to_string(&W(Value::F64(0.1))).unwrap(), "0.1");
        assert!(to_string(&W(Value::F64(f64::NAN))).is_err());
    }

    /// Transparent wrapper so tests can push raw `Value`s through the API.
    #[derive(Debug, PartialEq)]
    struct W(Value);

    impl Serialize for W {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    impl Deserialize for W {
        fn from_value(v: &Value) -> Result<Self, serde::Error> {
            Ok(W(v.clone()))
        }
    }
}
