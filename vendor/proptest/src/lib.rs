//! Offline stand-in for `proptest`.
//!
//! The build container cannot reach crates.io, so this crate vendors the
//! subset of the proptest API the workspace tests use: the [`proptest!`]
//! macro, range/tuple/`prop_map`/`collection::vec` strategies, and the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs (via
//!   `Debug`), the case index and the deterministic per-case seed; replay
//!   is exact because generation is seeded from the test's name and the
//!   case index alone.
//! * **Deterministic by default.** Upstream draws fresh entropy per run;
//!   here every run of a given binary generates identical cases, so CI
//!   and local runs agree. Set `PROPTEST_SEED` to explore a different
//!   deterministic universe, and `PROPTEST_CASES` to scale case counts.
//! * `.proptest-regressions` files are upstream-format seeds that this
//!   stub cannot decode; regressions are instead pinned as explicit
//!   `#[test]` functions next to the property (see
//!   `tests/prop_end_to_end.rs` in the workspace root).

#![forbid(unsafe_code)]

use core::fmt::Debug;
use core::ops::{Range, RangeInclusive};

/// Runner configuration (`ProptestConfig` upstream).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Effective case count: the config value, overridable via
/// `PROPTEST_CASES` (a floor of 1 keeps every property exercised — no
/// `PROPTEST_CASES=0` shortcuts).
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse::<u32>().map(|n| n.max(1)).unwrap_or(configured),
        Err(_) => configured,
    }
}

/// Why a test-case body did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert*` failure — the property is violated.
    Fail(String),
    /// `prop_assume!` rejection — the case does not apply.
    Reject(String),
}

/// Deterministic per-case generator (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for one case of one property, seeded from the test path,
    /// the case index and the optional `PROPTEST_SEED` env override.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let universe = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ universe,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Value generators. `Value` is the generated type; generation must be a
/// pure function of the rng stream so failures replay exactly.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing one fixed value (`Just` upstream).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies (`prop::collection` upstream).
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: `size.len()`-bounded vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Define property tests. Supports the upstream form used in this
/// workspace: an optional `#![proptest_config(..)]` header followed by
/// `#[test] fn name(pat in strategy, ..) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let cases = $crate::resolve_cases(cfg.cases);
                for case in 0..cases {
                    let mut proptest_rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)+
                    let proptest_inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(concat!("\n  ", stringify!($arg), " = "));
                            s.push_str(&format!("{:?}", &$arg));
                        )+
                        s
                    };
                    let result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match result {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property `{}` failed at case {case}/{cases}: {msg}\ninputs:{}\n\
                                 (deterministic replay: rerun this test; \
                                 PROPTEST_SEED/PROPTEST_CASES tune the universe)",
                                stringify!($name),
                                proptest_inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run (::core::default::Default::default()); $($rest)*);
    };
}

/// Fail the enclosing property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fail the enclosing property when the two sides differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Fail the enclosing property when the two sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skip the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let strat = (0u32..100, 0i32..50).prop_map(|(a, b)| (a, b));
        let mut r1 = crate::TestRng::for_case("x::y", 3);
        let mut r2 = crate::TestRng::for_case("x::y", 3);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let strat = prop::collection::vec(0u8..10, 2..6);
        for case in 0..100 {
            let mut rng = crate::TestRng::for_case("len", case);
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro path itself: generation, assume and assert all wired.
        #[test]
        fn macro_roundtrip(a in 0u32..1000, b in 1u32..10, v in prop::collection::vec(0u8..5, 0..4)) {
            prop_assume!(a % 7 != 0);
            prop_assert!(a < 1000);
            prop_assert_eq!((a / b) * b + a % b, a);
            prop_assert!(v.len() < 4, "vec of {} elements", v.len());
        }
    }

    proptest! {
        /// Default config (no header) also compiles and runs.
        #[test]
        fn default_config_form(x in 0u8..3) {
            prop_assert!(x < 3);
        }
    }
}
