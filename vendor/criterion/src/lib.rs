//! Offline stand-in for `criterion`.
//!
//! A minimal timing harness with the API subset the workspace's benches
//! use: `Criterion::benchmark_group`, `bench_function`, `Bencher::iter` /
//! `iter_batched`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros. It reports a best-of-samples ns/iter figure —
//! honest wall-clock measurement without upstream's statistical machinery.
//!
//! When invoked by `cargo test` (cargo passes `--test` to harnessless
//! bench targets) every benchmark body runs exactly once, as a smoke test.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the std black box (what upstream 0.5 uses internally).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How much setup output to batch per measurement (upstream semantics are
/// about allocation amortization; here it only scales iteration counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: more iterations per batch.
    SmallInput,
    /// Large inputs: fewer iterations per batch.
    LargeInput,
    /// One iteration per setup call.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; `cargo test` passes `--test`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Upstream CLI-configuration hook; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Default number of measurement samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.sample_size;
        let test_mode = self.test_mode;
        run_one(&name.into(), sample_size, test_mode, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Run one benchmark of this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&full, samples, self.criterion.test_mode, f);
        self
    }

    /// Finish the group (drop; kept for API parity).
    pub fn finish(self) {}
}

fn run_one(name: &str, samples: usize, test_mode: bool, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters: if test_mode { 1 } else { 25 },
        best_ns_per_iter: f64::INFINITY,
        measured: false,
    };
    let samples = if test_mode { 1 } else { samples };
    for _ in 0..samples {
        f(&mut bencher);
    }
    if test_mode {
        println!("bench {name}: ok (test mode, 1 iteration)");
    } else if bencher.measured {
        println!(
            "bench {name}: {:.1} ns/iter (best of {samples} samples)",
            bencher.best_ns_per_iter
        );
    }
}

/// Per-benchmark measurement handle.
pub struct Bencher {
    iters: u64,
    best_ns_per_iter: f64,
    measured: bool,
}

impl Bencher {
    /// Measure a routine by timing `iters` back-to-back calls.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.record(start.elapsed(), self.iters);
    }

    /// Measure a routine whose input comes from an untimed setup closure.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        size: BatchSize,
    ) {
        let iters = match size {
            BatchSize::SmallInput => self.iters,
            BatchSize::LargeInput => (self.iters / 5).max(1),
            BatchSize::PerIteration => 1,
        };
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.record(total, iters);
    }

    fn record(&mut self, elapsed: Duration, iters: u64) {
        let ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
        self.best_ns_per_iter = self.best_ns_per_iter.min(ns);
        self.measured = true;
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: false,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut calls = 0u32;
        group.bench_function("iter", |b| b.iter(|| calls += 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| 3u64, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
        assert!(calls > 0);
    }
}
