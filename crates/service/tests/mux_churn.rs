//! Connection-churn harness for the event-loop wire front-end.
//!
//! Spins the mux daemon on loopback and hammers it with 200+ concurrent
//! client sockets driven from a handful of threads, each following a
//! seeded, deterministic schedule of connects, submit bursts, slow reads,
//! pipelined bursts, and abrupt disconnects (sockets dropped with plan
//! replies still owed). The properties pinned:
//!
//! * **Per-connection ack ordering** — submit acks arrive in frame order
//!   on every connection, even when many submits are pipelined before the
//!   first ack is read ([`WireClient`] additionally hard-errors on any
//!   out-of-order ack in the request/reply paths).
//! * **No fd leaks** — after every client socket is dropped, the process
//!   fd count returns to the pre-churn baseline and the reactor registry
//!   drains to zero; torn frames and abrupt disconnects must reap, not
//!   wedge.
//! * **Digest conformance** — each tenant's committed route set is
//!   bit-identical to the same submissions driven over a single
//!   connection: admission interleaving across connections must be
//!   invisible to per-tenant outcomes (routes here are a pure function of
//!   the request id).
#![cfg(unix)]

use carp_service::report::routes_digest;
use carp_service::service::ServiceConfig;
use carp_service::tenant::TenantRegistry;
use carp_service::wire::{
    read_frame, schema, write_frame, AckStatus, FrameKind, WireClient, WireSubmitError,
};
use carp_service::{serve_tcp_mux, MuxConfig, MuxMetrics, PlanResponse};
use carp_warehouse::planner::{PlanOutcome, Planner};
use carp_warehouse::request::{QueryKind, Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::types::Cell;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

const THREADS: usize = 8;
const CLIENTS_PER_THREAD: usize = 26; // 208 concurrent sockets
const ROUNDS: usize = 40;
const TENANTS: [&str; 2] = ["churn-a", "churn-b"];

/// Route depends on the request id alone, so a tenant's committed set —
/// and therefore its digest — is a function of *which* requests were
/// admitted, never of how connections interleaved.
fn route_for(id: RequestId) -> Route {
    Route::stationary(0, Cell::new((id % 97) as u16, ((id / 97) % 97) as u16))
}

fn req_for(id: RequestId) -> Request {
    let c = Cell::new((id % 97) as u16, ((id / 97) % 97) as u16);
    Request::new(id, 0, c, c, QueryKind::Pickup)
}

/// Planner stub that mirrors every commit into a shared log the test can
/// read back after the daemon drains.
#[derive(Clone)]
struct LogPlanner {
    committed: Arc<Mutex<BTreeMap<RequestId, Route>>>,
}

impl LogPlanner {
    fn new() -> (Self, Arc<Mutex<BTreeMap<RequestId, Route>>>) {
        let log = Arc::new(Mutex::new(BTreeMap::new()));
        (
            LogPlanner {
                committed: Arc::clone(&log),
            },
            log,
        )
    }
}

impl Planner for LogPlanner {
    fn name(&self) -> &'static str {
        "churn-stub"
    }
    fn plan(&mut self, req: &Request) -> PlanOutcome {
        let route = route_for(req.id);
        self.committed
            .lock()
            .expect("commit log lock")
            .insert(req.id, route.clone());
        PlanOutcome::Planned(route)
    }
    fn cancel(&mut self, id: RequestId) -> bool {
        self.committed
            .lock()
            .expect("commit log lock")
            .remove(&id)
            .is_some()
    }
    fn memory_bytes(&self) -> usize {
        0
    }
}

struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<MuxMetrics>,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
    logs: [Arc<Mutex<BTreeMap<RequestId, Route>>>; 2],
}

fn start_server() -> Server {
    let registry = Arc::new(TenantRegistry::new());
    let cfg = ServiceConfig {
        deadline: None,
        ..ServiceConfig::default()
    };
    let (pa, la) = LogPlanner::new();
    let (pb, lb) = LogPlanner::new();
    registry.register(TENANTS[0], pa, cfg);
    registry.register(TENANTS[1], pb, cfg);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let shutdown = Arc::new(AtomicBool::new(false));
    let metrics = Arc::new(MuxMetrics::default());
    let handle = {
        let registry = Arc::clone(&registry);
        let shutdown = Arc::clone(&shutdown);
        let metrics = Arc::clone(&metrics);
        let config = MuxConfig {
            threads: 2,
            ..MuxConfig::default()
        };
        std::thread::spawn(move || serve_tcp_mux(listener, registry, shutdown, config, metrics))
    };
    Server {
        addr,
        shutdown,
        metrics,
        handle,
        logs: [la, lb],
    }
}

fn open_fds() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .expect("/proc/self/fd readable")
        .count()
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

/// One held-open socket plus its private request-id arena.
struct Slot {
    stream: TcpStream,
    tenant: usize,
    base: u64,
    seq: u64,
}

impl Slot {
    fn next_id(&mut self) -> u64 {
        let id = self.base + self.seq;
        self.seq += 1;
        id
    }
    fn client(&self) -> WireClient<TcpStream, TcpStream> {
        WireClient::new(
            self.stream.try_clone().expect("clone read half"),
            self.stream.try_clone().expect("clone write half"),
        )
    }
}

/// Submit `n` requests one at a time (each ack read synchronously), then
/// collect every plan reply — optionally after a deliberate slow-read nap
/// with replies already queued server-side.
fn burst(slot: &mut Slot, n: usize, nap: Option<Duration>, accepted: &mut [Vec<u64>; 2]) {
    let mut client = slot.client();
    let tenant = TENANTS[slot.tenant];
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        let id = slot.next_id();
        loop {
            match client.submit(tenant, &req_for(id)) {
                Ok(()) => break,
                Err(WireSubmitError::Backpressure { retry_after, .. })
                | Err(WireSubmitError::Throttled { retry_after }) => {
                    std::thread::sleep(retry_after)
                }
                Err(e) => panic!("churn submit refused: {e}"),
            }
        }
        accepted[slot.tenant].push(id);
        ids.push(id);
    }
    if let Some(nap) = nap {
        // Slow reader: replies pile into the reactor's write buffer (and
        // the socket) while this client sleeps; nothing may block on it.
        std::thread::sleep(nap);
    }
    for id in ids {
        match client.wait_plan(id).expect("plan reply") {
            PlanResponse::Planned(route) => assert_eq!(route, route_for(id), "route is f(id)"),
            other => panic!("stub planner refused request {id}: {other:?}"),
        }
    }
}

/// Pipeline `n` submit frames back-to-back before reading anything, then
/// assert the acks come back in exactly the submission order. Plan replies
/// interleave freely and are left unread — the caller drops the socket
/// abruptly afterwards, which is the torn-teardown path the reactor must
/// reap without wedging.
fn pipelined_burst(slot: &mut Slot, n: usize, accepted: &mut [Vec<u64>; 2]) {
    let tenant = TENANTS[slot.tenant];
    let mut writer = slot.stream.try_clone().expect("clone write half");
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        let id = slot.next_id();
        let payload = schema::encode_submit(tenant, &req_for(id));
        write_frame(&mut writer, FrameKind::Submit, &payload).expect("pipelined submit");
        ids.push(id);
    }
    let mut reader = slot.stream.try_clone().expect("clone read half");
    let mut acked = Vec::with_capacity(n);
    while acked.len() < n {
        let (kind, payload) = read_frame(&mut reader)
            .expect("frame after pipelined burst")
            .expect("connection open");
        match kind {
            FrameKind::SubmitAck => {
                let (id, status) = schema::decode_submit_ack(&payload).expect("ack decodes");
                if matches!(status, AckStatus::Accepted) {
                    accepted[slot.tenant].push(id);
                }
                acked.push(id);
            }
            FrameKind::PlanReply => {} // commit-order stream; ignored here
            other => panic!("unexpected frame kind {other:?} during pipelined burst"),
        }
    }
    assert_eq!(
        acked, ids,
        "submit acks must arrive in per-connection frame order"
    );
}

fn churn_thread(
    addr: SocketAddr,
    t: usize,
    ready: Arc<Barrier>,
) -> std::thread::JoinHandle<[Vec<u64>; 2]> {
    std::thread::Builder::new()
        .name(format!("churn-{t}"))
        .spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xC0FFEE + t as u64);
            let mut slots: Vec<Slot> = (0..CLIENTS_PER_THREAD)
                .map(|s| {
                    let global = t * CLIENTS_PER_THREAD + s;
                    Slot {
                        stream: connect(addr),
                        tenant: (t + s) % TENANTS.len(),
                        base: global as u64 * 100_000,
                        seq: 0,
                    }
                })
                .collect();
            // Every socket in the fleet is open before any schedule runs.
            ready.wait();
            let mut accepted: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
            for _ in 0..ROUNDS {
                let i = rng.gen_range(0..slots.len());
                let slot = &mut slots[i];
                match rng.gen_range(0..4u8) {
                    0 => burst(slot, rng.gen_range(1..=3), None, &mut accepted),
                    1 => {
                        let nap = Duration::from_millis(rng.gen_range(1..=5));
                        burst(slot, rng.gen_range(1..=3), Some(nap), &mut accepted);
                    }
                    2 => {
                        pipelined_burst(slot, rng.gen_range(2..=4), &mut accepted);
                        // Abrupt teardown with plan replies still owed.
                        slot.stream = connect(addr);
                    }
                    _ => {
                        // Connect churn: drop a quiescent socket, reconnect.
                        slot.stream = connect(addr);
                    }
                }
            }
            accepted
        })
        .expect("spawn churn thread")
}

/// Replay `ids` (ascending) for one tenant over a single connection against
/// a fresh daemon and return the resulting commit log.
fn single_connection_digest(ids: &[u64], tenant_idx: usize) -> u64 {
    let server = start_server();
    let mut client = {
        let stream = connect(server.addr);
        WireClient::new(stream.try_clone().expect("clone"), stream)
    };
    for &id in ids {
        loop {
            match client.submit(TENANTS[tenant_idx], &req_for(id)) {
                Ok(()) => break,
                Err(WireSubmitError::Backpressure { retry_after, .. }) => {
                    std::thread::sleep(retry_after)
                }
                Err(e) => panic!("reference submit refused: {e}"),
            }
        }
        assert!(
            client
                .wait_plan(id)
                .expect("reference plan reply")
                .route()
                .is_some(),
            "reference run plans request {id}"
        );
    }
    drop(client);
    server.shutdown.store(true, Ordering::SeqCst);
    server
        .handle
        .join()
        .expect("reference server thread")
        .expect("reference server exits clean");
    let log = server.logs[tenant_idx].lock().expect("log lock").clone();
    routes_digest(&log.into_iter().collect::<HashMap<_, _>>())
}

/// Capture the process fd count once the daemon is fully up: the reactor
/// threads open their wake pipes asynchronously after `serve_tcp_mux` is
/// spawned, so a warm-up round-trip plus a stability window keeps those
/// out of the leak accounting.
fn settled_fd_baseline(server: &Server) -> usize {
    {
        let stream = connect(server.addr);
        let mut client = WireClient::new(stream.try_clone().expect("clone"), stream);
        client
            .submit(TENANTS[0], &req_for(99_999_999))
            .expect("warm-up submit");
        client.wait_plan(99_999_999).expect("warm-up plan");
        // Cancel the warm-up request so its route leaves the commit log and
        // the digest comparison below sees only churn traffic.
        let cancelled = client
            .cancel(TENANTS[0], 99_999_999)
            .expect("warm-up cancel");
        assert!(cancelled, "stub planner acknowledges the warm-up cancel");
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut last = open_fds();
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let now = open_fds();
        if now == last && server.metrics.snapshot().registered == 0 {
            return now;
        }
        last = now;
        assert!(Instant::now() < deadline, "fd count never settled");
    }
}

#[test]
fn two_hundred_churning_connections_stay_ordered_leak_free_and_deterministic() {
    let server = start_server();
    let fd_baseline = settled_fd_baseline(&server);

    let ready = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| churn_thread(server.addr, t, Arc::clone(&ready)))
        .collect();
    let mut accepted: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
    for h in handles {
        let per_thread = h.join().expect("churn thread panicked");
        for (tenant, ids) in per_thread.into_iter().enumerate() {
            accepted[tenant].extend(ids);
        }
    }
    assert!(
        accepted[0].len() + accepted[1].len() >= 200,
        "churn actually submitted work: {} + {} accepted",
        accepted[0].len(),
        accepted[1].len()
    );

    // Every client socket is dropped; the reactors must reap each one —
    // including those torn down with replies still owed — and the process
    // must shed every churn fd.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let counters = server.metrics.snapshot();
        if counters.registered == 0 && open_fds() <= fd_baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fd leak: {} registered conns, {} fds open (baseline {})",
            counters.registered,
            open_fds(),
            fd_baseline
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let counters = server.metrics.snapshot();
    assert!(
        counters.accepted >= (THREADS * CLIENTS_PER_THREAD) as u64,
        "every fleet socket was accepted (saw {})",
        counters.accepted
    );

    // Seal the churn daemon and read each tenant's committed set.
    server.shutdown.store(true, Ordering::SeqCst);
    server
        .handle
        .join()
        .expect("mux server thread")
        .expect("mux server exits clean");

    for (tenant_idx, ids) in accepted.iter_mut().enumerate() {
        ids.sort_unstable();
        let dupes = ids.windows(2).any(|w| w[0] == w[1]);
        assert!(!dupes, "request ids are globally unique per tenant");
        let log = server.logs[tenant_idx].lock().expect("log lock").clone();
        let committed_ids: Vec<u64> = log.keys().copied().collect();
        assert_eq!(
            committed_ids, *ids,
            "tenant {} committed exactly the accepted requests",
            TENANTS[tenant_idx]
        );
        let churn_digest = routes_digest(&log.into_iter().collect::<HashMap<_, _>>());
        let solo_digest = single_connection_digest(ids, tenant_idx);
        assert_eq!(
            churn_digest, solo_digest,
            "tenant {} digest must be bit-identical to a single-connection run",
            TENANTS[tenant_idx]
        );
    }
}

/// Planner whose `plan` blocks until the test opens the gate, so a
/// submission's plan reply stays *owed* for as long as the test needs —
/// the reactor cannot reap the connection through the resolved-ticket
/// path while the gate is shut.
#[derive(Clone)]
struct GatedPlanner {
    gate: Arc<(Mutex<bool>, std::sync::Condvar)>,
    entered: Arc<AtomicBool>,
}

impl GatedPlanner {
    fn new() -> Self {
        GatedPlanner {
            gate: Arc::new((Mutex::new(false), std::sync::Condvar::new())),
            entered: Arc::new(AtomicBool::new(false)),
        }
    }

    fn open(&self) {
        let (lock, cv) = &*self.gate;
        *lock.lock().expect("gate lock") = true;
        cv.notify_all();
    }
}

impl Planner for GatedPlanner {
    fn name(&self) -> &'static str {
        "gated-stub"
    }
    fn plan(&mut self, req: &Request) -> PlanOutcome {
        self.entered.store(true, Ordering::SeqCst);
        let (lock, cv) = &*self.gate;
        let mut open = lock.lock().expect("gate lock");
        while !*open {
            open = cv.wait(open).expect("gate wait");
        }
        PlanOutcome::Planned(route_for(req.id))
    }
    fn cancel(&mut self, _id: RequestId) -> bool {
        false
    }
    fn memory_bytes(&self) -> usize {
        0
    }
}

/// Regression: a peer that vanishes with an RST *after* its read side was
/// already severed (garbage frame → `read_closed`) and with a reply still
/// owed used to be unreapable — `POLLERR`/`POLLHUP` matched no event arm,
/// so every `poll(2)` re-reported the dead socket (busy loop) and the
/// connection pinned its fd until the owed ticket resolved, which a stuck
/// planner could defer forever. The reactor must instead reap it the
/// moment the transport is gone both ways.
#[test]
fn reset_after_read_close_with_owed_reply_is_reaped_not_wedged() {
    use std::io::Write;

    let registry = Arc::new(TenantRegistry::new());
    let planner = GatedPlanner::new();
    let cfg = ServiceConfig {
        deadline: None,
        ..ServiceConfig::default()
    };
    registry.register("gated", planner.clone(), cfg);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let shutdown = Arc::new(AtomicBool::new(false));
    let metrics = Arc::new(MuxMetrics::default());
    let handle = {
        let registry = Arc::clone(&registry);
        let shutdown = Arc::clone(&shutdown);
        let metrics = Arc::clone(&metrics);
        let config = MuxConfig {
            threads: 1,
            ..MuxConfig::default()
        };
        std::thread::spawn(move || serve_tcp_mux(listener, registry, shutdown, config, metrics))
    };

    // Settle the fd baseline. The reactor threads open their wake pipes
    // asynchronously after `serve_tcp_mux` is spawned, so a warm-up
    // round-trip (MetricsQuery — it never touches the gated planner) plus
    // a stability window keeps those out of the leak accounting.
    {
        let stream = connect(addr);
        let mut client = WireClient::new(stream.try_clone().expect("clone"), stream);
        client.metrics("gated").expect("warm-up metrics round-trip");
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut fd_baseline = open_fds();
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let now = open_fds();
        if now == fd_baseline && metrics.snapshot().registered == 0 {
            break;
        }
        fd_baseline = now;
        assert!(Instant::now() < deadline, "fd count never settled");
    }

    let stream = connect(addr);
    let mut writer = stream.try_clone().expect("clone write half");

    // Submit while the planner is gated: the ack is queued immediately but
    // the plan reply stays owed. The ack is deliberately left unread.
    let payload = schema::encode_submit("gated", &req_for(7));
    write_frame(&mut writer, FrameKind::Submit, &payload).expect("submit");
    let deadline = Instant::now() + Duration::from_secs(5);
    while !planner.entered.load(Ordering::SeqCst) {
        assert!(
            Instant::now() < deadline,
            "submission never reached the planner"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Garbage after the valid frame: the reactor severs the read side
    // (`read_closed`) but keeps the connection registered for the owed
    // reply — the exact state the bug needed.
    writer
        .write_all(b"garbage, not a CARP frame")
        .expect("garbage");
    let deadline = Instant::now() + Duration::from_secs(5);
    while metrics.snapshot().frames_in < 1 {
        assert!(Instant::now() < deadline, "submit frame never decoded");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Give the reactor a moment to consume the garbage and sever reads.
    std::thread::sleep(Duration::from_millis(100));

    // Abrupt close with the unread ack still in our receive buffer: the
    // kernel turns that into an RST, and the server socket reports
    // `POLLERR`/`POLLHUP` from then on.
    drop(writer);
    drop(stream);

    // The reply is still owed (gate shut), yet the reactor must reap the
    // connection and shed its fd — the transport is gone both ways.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let counters = metrics.snapshot();
        if counters.registered == 0 && open_fds() <= fd_baseline {
            break;
        }
        let listing: Vec<String> = std::fs::read_dir("/proc/self/fd")
            .expect("/proc/self/fd readable")
            .map(|e| {
                let e = e.expect("fd entry");
                let target = std::fs::read_link(e.path())
                    .map(|p| p.display().to_string())
                    .unwrap_or_default();
                format!("{}→{}", e.file_name().to_string_lossy(), target)
            })
            .collect();
        assert!(
            Instant::now() < deadline,
            "dead conn never reaped: {} registered, {} fds (baseline {}): {listing:?}",
            counters.registered,
            open_fds(),
            fd_baseline
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Let the worker finish so shutdown can drain cleanly.
    planner.open();
    shutdown.store(true, Ordering::SeqCst);
    handle
        .join()
        .expect("mux server thread")
        .expect("mux server exits clean");
}
