//! Live-shipping failover conformance: kill the primary daemon mid-day
//! over TCP and finish on a standby fed *only* by the wire (`TailLog` /
//! `LogChunk` frames) — never by reading the primary's file.
//!
//! The headline property mirrors crash recovery's: the failover day's
//! committed route set must be **bit-identical** to an uninterrupted
//! run's, with zero audited collisions — and the takeover must actually
//! arm the epoch fence (a stale pre-takeover append is refused and
//! counted, proving a resurrected primary could not corrupt the log).
#![cfg(unix)]

use carp_service::loadgen::{run_load_replication, LoadScenario};
use carp_service::service::ServiceConfig;
use carp_simenv::SimConfig;
use carp_srp::{SrpConfig, SrpPlanner};
use carp_warehouse::layout::LayoutConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

struct ScratchLog(PathBuf);

impl ScratchLog {
    fn new() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        ScratchLog(std::env::temp_dir().join(format!(
            "carp-replication-test-{}-{n}.wal",
            std::process::id()
        )))
    }
}

impl Drop for ScratchLog {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut standby = self.0.clone().into_os_string();
        standby.push(".standby");
        let _ = std::fs::remove_file(PathBuf::from(standby));
    }
}

#[test]
fn network_standby_takeover_finishes_the_day_bit_identically() {
    let layout = LayoutConfig::small().generate();
    let scenario = LoadScenario::new("small@2x", layout.clone(), 40, 400, 2.0, 17);
    let last_arrival = scenario.tasks.last().map_or(0, |t| t.arrival);
    let cfg = ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    };
    let srp = || SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());

    let scratch = ScratchLog::new();
    let report = run_load_replication(
        &scenario,
        srp,
        SimConfig::default(),
        cfg,
        2,
        &scratch.0,
        last_arrival / 2,
    );

    // The failover day committed exactly what the uninterrupted day did.
    assert!(
        report.digests_match,
        "failover day diverged from the uninterrupted baseline"
    );
    assert_eq!(report.total_audit_conflicts(), 0);

    // The standby was fed over the wire and took over mid-day.
    assert!(report.records_shipped > 0, "nothing shipped over the wire");
    assert!(report.killed_at >= last_arrival / 2);
    assert!(report.takeover_ms >= 0.0);

    // Takeover armed the fence: epoch bumped, and the provoked
    // stale-epoch append was refused and counted, not written.
    assert_eq!(report.takeover_epoch, 2);
    assert!(
        report.fenced_appends > 0,
        "stale-epoch append was not refused (fence inactive)"
    );

    // Both halves served real traffic.
    assert!(report.primary.planned > 0, "primary planned nothing");
    assert!(report.replicated.service.planned > 0);
    assert!(report.wal_stats.appends > 0);
}
