//! Multi-tenant conformance: the tentpole determinism gate.
//!
//! One daemon serving W-1 and W-2 concurrently — each tenant on its own
//! connection, queue, worker pool and commit pipeline — must commit, for
//! every tenant, the **bit-identical** route set that tenant gets from an
//! isolated single-tenant serial run. Tenants share nothing but CPU, so
//! cross-tenant interference can change wall-clock numbers but never a
//! route. Checked at 1 and 4 speculative workers per tenant, with zero
//! audited collisions throughout.
//!
//! A TCP smoke rides along: the same frames over a real socket, proving
//! the `--listen` path is the in-process path.

use carp_service::ingest::serve_tcp_connection;
use carp_service::loadgen::{run_load, run_load_multi, LoadScenario, TenantLoad};
use carp_service::service::{PlanResponse, ServiceConfig};
use carp_service::tenant::TenantRegistry;
use carp_service::wire::{WireClient, WireSubmitError};
use carp_simenv::SimConfig;
use carp_srp::{SrpConfig, SrpPlanner};
use carp_warehouse::layout::{Layout, LayoutConfig, WarehousePreset};
use carp_warehouse::tasks::generate_requests;
use std::sync::Arc;

fn srp(layout: &Layout) -> SrpPlanner {
    SrpPlanner::new(layout.matrix.clone(), SrpConfig::default())
}

/// Deadline-free config: the bit-determinism regime.
fn cfg(workers: usize) -> ServiceConfig {
    ServiceConfig {
        deadline: None,
        workers,
        ..ServiceConfig::default()
    }
}

#[test]
fn two_tenant_digests_match_single_tenant_runs() {
    let w1 = WarehousePreset::W1.generate();
    let w2 = WarehousePreset::W2.generate();
    let sim = SimConfig::default();
    let s1 = LoadScenario::new("W-1", w1.clone(), 40, 500, 2.0, 11);
    let s2 = LoadScenario::new("W-2", w2.clone(), 60, 600, 4.0, 104);

    // Isolated single-tenant serial baselines.
    let (solo1, _) = run_load(&s1, srp(&w1), sim.clone(), cfg(1));
    let (solo2, _) = run_load(&s2, srp(&w2), sim.clone(), cfg(1));
    assert_eq!(solo1.audit_conflicts, 0, "solo W-1 audited a collision");
    assert_eq!(solo2.audit_conflicts, 0, "solo W-2 audited a collision");
    assert_ne!(
        solo1.routes_digest, solo2.routes_digest,
        "distinct days must not share a digest"
    );

    for workers in [1usize, 4] {
        let reports = run_load_multi(
            vec![
                TenantLoad {
                    scenario: s1.clone(),
                    planner: srp(&w1),
                    service_cfg: cfg(workers),
                },
                TenantLoad {
                    scenario: s2.clone(),
                    planner: srp(&w2),
                    service_cfg: cfg(workers),
                },
            ],
            sim.clone(),
        );
        assert_eq!(reports.len(), 2);
        let (r1, _) = &reports[0];
        let (r2, _) = &reports[1];
        assert_eq!(r1.tenant, "W-1");
        assert_eq!(r2.tenant, "W-2");
        assert_eq!(
            r1.audit_conflicts, 0,
            "multi W-1 (workers={workers}) audited a collision"
        );
        assert_eq!(
            r2.audit_conflicts, 0,
            "multi W-2 (workers={workers}) audited a collision"
        );
        assert_eq!(
            r1.routes_digest, solo1.routes_digest,
            "W-1 digest diverged from its solo run at workers={workers}"
        );
        assert_eq!(
            r2.routes_digest, solo2.routes_digest,
            "W-2 digest diverged from its solo run at workers={workers}"
        );
        assert_eq!(r1.completed, solo1.completed);
        assert_eq!(r2.completed, solo2.completed);
        // The wire layer actually carried the traffic.
        assert!(
            r1.wire.frames_received as usize >= r1.requests,
            "W-1 wire counters missed its submissions"
        );
        assert!(r2.wire.frames_sent > 0, "W-2 daemon sent no frames");
    }
}

/// The same protocol over a real TCP socket: submit a few requests, plan
/// them, read metrics, and reject an unknown tenant — all through
/// `serve_tcp_connection`.
#[test]
fn tcp_transport_speaks_the_same_protocol() {
    let layout = LayoutConfig::small().generate();
    let registry = Arc::new(TenantRegistry::new());
    registry.register("small", srp(&layout), cfg(1));

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let server_registry = Arc::clone(&registry);
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        serve_tcp_connection(&server_registry, stream)
    });

    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut client = WireClient::new(stream.try_clone().expect("clone stream"), stream);

    let requests = generate_requests(&layout, 3, 1.0, 42);
    for request in &requests {
        client.submit("small", request).expect("submit over TCP");
    }
    for request in &requests {
        match client.wait_plan(request.id).expect("reply over TCP") {
            PlanResponse::Planned(route) => {
                assert!(!route.grids.is_empty(), "planned route has no cells")
            }
            other => panic!("request {} got {other:?}", request.id),
        }
    }
    assert_eq!(
        client.submit("nowhere", &requests[0]),
        Err(WireSubmitError::UnknownTenant),
        "unknown tenant must be refused, not dropped"
    );
    let (metrics, wire) = client.metrics("small").expect("metrics over TCP");
    assert_eq!(metrics.planned, requests.len() as u64);
    assert!(wire.frames_received >= requests.len() as u64);
    assert!(wire.frames_sent >= requests.len() as u64);

    drop(client); // close both socket halves: server sees EOF
    server
        .join()
        .expect("server thread")
        .expect("clean connection shutdown");
    registry.remove("small").expect("tenant still registered");
}
