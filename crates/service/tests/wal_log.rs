//! Changeset-log robustness suite, mirroring the wire fuzz tests.
//!
//! Three families:
//!
//! * **Torn-tail / corruption fuzz** — cut a valid log anywhere or flip
//!   any single byte: decoding must keep every record *before* the damage
//!   bit-exactly, drop the rest, and never panic; `open_append` on the
//!   damaged file must truncate the tail and accept new appends cleanly.
//!
//! * **Snapshot ⊕ tail ≡ live state** — drive a random op stream through
//!   a journal with aggressive auto-compaction; re-reading the file
//!   (snapshot record plus post-snapshot tail) must replay to exactly the
//!   state the live journal tracked append-by-append.
//!
//! * **Append-after-recovery** — a journal reopened over a torn file
//!   resumes the sequence without gaps or reuse.

use carp_service::wal::record::{decode_records, encode_record};
use carp_service::wal::{
    read_log, ChangeOp, ChangeRecord, LogTail, ReplayState, WalConfig, WalJournal,
};
use carp_warehouse::request::{QueryKind, Request};
use carp_warehouse::route::Route;
use carp_warehouse::types::Cell;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A scratch log path unique per test case; removed on drop.
struct ScratchLog(PathBuf);

impl ScratchLog {
    fn new() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        ScratchLog(
            std::env::temp_dir().join(format!("carp-wal-test-{}-{n}.wal", std::process::id())),
        )
    }
}

impl Drop for ScratchLog {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn route_strategy() -> impl Strategy<Value = Route> {
    (
        0u32..200,
        proptest::collection::vec((0u16..24, 0u16..24), 1..6),
    )
        .prop_map(|(start, cells)| {
            Route::new(
                start,
                cells.into_iter().map(|(r, c)| Cell::new(r, c)).collect(),
            )
        })
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (
        0u64..50,
        0u32..200,
        (0u16..24, 0u16..24),
        (0u16..24, 0u16..24),
        0u8..3,
    )
        .prop_map(|(id, t, o, d, k)| {
            let kind = match k {
                0 => QueryKind::Pickup,
                1 => QueryKind::Transmission,
                _ => QueryKind::Return,
            };
            Request::new(id, t, Cell::new(o.0, o.1), Cell::new(d.0, d.1), kind)
        })
}

fn op_strategy() -> impl Strategy<Value = ChangeOp> {
    // Commit is over-weighted (variants 5..=8) — it is the hot record kind.
    (0u8..9, request_strategy(), route_strategy(), 0u32..300).prop_map(
        |(variant, request, route, now)| match variant {
            0 => ChangeOp::TenantOpen,
            1 => ChangeOp::TenantClose,
            2 => ChangeOp::Cancel { id: request.id },
            3 => ChangeOp::Advance { now },
            4 => ChangeOp::Revise {
                id: request.id,
                route,
            },
            _ => ChangeOp::Commit { request, route },
        },
    )
}

/// An encoded multi-record stream plus each record's end offset.
fn encode_stream(ops: &[(u8, ChangeOp)]) -> (Vec<u8>, Vec<ChangeRecord>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut records = Vec::new();
    let mut ends = Vec::new();
    for (i, (tenant, op)) in ops.iter().enumerate() {
        let rec = ChangeRecord {
            seq: i as u64 + 1,
            tenant: format!("wh-{tenant}"),
            op: op.clone(),
        };
        bytes.extend_from_slice(&encode_record(&rec));
        records.push(rec);
        ends.push(bytes.len());
    }
    (bytes, records, ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cut a random log anywhere: the readable prefix is exactly the
    /// records whose bytes survive whole, and `open_append` truncates the
    /// stump then keeps appending with the next sequence number.
    #[test]
    fn any_truncation_point_recovers_the_whole_prefix(
        ops in proptest::collection::vec((0u8..2, op_strategy()), 1..8),
        cut_ppm in 0u32..1_000_000,
    ) {
        let (bytes, records, ends) = encode_stream(&ops);
        let cut = bytes.len() * cut_ppm as usize / 1_000_000;
        let intact = ends.iter().filter(|&&e| e <= cut).count();

        let (decoded, tail) = decode_records(&bytes[..cut]);
        prop_assert_eq!(&decoded[..], &records[..intact]);
        let at_boundary = cut == 0 || (intact > 0 && cut == ends[intact - 1]);
        prop_assert_eq!(tail == LogTail::Clean, at_boundary);

        let scratch = ScratchLog::new();
        std::fs::write(&scratch.0, &bytes[..cut]).expect("write truncated log");
        let (journal, replayed, tail) =
            WalJournal::open_append(&scratch.0).expect("open truncated log");
        prop_assert_eq!(&replayed[..], &records[..intact]);
        match tail {
            LogTail::Clean => prop_assert_eq!(cut, replayed.last().map_or(0, |_| ends[intact - 1])),
            LogTail::Torn { valid_bytes, dropped_bytes } => {
                prop_assert_eq!(valid_bytes + dropped_bytes, cut as u64);
            }
        }
        // The file was truncated to the intact prefix and the sequence
        // resumes exactly after the last surviving record.
        let next = journal.append("wh-0", ChangeOp::Advance { now: 999 });
        prop_assert_eq!(next, intact as u64 + 1);
        drop(journal);
        let (after, tail) = read_log(&scratch.0).expect("reread");
        prop_assert_eq!(tail, LogTail::Clean);
        prop_assert_eq!(after.len(), intact + 1);
        prop_assert_eq!(&after[..intact], &records[..intact]);
    }

    /// Flip any single byte: every record before the damaged one decodes
    /// bit-exactly; decoding never panics and never runs past the damage
    /// into misframed garbage that masquerades as the head.
    #[test]
    fn any_byte_flip_keeps_the_head_intact(
        ops in proptest::collection::vec((0u8..2, op_strategy()), 1..8),
        flip_ppm in 0u32..1_000_000,
        flip_bit in 0u8..8,
    ) {
        let (mut bytes, records, ends) = encode_stream(&ops);
        let pos = (bytes.len() * flip_ppm as usize / 1_000_000).min(bytes.len() - 1);
        bytes[pos] ^= 1 << flip_bit;
        // Index of the record whose bytes contain the flip.
        let damaged = ends.iter().filter(|&&e| e <= pos).count();

        let (decoded, _tail) = decode_records(&bytes);
        prop_assert!(decoded.len() <= records.len());
        let intact_head = decoded.len().min(damaged);
        prop_assert_eq!(&decoded[..intact_head], &records[..intact_head]);
        // CRC-32 catches any single-bit error inside one record's frame,
        // so the damaged record itself must never survive verbatim.
        if decoded.len() > damaged {
            prop_assert_ne!(&decoded[damaged], &records[damaged]);
        }

        // File-level recovery over the damaged image must not panic and
        // must leave an appendable journal.
        let scratch = ScratchLog::new();
        std::fs::write(&scratch.0, &bytes).expect("write damaged log");
        let (journal, replayed, _tail) =
            WalJournal::open_append(&scratch.0).expect("open damaged log");
        prop_assert_eq!(&replayed[..], &decoded[..]);
        journal.append("wh-0", ChangeOp::TenantOpen);
        journal.seal();
    }

    /// snapshot ⊕ tail ≡ live: with auto-compaction rewriting the log
    /// mid-stream, re-reading the file always replays to the exact state
    /// the live journal accumulated.
    #[test]
    fn snapshot_plus_tail_replays_to_live_state(
        ops in proptest::collection::vec((0u8..3, op_strategy()), 1..24),
        snapshot_every in 1u64..8,
    ) {
        let scratch = ScratchLog::new();
        let journal = WalJournal::create_with(
            &scratch.0,
            WalConfig {
                fsync_every: 4,
                snapshot_every: Some(snapshot_every),
            },
        )
        .expect("create journal");
        for (tenant, op) in &ops {
            journal.append(&format!("wh-{tenant}"), op.clone());
        }
        journal.seal();
        let live = journal.state();
        drop(journal);

        let (records, tail) = read_log(&scratch.0).expect("read log");
        prop_assert_eq!(tail, LogTail::Clean);
        let replayed = ReplayState::from_records(&records);
        prop_assert_eq!(replayed, live);

        // And the reopened journal agrees too (the standby's view).
        let (journal, reopened, tail) = WalJournal::open_append(&scratch.0).expect("reopen");
        prop_assert_eq!(tail, LogTail::Clean);
        prop_assert_eq!(journal.state(), ReplayState::from_records(&reopened));
    }
}
