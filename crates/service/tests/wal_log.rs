//! Changeset-log robustness suite, mirroring the wire fuzz tests.
//!
//! Three families:
//!
//! * **Torn-tail / corruption fuzz** — cut a valid log anywhere or flip
//!   any single byte: decoding must keep every record *before* the damage
//!   bit-exactly, drop the rest, and never panic; `open_append` on the
//!   damaged file must truncate the tail and accept new appends cleanly.
//!
//! * **Snapshot ⊕ tail ≡ live state** — drive a random op stream through
//!   a journal with aggressive auto-compaction; re-reading the file
//!   (snapshot record plus post-snapshot tail) must replay to exactly the
//!   state the live journal tracked append-by-append.
//!
//! * **Append-after-recovery** — a journal reopened over a torn file
//!   resumes the sequence without gaps or reuse.

use carp_service::wal::record::{decode_records, encode_record};
use carp_service::wal::{
    read_log, ChangeOp, ChangeRecord, LogTail, ReplayState, TenantJournal, WalConfig, WalJournal,
};
use carp_service::wire::schema;
use carp_service::wire::{write_frame, FrameDecoder, FrameKind, WireError};
use carp_warehouse::request::{QueryKind, Request};
use carp_warehouse::route::Route;
use carp_warehouse::types::Cell;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A scratch log path unique per test case; removed on drop.
struct ScratchLog(PathBuf);

impl ScratchLog {
    fn new() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        ScratchLog(
            std::env::temp_dir().join(format!("carp-wal-test-{}-{n}.wal", std::process::id())),
        )
    }
}

impl Drop for ScratchLog {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn route_strategy() -> impl Strategy<Value = Route> {
    (
        0u32..200,
        proptest::collection::vec((0u16..24, 0u16..24), 1..6),
    )
        .prop_map(|(start, cells)| {
            Route::new(
                start,
                cells.into_iter().map(|(r, c)| Cell::new(r, c)).collect(),
            )
        })
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (
        0u64..50,
        0u32..200,
        (0u16..24, 0u16..24),
        (0u16..24, 0u16..24),
        0u8..3,
    )
        .prop_map(|(id, t, o, d, k)| {
            let kind = match k {
                0 => QueryKind::Pickup,
                1 => QueryKind::Transmission,
                _ => QueryKind::Return,
            };
            Request::new(id, t, Cell::new(o.0, o.1), Cell::new(d.0, d.1), kind)
        })
}

fn op_strategy() -> impl Strategy<Value = ChangeOp> {
    // Commit is over-weighted (variants 5..=8) — it is the hot record kind.
    (0u8..9, request_strategy(), route_strategy(), 0u32..300).prop_map(
        |(variant, request, route, now)| match variant {
            0 => ChangeOp::TenantOpen,
            1 => ChangeOp::TenantClose,
            2 => ChangeOp::Cancel { id: request.id },
            3 => ChangeOp::Advance { now },
            4 => ChangeOp::Revise {
                id: request.id,
                route,
            },
            _ => ChangeOp::Commit { request, route },
        },
    )
}

/// An encoded multi-record stream plus each record's end offset.
fn encode_stream(ops: &[(u8, ChangeOp)]) -> (Vec<u8>, Vec<ChangeRecord>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut records = Vec::new();
    let mut ends = Vec::new();
    for (i, (tenant, op)) in ops.iter().enumerate() {
        let rec = ChangeRecord {
            seq: i as u64 + 1,
            tenant: format!("wh-{tenant}"),
            op: op.clone(),
        };
        bytes.extend_from_slice(&encode_record(&rec));
        records.push(rec);
        ends.push(bytes.len());
    }
    (bytes, records, ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cut a random log anywhere: the readable prefix is exactly the
    /// records whose bytes survive whole, and `open_append` truncates the
    /// stump then keeps appending with the next sequence number.
    #[test]
    fn any_truncation_point_recovers_the_whole_prefix(
        ops in proptest::collection::vec((0u8..2, op_strategy()), 1..8),
        cut_ppm in 0u32..1_000_000,
    ) {
        let (bytes, records, ends) = encode_stream(&ops);
        let cut = bytes.len() * cut_ppm as usize / 1_000_000;
        let intact = ends.iter().filter(|&&e| e <= cut).count();

        let (decoded, tail) = decode_records(&bytes[..cut]);
        prop_assert_eq!(&decoded[..], &records[..intact]);
        let at_boundary = cut == 0 || (intact > 0 && cut == ends[intact - 1]);
        prop_assert_eq!(tail == LogTail::Clean, at_boundary);

        let scratch = ScratchLog::new();
        std::fs::write(&scratch.0, &bytes[..cut]).expect("write truncated log");
        let (journal, replayed, tail) =
            WalJournal::open_append(&scratch.0).expect("open truncated log");
        prop_assert_eq!(&replayed[..], &records[..intact]);
        match tail {
            LogTail::Clean => prop_assert_eq!(cut, replayed.last().map_or(0, |_| ends[intact - 1])),
            LogTail::Torn { valid_bytes, dropped_bytes } => {
                prop_assert_eq!(valid_bytes + dropped_bytes, cut as u64);
            }
        }
        // The file was truncated to the intact prefix and the sequence
        // resumes exactly after the last surviving record.
        let next = journal.append("wh-0", ChangeOp::Advance { now: 999 });
        prop_assert_eq!(next, intact as u64 + 1);
        drop(journal);
        let (after, tail) = read_log(&scratch.0).expect("reread");
        prop_assert_eq!(tail, LogTail::Clean);
        prop_assert_eq!(after.len(), intact + 1);
        prop_assert_eq!(&after[..intact], &records[..intact]);
    }

    /// Flip any single byte: every record before the damaged one decodes
    /// bit-exactly; decoding never panics and never runs past the damage
    /// into misframed garbage that masquerades as the head.
    #[test]
    fn any_byte_flip_keeps_the_head_intact(
        ops in proptest::collection::vec((0u8..2, op_strategy()), 1..8),
        flip_ppm in 0u32..1_000_000,
        flip_bit in 0u8..8,
    ) {
        let (mut bytes, records, ends) = encode_stream(&ops);
        let pos = (bytes.len() * flip_ppm as usize / 1_000_000).min(bytes.len() - 1);
        bytes[pos] ^= 1 << flip_bit;
        // Index of the record whose bytes contain the flip.
        let damaged = ends.iter().filter(|&&e| e <= pos).count();

        let (decoded, _tail) = decode_records(&bytes);
        prop_assert!(decoded.len() <= records.len());
        let intact_head = decoded.len().min(damaged);
        prop_assert_eq!(&decoded[..intact_head], &records[..intact_head]);
        // CRC-32 catches any single-bit error inside one record's frame,
        // so the damaged record itself must never survive verbatim.
        if decoded.len() > damaged {
            prop_assert_ne!(&decoded[damaged], &records[damaged]);
        }

        // File-level recovery over the damaged image must not panic and
        // must leave an appendable journal.
        let scratch = ScratchLog::new();
        std::fs::write(&scratch.0, &bytes).expect("write damaged log");
        let (journal, replayed, _tail) =
            WalJournal::open_append(&scratch.0).expect("open damaged log");
        prop_assert_eq!(&replayed[..], &decoded[..]);
        journal.append("wh-0", ChangeOp::TenantOpen);
        journal.seal();
    }

    /// snapshot ⊕ tail ≡ live: with auto-compaction rewriting the log
    /// mid-stream, re-reading the file always replays to the exact state
    /// the live journal accumulated.
    #[test]
    fn snapshot_plus_tail_replays_to_live_state(
        ops in proptest::collection::vec((0u8..3, op_strategy()), 1..24),
        snapshot_every in 1u64..8,
    ) {
        let scratch = ScratchLog::new();
        let journal = WalJournal::create_with(
            &scratch.0,
            WalConfig {
                fsync_every: 4,
                snapshot_every: Some(snapshot_every),
            },
        )
        .expect("create journal");
        for (tenant, op) in &ops {
            journal.append(&format!("wh-{tenant}"), op.clone());
        }
        journal.seal();
        let live = journal.state();
        drop(journal);

        let (records, tail) = read_log(&scratch.0).expect("read log");
        prop_assert_eq!(tail, LogTail::Clean);
        let replayed = ReplayState::from_records(&records);
        prop_assert_eq!(replayed, live);

        // And the reopened journal agrees too (the standby's view).
        let (journal, reopened, tail) = WalJournal::open_append(&scratch.0).expect("reopen");
        prop_assert_eq!(tail, LogTail::Clean);
        prop_assert_eq!(journal.state(), ReplayState::from_records(&reopened));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Live shipping equivalence: a standby that replays
    /// `snapshot ⊕ shipped tail` — records carried over the wire in
    /// `LogChunk` frames, reassembled through the reactor's incremental
    /// decoder at arbitrary read segmentation, with a mid-stream
    /// disconnect re-delivering an overlapping suffix — ends bit-identical
    /// to the primary: same live replay state, same last sequence number,
    /// and its on-disk log replays to the same state as the primary's.
    ///
    /// The subscription may start anywhere in the history (`from_ppm`);
    /// the standby seeds the skipped prefix with a synthetic snapshot
    /// record, exactly as a real standby bootstraps from a state transfer
    /// before tailing the live stream.
    #[test]
    fn shipped_tail_replays_to_primary_state(
        prefix in proptest::collection::vec((0u8..3, op_strategy()), 1..12),
        suffix in proptest::collection::vec((0u8..3, op_strategy()), 0..12),
        snapshot_every in (0u64..3, 2u64..6).prop_map(|(on, n)| (on == 0).then_some(n)),
        from_ppm in 0u32..1_000_000,
        chunk_len in 1usize..5,
        split_ppm in 0u32..1_000_000,
        overlap_ppm in 0u32..1_000_000,
        cuts in proptest::collection::vec(0usize..10_000, 0..6),
    ) {
        let primary_path = ScratchLog::new();
        let standby_path = ScratchLog::new();
        let primary = WalJournal::create_with(
            &primary_path.0,
            WalConfig { fsync_every: 4, snapshot_every },
        )
        .expect("create primary");

        // History before the standby shows up. Track the logical records
        // on the test side (auto-compaction may rewrite the file under
        // us, but replaying the originals gives the same state).
        let mut logical = Vec::new();
        for (tenant, op) in &prefix {
            let tenant = format!("wh-{tenant}");
            let seq = primary.append(&tenant, op.clone());
            logical.push(ChangeRecord { seq, tenant, op: op.clone() });
        }

        // Subscribe from an arbitrary point in the history: catch-up and
        // live registration are atomic, so catch_up ⊕ drain() is the
        // gap-free stream from `from_seq` on.
        let from_seq = 1 + primary.last_seq() * from_ppm as u64 / 1_000_000;
        let (catch_up, sub) = primary.tail(from_seq, || {}).expect("subscribe");

        let standby = WalJournal::create(&standby_path.0).expect("create standby");
        if from_seq > 1 {
            // Bootstrap the skipped prefix as a snapshot record.
            let state =
                ReplayState::from_records(logical.iter().filter(|r| r.seq < from_seq));
            let seeded = standby.append_record(&ChangeRecord {
                seq: from_seq - 1,
                tenant: String::new(),
                op: ChangeOp::Snapshot(state.snapshot()),
            });
            prop_assert!(seeded);
        }

        // Live phase: these appends are pushed into the subscription.
        for (tenant, op) in &suffix {
            primary.append(&format!("wh-{tenant}"), op.clone());
        }
        let mut shipped = catch_up;
        shipped.extend(sub.drain());

        // Disconnect mid-stream, reconnect, and re-deliver an overlapping
        // suffix. Each delivery is its own connection — its own chunk
        // framing and its own incremental decoder (a chunk's embedded
        // records are seq-monotonic, so re-delivery can never share a
        // stream with the original) — and the duplicate records in the
        // overlap must be absorbed by the standby's seq dedup.
        let split = shipped.len() * split_ppm as usize / 1_000_000;
        let overlap = split * overlap_ppm as usize / 1_000_000;
        let epoch = primary.epoch();
        let first = ship_over_wire(&shipped[..split], chunk_len, epoch, &cuts, &standby);
        let second =
            ship_over_wire(&shipped[split - overlap..], chunk_len, epoch, &cuts, &standby);
        prop_assert_eq!(first, split);
        prop_assert_eq!(first + second, shipped.len() + overlap);

        // Live state equivalence, then on-disk equivalence.
        prop_assert_eq!(standby.last_seq(), primary.last_seq());
        prop_assert_eq!(standby.state(), primary.state());
        primary.seal();
        standby.seal();
        let (p_records, p_tail) = read_log(&primary_path.0).expect("read primary");
        let (s_records, s_tail) = read_log(&standby_path.0).expect("read standby");
        prop_assert_eq!(p_tail, LogTail::Clean);
        prop_assert_eq!(s_tail, LogTail::Clean);
        prop_assert_eq!(
            ReplayState::from_records(&s_records),
            ReplayState::from_records(&p_records)
        );
    }
}

/// One shipping "connection": encode `records` into `LogChunk` frames
/// (`chunk_len` records per chunk), deliver the byte stream to a fresh
/// incremental decoder in arbitrary read segments (`cuts`), and apply
/// every decoded record to `standby`. Returns how many records arrived
/// (applied or deduped).
fn ship_over_wire(
    records: &[ChangeRecord],
    chunk_len: usize,
    epoch: u64,
    cuts: &[usize],
    standby: &WalJournal,
) -> usize {
    let mut wire = Vec::new();
    for chunk in records.chunks(chunk_len.max(1)) {
        let payload = schema::encode_log_chunk(epoch, chunk);
        write_frame(&mut wire, FrameKind::LogChunk, &payload).expect("in-memory write");
    }
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (wire.len() + 1)).collect();
    bounds.push(wire.len());
    bounds.sort_unstable();
    let mut decoder = FrameDecoder::new();
    let mut start = 0;
    let mut received = 0usize;
    for &end in &bounds {
        decoder.push(&wire[start..end]);
        start = end;
        while let Some((kind, body)) = decoder.next_frame().expect("clean frames") {
            assert_eq!(kind, FrameKind::LogChunk);
            let view = schema::decode_log_chunk(&body).expect("chunk decodes");
            assert_eq!(view.epoch(), epoch);
            for rec in view.records().expect("records intact") {
                standby.append_record(&rec);
                received += 1;
            }
        }
    }
    assert_eq!(decoder.finish(), Ok(()));
    received
}

/// Epoch fencing pin: an append stamped with a pre-takeover epoch is
/// refused with the typed [`WireError::Fenced`] error, counted in the
/// stats, and never written — and the bump itself is durable.
#[test]
fn stale_epoch_append_is_refused_with_typed_fenced_error() {
    let scratch = ScratchLog::new();
    let journal = WalJournal::create(&scratch.0).expect("create");
    assert_eq!(journal.epoch(), 1);
    journal.append("wh-0", ChangeOp::TenantOpen);

    // A tenant handle captures the epoch it was built under — this is
    // what a soon-to-be-fenced primary's commit pipeline holds.
    let stale_handle = TenantJournal::new(Arc::clone(&journal), "wh-0");
    assert_eq!(stale_handle.epoch(), 1);

    // Standby takeover.
    assert_eq!(journal.bump_epoch(), 2);
    assert_eq!(journal.epoch(), 2);

    // Direct stale append: typed refusal, nothing written.
    let before = journal.last_seq();
    let err = journal
        .append_at(1, "wh-0", ChangeOp::Advance { now: 7 })
        .unwrap_err();
    assert_eq!(
        err,
        WireError::Fenced {
            stale: 1,
            current: 2
        }
    );
    assert_eq!(journal.last_seq(), before);
    assert_eq!(journal.stats().fenced_appends, 1);

    // The pre-takeover handle is fenced the same way; it absorbs the
    // error (the pipeline must not die) but the refusal is counted and
    // the log stays untouched.
    stale_handle.advance(9, &[]);
    assert_eq!(journal.last_seq(), before);
    assert_eq!(journal.stats().fenced_appends, 2);

    // A current-epoch append still lands.
    assert!(journal
        .append_at(2, "wh-0", ChangeOp::Advance { now: 9 })
        .is_ok());
    assert_eq!(journal.last_seq(), before + 1);

    // The bump is durable: a reopened journal resumes at epoch 2 and a
    // fresh handle appends cleanly.
    journal.seal();
    drop(stale_handle);
    drop(journal);
    let (reopened, _records, tail) = WalJournal::open_append(&scratch.0).expect("reopen");
    assert_eq!(tail, LogTail::Clean);
    assert_eq!(reopened.epoch(), 2);
    let fresh = TenantJournal::new(Arc::clone(&reopened), "wh-0");
    assert_eq!(fresh.epoch(), 2);
    let before = reopened.last_seq();
    fresh.advance(11, &[]);
    assert_eq!(reopened.last_seq(), before + 1);
}

/// Reconnect dedup pin: `append_record` skips records at or below the
/// standby's last sequence (duplicate delivery after a tail reconnect)
/// and accepts everything past it, preserving shipped sequence numbers.
#[test]
fn append_record_dedups_reconnect_overlap() {
    let scratch = ScratchLog::new();
    let journal = WalJournal::create(&scratch.0).expect("create");
    let rec = |seq: u64| ChangeRecord {
        seq,
        tenant: "wh-0".into(),
        op: ChangeOp::Advance { now: seq as u32 },
    };
    assert!(journal.append_record(&rec(1)));
    assert!(journal.append_record(&rec(2)));
    // Re-delivery of the already-applied overlap: skipped, not an error.
    assert!(!journal.append_record(&rec(1)));
    assert!(!journal.append_record(&rec(2)));
    // The stream resumes past the overlap.
    assert!(journal.append_record(&rec(3)));
    assert_eq!(journal.last_seq(), 3);
    journal.seal();
    let (records, tail) = read_log(&scratch.0).expect("reread");
    assert_eq!(tail, LogTail::Clean);
    assert_eq!(records, vec![rec(1), rec(2), rec(3)]);
}
