//! The deadline path against the *real* SRP planner: an over-budget plan
//! must be cancelled post-commit, and that cancel must actually retire the
//! route's segments from the sharded store engine — otherwise every
//! refused request would leak phantom traffic that blocks later robots.

use carp_service::service::{PlanResponse, PlanningService, ServiceConfig};
use carp_srp::{SrpConfig, SrpPlanner};
use carp_warehouse::layout::{Layout, LayoutConfig};
use carp_warehouse::request::RequestId;
use carp_warehouse::types::{Cell, Time};
use carp_warehouse::{PlanOutcome, Planner, QueryKind, Request, Route};
use std::time::Duration;

/// A real SRP planner whose `plan` is artificially slow — every other
/// operation (cancel, retirement, metrics) is the production code path,
/// which is the point: the test checks that the service's post-commit
/// cancel drives real segment retirement, not a stub's bookkeeping.
struct SlowSrp {
    inner: SrpPlanner,
    delay: Duration,
}

impl Planner for SlowSrp {
    fn name(&self) -> &'static str {
        "slow-srp"
    }
    fn plan(&mut self, req: &Request) -> PlanOutcome {
        std::thread::sleep(self.delay);
        self.inner.plan(req)
    }
    fn advance(&mut self, now: Time) -> Vec<(RequestId, Route)> {
        self.inner.advance(now)
    }
    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
    fn provenance(&self, id: RequestId) -> Option<String> {
        self.inner.provenance(id)
    }
    fn cancel(&mut self, id: RequestId) -> bool {
        self.inner.cancel(id)
    }
    fn engine_metrics(&self) -> Option<carp_warehouse::EngineMetrics> {
        self.inner.engine_metrics()
    }
}

fn small_layout() -> Layout {
    LayoutConfig::small().generate()
}

fn a_request(id: RequestId, layout: &Layout) -> Request {
    let free: Vec<Cell> = layout
        .matrix
        .cells()
        .filter(|&c| layout.matrix.is_free(c))
        .collect();
    Request::new(id, 0, free[0], free[free.len() - 1], QueryKind::Pickup)
}

/// Over-budget plan → `DeadlineOverrun`, and the cancelled route's
/// segments are gone from the engine: the planner is bit-equivalent to a
/// twin that never saw the request.
#[test]
fn deadline_overrun_retires_segments_from_engine() {
    let layout = small_layout();
    let slow = SlowSrp {
        inner: SrpPlanner::new(layout.matrix.clone(), SrpConfig::default()),
        delay: Duration::from_millis(200),
    };
    let config = ServiceConfig {
        deadline: Some(Duration::from_millis(50)),
        ..ServiceConfig::default()
    };
    let service = PlanningService::spawn(slow, config);
    let client = service.client();

    // The queue wait is near zero (single request, idle worker), so the
    // budget is blown *inside* `plan` — the post-commit cancel path. If a
    // slow CI host sheds it in the queue instead, resubmit: either way the
    // route must never survive.
    let mut response = PlanResponse::DeadlineShed;
    let mut id = 0;
    for attempt in 0..5u64 {
        id = attempt;
        response = client
            .submit(a_request(id, &layout))
            .expect("queue accepts")
            .wait();
        if response != PlanResponse::DeadlineShed {
            break;
        }
    }
    assert_eq!(
        response,
        PlanResponse::DeadlineOverrun,
        "a 200ms plan under a 50ms budget must overrun"
    );

    // Shut down first: the worker publishes its engine-metrics snapshot at
    // the end of each cycle, so only after join is the snapshot guaranteed
    // current. The client handle stays readable past shutdown.
    let slow = service.shutdown();
    let metrics = client.metrics();
    assert_eq!(metrics.cancelled_deadline, 1);
    assert_eq!(metrics.planned, 0);
    let engine = metrics.engine.expect("SRP publishes engine metrics");
    assert_eq!(
        engine.soft_bookings, 0,
        "the cancel path must release cleanly, never book optimistically"
    );
    assert_eq!(
        engine.window_debt, 0,
        "nothing to promote, nothing past due"
    );

    assert_eq!(
        slow.inner.total_segments(),
        0,
        "cancelled route left segments in the store engine"
    );
    // The cancel is gone without trace: replanning the same request on the
    // supposedly-clean planner and on a genuinely fresh twin must produce
    // the identical route.
    let mut reused = slow.inner;
    let mut twin = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
    let req = a_request(id + 1, &layout);
    assert_eq!(
        reused.plan(&req),
        twin.plan(&req),
        "residual state diverged from a fresh planner"
    );
}

/// Control: with deadlines disabled the identical slow plan commits, and
/// its segments persist in the engine — proving the retirement asserted
/// above is driven by the cancel, not by shutdown or retirement timers.
#[test]
fn without_deadline_slow_plan_commits_and_segments_persist() {
    let layout = small_layout();
    let slow = SlowSrp {
        inner: SrpPlanner::new(layout.matrix.clone(), SrpConfig::default()),
        delay: Duration::from_millis(100),
    };
    let config = ServiceConfig {
        deadline: None,
        ..ServiceConfig::default()
    };
    let service = PlanningService::spawn(slow, config);
    let client = service.client();
    let response = client
        .submit(a_request(0, &layout))
        .expect("queue accepts")
        .wait();
    assert!(
        response.route().is_some(),
        "deadline-free slow plan must commit, got {response:?}"
    );

    let metrics = client.metrics();
    assert_eq!(metrics.planned, 1);
    assert_eq!(metrics.cancelled_deadline, 0);

    let slow = service.shutdown();
    assert!(
        slow.inner.total_segments() > 0,
        "committed route must keep its segments reserved"
    );
}
