//! End-to-end load runs through the service: determinism, zero audited
//! collisions, and deadline behaviour under real planners.

use carp_service::loadgen::{run_load, LoadScenario};
use carp_service::service::ServiceConfig;
use carp_simenv::SimConfig;
use carp_srp::{SrpConfig, SrpPlanner};
use carp_warehouse::layout::{Layout, LayoutConfig, WarehousePreset};
use std::time::Duration;

fn srp(layout: &Layout) -> SrpPlanner {
    SrpPlanner::new(layout.matrix.clone(), SrpConfig::default())
}

fn deterministic_cfg() -> ServiceConfig {
    ServiceConfig {
        deadline: None,
        ..ServiceConfig::default()
    }
}

/// Two identical runs must produce the identical task stream and the
/// identical committed route set (pinned by the digest).
#[test]
fn same_seed_and_rate_is_bit_deterministic() {
    let layout = LayoutConfig::small().generate();
    let scenario_a = LoadScenario::new("small@2x", layout.clone(), 40, 400, 2.0, 11);
    let scenario_b = LoadScenario::new("small@2x", layout.clone(), 40, 400, 2.0, 11);
    assert_eq!(scenario_a.tasks, scenario_b.tasks, "task stream differs");

    let (ra, _) = run_load(
        &scenario_a,
        srp(&layout),
        SimConfig::default(),
        deterministic_cfg(),
    );
    let (rb, _) = run_load(
        &scenario_b,
        srp(&layout),
        SimConfig::default(),
        deterministic_cfg(),
    );
    assert_eq!(ra.audit_conflicts, 0);
    assert_eq!(rb.audit_conflicts, 0);
    assert_eq!(
        ra.routes_digest, rb.routes_digest,
        "committed routes differ"
    );
    assert_eq!(ra.service.planned, rb.service.planned);
    assert_eq!(ra.makespan, rb.makespan);
}

/// A different seed must actually change the committed routes — otherwise
/// the digest test above is vacuous.
#[test]
fn different_seed_changes_the_digest() {
    let layout = LayoutConfig::small().generate();
    let a = LoadScenario::new("s", layout.clone(), 40, 400, 1.0, 11);
    let b = LoadScenario::new("s", layout.clone(), 40, 400, 1.0, 12);
    let (ra, _) = run_load(&a, srp(&layout), SimConfig::default(), deterministic_cfg());
    let (rb, _) = run_load(&b, srp(&layout), SimConfig::default(), deterministic_cfg());
    assert_ne!(ra.routes_digest, rb.routes_digest);
}

/// The acceptance scenario: a W-2 load at 1× and 4× completes with zero
/// audited collisions, and the 1× run is reproducible.
#[test]
fn w2_load_at_1x_and_4x_is_collision_free_and_deterministic() {
    let layout = WarehousePreset::W2.generate();
    let sim = SimConfig::default();

    let s1 = LoadScenario::new("W-2@1x", layout.clone(), 60, 600, 1.0, 104);
    let (r1, _) = run_load(&s1, srp(&layout), sim.clone(), deterministic_cfg());
    assert_eq!(r1.audit_conflicts, 0, "W-2@1x audited a collision");
    assert_eq!(r1.completed, 60);

    let s4 = LoadScenario::new("W-2@4x", layout.clone(), 60, 600, 4.0, 104);
    let (r4, _) = run_load(&s4, srp(&layout), sim.clone(), deterministic_cfg());
    assert_eq!(r4.audit_conflicts, 0, "W-2@4x audited a collision");
    assert_eq!(r4.completed, 60);

    let s1b = LoadScenario::new("W-2@1x", layout.clone(), 60, 600, 1.0, 104);
    let (r1b, _) = run_load(&s1b, srp(&layout), sim, deterministic_cfg());
    assert_eq!(
        r1.routes_digest, r1b.routes_digest,
        "W-2@1x not reproducible"
    );
}

/// An impossible deadline refuses every request but never stalls the run:
/// legs exhaust their retries and the harness terminates with zero
/// completed tasks and a full refusal ledger.
#[test]
fn impossible_deadline_refuses_instead_of_stalling() {
    let layout = LayoutConfig::small().generate();
    let scenario = LoadScenario::new("small@1x", layout.clone(), 10, 100, 1.0, 3);
    let cfg = ServiceConfig {
        deadline: Some(Duration::from_nanos(1)),
        ..ServiceConfig::default()
    };
    let (report, _) = run_load(&scenario, srp(&layout), SimConfig::default(), cfg);
    assert_eq!(report.completed, 0, "nothing can meet a 1 ns deadline");
    assert!(report.refused_requests > 0, "refusals were not counted");
    assert!(
        report.service.shed_deadline + report.service.cancelled_deadline > 0,
        "deadline counters stayed zero"
    );
    assert!(report.refusal_rate > 0.0);
    // Whatever did get committed (possibly nothing) must still audit clean.
    assert_eq!(report.audit_conflicts, 0);
}
