//! Wire-protocol robustness suite: random round-trips and hostile bytes.
//!
//! Two families:
//!
//! * **Round-trip properties** — random frames and random schema payloads
//!   must survive encode → decode bit-exactly, including several frames
//!   back-to-back in one stream (the real connection shape).
//!
//! * **Corruption / truncation fuzz** — any mutilation of a valid byte
//!   stream (cut anywhere, any byte flipped, or plain random bytes) must
//!   produce a clean typed [`WireError`], never a panic and never an
//!   oversized allocation. The daemon shares this exact decode path, so
//!   these properties are what keeps a hostile client from taking a
//!   tenant down.

use carp_service::service::PlanResponse;
use carp_service::wire::schema;
use carp_service::wire::{read_frame, write_frame, FrameDecoder, FrameKind, WireError, HEADER_LEN};
use carp_warehouse::request::{QueryKind, Request};
use carp_warehouse::route::Route;
use carp_warehouse::types::Cell;
use proptest::prelude::*;

const ALL_KINDS: [FrameKind; 12] = [
    FrameKind::Submit,
    FrameKind::SubmitAck,
    FrameKind::PlanReply,
    FrameKind::Advance,
    FrameKind::AdvanceReply,
    FrameKind::Cancel,
    FrameKind::CancelReply,
    FrameKind::MetricsQuery,
    FrameKind::MetricsReply,
    FrameKind::ErrorReply,
    FrameKind::TailLog,
    FrameKind::LogChunk,
];

fn encode(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, kind, payload).expect("in-memory write");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A stream of random frames decodes back frame-for-frame, then EOFs
    /// cleanly.
    #[test]
    fn random_frames_round_trip_back_to_back(
        frames in proptest::collection::vec(
            (0usize..12, proptest::collection::vec(0u8..=255, 0..200)),
            1..6,
        ),
    ) {
        let mut stream = Vec::new();
        for (k, payload) in &frames {
            stream.extend_from_slice(&encode(ALL_KINDS[*k], payload));
        }
        let mut cursor = stream.as_slice();
        for (k, payload) in &frames {
            let (kind, got) = read_frame(&mut cursor)
                .expect("valid frame decodes")
                .expect("frame present");
            prop_assert_eq!(kind, ALL_KINDS[*k]);
            prop_assert_eq!(&got, payload);
        }
        prop_assert_eq!(read_frame(&mut cursor).expect("clean EOF"), None);
    }

    /// Cutting a valid single-frame stream anywhere yields `Truncated`
    /// (or a clean EOF when nothing was sent at all).
    #[test]
    fn any_truncation_is_a_clean_typed_error(
        k in 0usize..12,
        payload in proptest::collection::vec(0u8..=255, 0..200),
        cut_seed in 0u64..10_000,
    ) {
        let stream = encode(ALL_KINDS[k], &payload);
        let cut = (cut_seed as usize) % stream.len(); // < full frame
        let mut cursor = &stream[..cut];
        let got = read_frame(&mut cursor);
        if cut == 0 {
            prop_assert_eq!(got, Ok(None));
        } else {
            prop_assert_eq!(got, Err(WireError::Truncated));
        }
    }

    /// Flipping any single byte of a valid frame never panics: the reader
    /// either reports a typed header error, or hands the (corrupt) payload
    /// to the schema layer, which must also fail typed-only.
    #[test]
    fn any_single_byte_flip_never_panics(
        k in 0usize..12,
        payload in proptest::collection::vec(0u8..=255, 0..120),
        pos_seed in 0u64..10_000,
        flip in 1u8..=255,
    ) {
        let mut stream = encode(ALL_KINDS[k], &payload);
        let pos = (pos_seed as usize) % stream.len();
        stream[pos] ^= flip;
        let mut cursor = stream.as_slice();
        if let Ok(Some((kind, body))) = read_frame(&mut cursor) {
            // Header survived (the flip hit the payload, or mutated the
            // header into another valid one): every schema decoder must
            // digest the corrupt payload without panicking.
            exercise_schema_decoders(kind, &body);
        }
    }

    /// Plain random bytes into the frame reader: typed error or clean EOF.
    #[test]
    fn random_bytes_never_panic_the_frame_reader(
        bytes in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let mut cursor = bytes.as_slice();
        let _ = read_frame(&mut cursor); // must return, not panic
    }

    /// Random bytes into every schema decoder: typed error or a valid
    /// parse, never a panic.
    #[test]
    fn random_bytes_never_panic_the_schema_layer(
        bytes in proptest::collection::vec(0u8..=255, 0..96),
        k in 0usize..12,
    ) {
        exercise_schema_decoders(ALL_KINDS[k], &bytes);
    }

    /// Submit payloads round-trip exactly: tenant id and every request
    /// field.
    #[test]
    fn submit_round_trips(
        tenant_seed in 0u64..1_000_000,
        id in 0u64..u64::MAX,
        t in 0u32..1_000_000,
        endpoints in (0u16..500, 0u16..500, 0u16..500, 0u16..500),
        kind in 0usize..3,
    ) {
        let (orow, ocol, drow, dcol) = endpoints;
        let tenant = format!("W-{tenant_seed}");
        let kind = [QueryKind::Pickup, QueryKind::Transmission, QueryKind::Return][kind];
        let request = Request::new(
            id,
            t,
            Cell::new(orow, ocol),
            Cell::new(drow, dcol),
            kind,
        );
        let payload = schema::encode_submit(&tenant, &request);
        let (got_tenant, got_request) = schema::decode_submit(&payload).expect("round trip");
        prop_assert_eq!(got_tenant, tenant.as_str());
        prop_assert_eq!(got_request, request);
    }

    /// Planned-route replies round-trip exactly through the zero-copy
    /// route view, for arbitrary cell sequences.
    #[test]
    fn plan_reply_round_trips(
        id in 0u64..u64::MAX,
        start in 0u32..1_000_000,
        cells in proptest::collection::vec((0u16..400, 0u16..400), 0..64),
    ) {
        let route = Route::new(
            start,
            cells.iter().map(|&(r, c)| Cell::new(r, c)).collect(),
        );
        let response = PlanResponse::Planned(route.clone());
        let payload = schema::encode_plan_reply(id, &response);
        let (got_id, verdict) = schema::decode_plan_reply(&payload).expect("round trip");
        prop_assert_eq!(got_id, id);
        match verdict.into_response() {
            PlanResponse::Planned(got) => prop_assert_eq!(got, route),
            other => prop_assert!(false, "verdict decoded as {other:?}"),
        }
    }
}

/// Feed `body` to the schema decoder matching `kind` (and, for reply
/// kinds, the decoder a confused peer would apply). Every decoder must
/// return, never panic — the return value itself is irrelevant here.
fn exercise_schema_decoders(kind: FrameKind, body: &[u8]) {
    match kind {
        FrameKind::Submit => {
            let _ = schema::decode_submit(body);
        }
        FrameKind::SubmitAck => {
            let _ = schema::decode_submit_ack(body);
        }
        FrameKind::PlanReply => {
            let _ = schema::decode_plan_reply(body);
        }
        FrameKind::Advance => {
            let _ = schema::decode_advance(body);
        }
        FrameKind::AdvanceReply => {
            let _ = schema::decode_advance_reply(body);
        }
        FrameKind::Cancel => {
            let _ = schema::decode_cancel(body);
        }
        FrameKind::CancelReply => {
            let _ = schema::decode_cancel_reply(body);
        }
        FrameKind::MetricsQuery => {
            let _ = schema::decode_metrics_query(body);
        }
        FrameKind::MetricsReply => {
            let _ = schema::decode_metrics_reply(body);
        }
        FrameKind::ErrorReply => {
            let _ = schema::decode_error_reply(body);
        }
        FrameKind::TailLog => {
            let _ = schema::decode_tail_log(body);
        }
        FrameKind::LogChunk => {
            // The chunk view defers record parsing; force it so corrupt
            // embedded records are digested too.
            if let Ok(view) = schema::decode_log_chunk(body) {
                let _ = view.records();
            }
        }
    }
}

/// What a full decode of `stream` produced: every frame that came out, and
/// how the stream ended (clean EOF or a typed error).
type Decoded = (Vec<(FrameKind, Vec<u8>)>, Result<(), WireError>);

/// Decode `stream` the way the per-connection thread model does: blocking
/// [`read_frame`] calls until clean EOF or a typed error.
fn decode_blocking(stream: &[u8]) -> Decoded {
    let mut cursor = stream;
    let mut frames = Vec::new();
    loop {
        match read_frame(&mut cursor) {
            Ok(Some(frame)) => frames.push(frame),
            Ok(None) => return (frames, Ok(())),
            Err(err) => return (frames, Err(err)),
        }
    }
}

/// Decode `stream` the way the reactor does: nonblocking reads deliver the
/// bytes in arbitrary segments (`cuts` are split offsets, modulo-mapped
/// into the stream), each pushed into a [`FrameDecoder`] and drained; EOF
/// is judged by `finish`.
fn decode_segmented(stream: &[u8], cuts: &[usize]) -> Decoded {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (stream.len() + 1)).collect();
    bounds.push(stream.len());
    bounds.sort_unstable();
    let mut decoder = FrameDecoder::new();
    let mut frames = Vec::new();
    let mut start = 0;
    for &end in &bounds {
        decoder.push(&stream[start..end]);
        start = end;
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => break,
                Err(err) => return (frames, Err(err)),
            }
        }
    }
    (frames, decoder.finish())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Worst-case TCP segmentation — every byte its own read — must yield
    /// exactly the frames that went in, judged clean at EOF, identical to
    /// the blocking path.
    #[test]
    fn byte_by_byte_reassembly_matches_blocking(
        frames in proptest::collection::vec(
            (0usize..12, proptest::collection::vec(0u8..=255, 0..120)),
            1..5,
        ),
    ) {
        let mut stream = Vec::new();
        for (k, payload) in &frames {
            stream.extend_from_slice(&encode(ALL_KINDS[*k], payload));
        }
        let every_byte: Vec<usize> = (0..stream.len()).collect();
        let (got, terminal) = decode_segmented(&stream, &every_byte);
        prop_assert_eq!(terminal, Ok(()));
        prop_assert_eq!(got.len(), frames.len());
        for ((kind, body), (k, payload)) in got.iter().zip(frames.iter()) {
            prop_assert_eq!(*kind, ALL_KINDS[*k]);
            prop_assert_eq!(body, payload);
        }
        prop_assert_eq!(decode_segmented(&stream, &every_byte), decode_blocking(&stream));
    }

    /// Any byte stream — valid frames, truncated mid-frame, or with a byte
    /// flipped anywhere — decodes to the *same* frame sequence and the
    /// *same* terminal verdict through the reactor's incremental decoder
    /// as through the blocking reader, at any segmentation.
    #[test]
    fn adversarial_segmentation_matches_blocking(
        frames in proptest::collection::vec(
            (0usize..12, proptest::collection::vec(0u8..=255, 0..120)),
            0..4,
        ),
        cut_seed in 0u64..10_000,
        flip_pos in 0u64..10_000,
        flip_bits in 0u8..=255, // 0 = leave the stream intact
        cuts in proptest::collection::vec(0usize..5_000, 0..8),
    ) {
        let mut stream = Vec::new();
        for (k, payload) in &frames {
            stream.extend_from_slice(&encode(ALL_KINDS[*k], payload));
        }
        // Mutilate: maybe cut the tail off, maybe flip one byte.
        stream.truncate((cut_seed as usize) % (stream.len() + 1));
        if !stream.is_empty() {
            let pos = (flip_pos as usize) % stream.len();
            stream[pos] ^= flip_bits;
        }
        prop_assert_eq!(decode_segmented(&stream, &cuts), decode_blocking(&stream));
    }
}

/// A frame whose header declares an absurd payload length must be rejected
/// from the length field alone — no allocation, no read attempt.
#[test]
fn oversize_length_is_rejected_before_allocation() {
    let mut header = Vec::new();
    header.extend_from_slice(b"CARP");
    header.extend_from_slice(&1u16.to_le_bytes());
    header.extend_from_slice(&1u16.to_le_bytes());
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(header.len(), HEADER_LEN);
    let mut cursor = header.as_slice();
    assert_eq!(read_frame(&mut cursor), Err(WireError::Oversize(u32::MAX)));
}
