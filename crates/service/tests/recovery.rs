//! Crash-recovery conformance: kill-primary takeover, revision replay,
//! graceful drain, rate limiting, and `ReproBundle` subsumption.
//!
//! The headline property mirrors the speculative pipeline's: a day whose
//! primary daemon dies mid-load and is finished by a warm standby rebuilt
//! purely from the changeset log must commit the **bit-identical** route
//! set an uninterrupted run commits — with zero audited collisions — even
//! when the log ends in a torn half-written record.

use carp_service::ingest::{duplex, serve_connection_limited, RateLimit};
use carp_service::loadgen::{run_load_recovery, run_load_speculative, LoadScenario};
use carp_service::service::ServiceConfig;
use carp_service::tenant::TenantRegistry;
use carp_service::wal::{self, read_log, ChangeOp, LogTail, ReplayState, WalJournal};
use carp_service::wire::{WireClient, WireError, WireSubmitError};
use carp_simenv::audit::ReproBundle;
use carp_simenv::SimConfig;
use carp_warehouse::collision::IncrementalAuditor;
use carp_warehouse::layout::LayoutConfig;
use carp_warehouse::planner::{PlanOutcome, Planner, SpeculativePlanner};
use carp_warehouse::request::{QueryKind, Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::types::{Cell, Time};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct ScratchLog(PathBuf);

impl ScratchLog {
    fn new() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        ScratchLog(
            std::env::temp_dir().join(format!("carp-recovery-test-{}-{n}.wal", std::process::id())),
        )
    }
}

impl Drop for ScratchLog {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Kill the primary halfway through a W-2 day (with a torn tail injected
/// on top) and finish on the standby: digest and audit must match the
/// uninterrupted WAL-off baseline bit-for-bit.
#[test]
fn standby_takeover_finishes_the_day_bit_identically() {
    let layout = carp_warehouse::layout::WarehousePreset::W2.generate();
    let scenario = LoadScenario::new("W-2@4x", layout.clone(), 60, 600, 4.0, 104);
    let sim = SimConfig::default();
    let cfg = ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    };
    let srp = || carp_srp::SrpPlanner::new(layout.matrix.clone(), carp_srp::SrpConfig::default());

    let (baseline, _) = run_load_speculative(&scenario, srp(), sim.clone(), cfg);
    assert_eq!(baseline.audit_conflicts, 0);

    let last_arrival = scenario.tasks.last().map_or(0, |t| t.arrival);
    let scratch = ScratchLog::new();
    let (rec, _) = run_load_recovery(
        &scenario,
        srp,
        sim,
        cfg,
        &scratch.0,
        last_arrival / 2,
        true, // torn tail: the standby must truncate a half-written record
    );

    assert!(rec.records_replayed > 0, "standby replayed nothing");
    assert!(
        rec.torn_tail_dropped > 0,
        "torn tail was not injected/dropped"
    );
    assert!(rec.killed_at >= last_arrival / 2);
    assert_eq!(rec.report.audit_conflicts, 0);
    assert_eq!(
        rec.report.routes_digest, baseline.routes_digest,
        "recovered day diverged from the uninterrupted baseline"
    );
    // Both halves served real traffic.
    assert!(rec.primary_metrics.planned > 0);
    assert!(rec.report.service.planned > 0);
    assert!(rec.wal_stats.appends > 0);
}

/// A deterministic planner that *revises* every active route on `advance`
/// — the windowed-TWP/RP behaviour PR 6's replica replay excluded. Each
/// request parks on its own private cell, so commits and revisions are
/// always collision-free and the pipeline's audit stays green.
#[derive(Clone, Default)]
struct RevisingPlanner {
    active: BTreeMap<RequestId, Route>,
}

fn park_route(id: RequestId, start: Time) -> Route {
    // Five ticks of waiting on a cell unique to this request id.
    Route::new(start, vec![Cell::new(id as u16, 0); 5])
}

impl Planner for RevisingPlanner {
    fn name(&self) -> &'static str {
        "revising-stub"
    }

    fn memory_bytes(&self) -> usize {
        self.active.len() * std::mem::size_of::<(RequestId, Route)>()
    }

    fn plan(&mut self, req: &Request) -> PlanOutcome {
        let route = park_route(req.id, req.t);
        self.active.insert(req.id, route.clone());
        PlanOutcome::Planned(route)
    }

    fn advance(&mut self, now: Time) -> Vec<(RequestId, Route)> {
        self.active.retain(|_, r| r.end_time() >= now);
        self.active
            .iter_mut()
            .map(|(&id, r)| {
                *r = park_route(id, now);
                (id, r.clone())
            })
            .collect()
    }

    fn cancel(&mut self, id: RequestId) -> bool {
        self.active.remove(&id).is_some()
    }
}

impl SpeculativePlanner for RevisingPlanner {
    fn fork(&self) -> Self {
        self.clone()
    }

    fn plan_candidate(&mut self, req: &Request) -> Option<Route> {
        Some(park_route(req.id, req.t))
    }

    fn adopt(&mut self, id: RequestId, route: &Route) {
        self.active.insert(id, route.clone());
    }
}

/// Route revisions flow through the speculative pipeline (EpochOp::Revise,
/// closing the PR 6 exclusion), land in the changeset log as Revise
/// records, and replay into a standby planner with the authoritative
/// routes — covering the windowed-TWP/RP shape end to end.
#[test]
fn revisions_are_journaled_and_replayed() {
    let scratch = ScratchLog::new();
    let journal = WalJournal::create(&scratch.0).expect("create journal");
    let registry = TenantRegistry::new();
    registry.attach_journal(Arc::clone(&journal));
    registry.register_speculative(
        "rev".to_string(),
        RevisingPlanner::default(),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let tenant = registry.get("rev").expect("tenant registered");

    let submit = |id: u64, t: Time| {
        let req = Request::new(id, t, Cell::new(0, 0), Cell::new(1, 1), QueryKind::Pickup);
        tenant.client().submit(req).expect("submit accepted").wait()
    };
    for id in 0..4u64 {
        assert!(matches!(
            submit(id, 0),
            carp_service::service::PlanResponse::Planned(_)
        ));
    }
    // All four routes end at t=4, so at now=2 each is still active and
    // the planner revises all of them.
    let revisions = tenant.client().advance(2);
    assert_eq!(revisions.len(), 4, "planner revises every active route");
    // The pipeline must stay consistent after the revision batch: more
    // commits land on the revised audited state.
    for id in 10..12u64 {
        assert!(matches!(
            submit(id, 2),
            carp_service::service::PlanResponse::Planned(_)
        ));
    }
    assert_eq!(registry.drain_all(), 1);

    let (records, tail) = read_log(&scratch.0).expect("read log");
    assert_eq!(tail, LogTail::Clean);
    let revise_records = records
        .iter()
        .filter(|r| matches!(r.op, ChangeOp::Revise { .. }))
        .count();
    assert_eq!(revise_records, 4);
    wal::audit_log(&records).expect("journaled history is collision-free");

    // Replay everything before the close: counters and planner state must
    // reflect the revisions, with revised routes starting at now=2.
    let open_slice: Vec<_> = records
        .iter()
        .filter(|r| !matches!(r.op, ChangeOp::TenantClose))
        .cloned()
        .collect();
    let state = ReplayState::from_records(&open_slice);
    let t = &state.tenants["rev"];
    assert_eq!(t.committed, 6);
    assert_eq!(t.revised, 4);
    assert_eq!(t.now, 2);
    for id in 0..4u64 {
        assert_eq!(t.active[&id].1.start, 2, "request {id} not revised");
    }

    let (planners, _) = wal::recover_planners(&open_slice, |_| RevisingPlanner::default());
    let recovered = &planners["rev"];
    assert_eq!(recovered.active.len(), 6);
    for id in 0..4u64 {
        assert_eq!(recovered.active[&id].start, 2);
    }
}

/// Graceful drain: every tenant shut down in order, open/close bracketed
/// in the log, log sealed clean.
#[test]
fn drain_all_closes_tenants_and_seals_the_log() {
    let scratch = ScratchLog::new();
    let journal = WalJournal::create(&scratch.0).expect("create journal");
    let registry = TenantRegistry::new();
    registry.attach_journal(Arc::clone(&journal));
    registry.register_speculative(
        "a".to_string(),
        RevisingPlanner::default(),
        ServiceConfig::default(),
    );
    registry.register_speculative(
        "b".to_string(),
        RevisingPlanner::default(),
        ServiceConfig::default(),
    );
    let req = Request::new(7, 0, Cell::new(0, 0), Cell::new(1, 1), QueryKind::Pickup);
    registry
        .get("a")
        .expect("tenant a")
        .client()
        .submit(req)
        .expect("submit")
        .wait();

    assert_eq!(registry.drain_all(), 2);
    assert!(registry.get("a").is_none());
    assert!(registry.get("b").is_none());

    let (records, tail) = read_log(&scratch.0).expect("read sealed log");
    assert_eq!(tail, LogTail::Clean);
    let opens = records
        .iter()
        .filter(|r| matches!(r.op, ChangeOp::TenantOpen))
        .count();
    let closes = records
        .iter()
        .filter(|r| matches!(r.op, ChangeOp::TenantClose))
        .count();
    assert_eq!((opens, closes), (2, 2));
    // Drained history replays to the empty state: nothing left open.
    assert!(ReplayState::from_records(&records).tenants.is_empty());
}

/// Rate limiting: the bucket refuses the frame *with a typed verdict* —
/// Throttled ack for submits, Throttled error reply for control frames —
/// and recovers once tokens refill.
#[test]
fn rate_limited_connection_gets_typed_refusals_then_recovers() {
    let registry = Arc::new(TenantRegistry::new());
    registry.register_speculative(
        "rl".to_string(),
        RevisingPlanner::default(),
        ServiceConfig::default(),
    );
    let ((client_read, client_write), (server_read, server_write)) = duplex();
    let server_registry = Arc::clone(&registry);
    let server = std::thread::spawn(move || {
        serve_connection_limited(
            &server_registry,
            server_read,
            server_write,
            Some(RateLimit {
                burst: 1,
                per_sec: 40.0,
            }),
        )
    });
    let mut client = WireClient::new(client_read, client_write);

    let req = |id: u64| Request::new(id, 0, Cell::new(0, 0), Cell::new(1, 1), QueryKind::Pickup);
    // Token 1: accepted.
    client
        .submit("rl", &req(1))
        .expect("first submit fits the burst");
    // Bucket empty: a submit gets a Throttled *ack* with a retry hint.
    let retry_after = match client.submit("rl", &req(2)) {
        Err(WireSubmitError::Throttled { retry_after }) => retry_after,
        other => panic!("expected Throttled, got {other:?}"),
    };
    // Never zero or sub-clamp: a zero hint turns a well-behaved client
    // into a hot spin against a daemon that is actively throttling it.
    assert!(retry_after >= RateLimit::MIN_RETRY_AFTER);
    // A control frame while throttled gets the typed error reply.
    match client.advance("rl", 1) {
        Err(WireError::Throttled) => {}
        other => panic!("expected WireError::Throttled, got {other:?}"),
    }
    // Refill (25 ms/token at 40/s, plus slack) and the connection works
    // again — throttling never kills the session.
    std::thread::sleep(retry_after + std::time::Duration::from_millis(100));
    client.submit("rl", &req(2)).expect("submit after refill");
    client.wait_plan(1).expect("reply for request 1");
    client.wait_plan(2).expect("reply for request 2");
    drop(client);
    server
        .join()
        .expect("server thread")
        .expect("clean connection end");
}

/// The same typed throttling contract holds on the event-loop front-end:
/// a saturated connection served by the reactor gets a Throttled *ack*
/// with a retry hint (and a Throttled error reply for control frames),
/// and the session survives to work again once the bucket refills.
#[cfg(unix)]
#[test]
fn mux_rate_limited_connection_gets_typed_refusals_then_recovers() {
    use carp_service::{serve_tcp_mux, MuxConfig, MuxMetrics};
    use std::sync::atomic::AtomicBool;

    let registry = Arc::new(TenantRegistry::new());
    registry.register_speculative(
        "rl".to_string(),
        RevisingPlanner::default(),
        ServiceConfig::default(),
    );
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let registry = Arc::clone(&registry);
        let shutdown = Arc::clone(&shutdown);
        let config = MuxConfig {
            threads: 1,
            rate_limit: Some(RateLimit {
                burst: 1,
                per_sec: 40.0,
            }),
            ..MuxConfig::default()
        };
        std::thread::spawn(move || {
            serve_tcp_mux(
                listener,
                registry,
                shutdown,
                config,
                Arc::new(MuxMetrics::default()),
            )
        })
    };
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut client = WireClient::new(stream.try_clone().expect("clone read half"), stream);

    let req = |id: u64| Request::new(id, 0, Cell::new(0, 0), Cell::new(1, 1), QueryKind::Pickup);
    client
        .submit("rl", &req(1))
        .expect("first submit fits the burst");
    let retry_after = match client.submit("rl", &req(2)) {
        Err(WireSubmitError::Throttled { retry_after }) => retry_after,
        other => panic!("expected Throttled over the mux, got {other:?}"),
    };
    assert!(retry_after >= RateLimit::MIN_RETRY_AFTER);
    match client.advance("rl", 1) {
        Err(WireError::Throttled) => {}
        other => panic!("expected WireError::Throttled over the mux, got {other:?}"),
    }
    std::thread::sleep(retry_after + std::time::Duration::from_millis(100));
    client.submit("rl", &req(2)).expect("submit after refill");
    client.wait_plan(1).expect("reply for request 1");
    client.wait_plan(2).expect("reply for request 2");
    drop(client);
    shutdown.store(true, Ordering::SeqCst);
    server
        .join()
        .expect("server thread")
        .expect("mux exits clean");
    registry.drain_all();
}

/// SIGTERM lands while clients are mid-churn against the event-loop
/// daemon: the process must stop accepting, drain every tenant, seal the
/// changeset log with a clean tail, and exit 0. Spawned directly (no
/// shell) so the signal hits the daemon pid itself.
#[cfg(unix)]
#[test]
fn sigterm_mid_churn_drains_every_tenant_and_seals_the_wal() {
    use carp_service::service::PlanResponse;
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};
    use std::sync::atomic::AtomicUsize;

    let scratch = ScratchLog::new();
    let mut child = Command::new(env!("CARGO_BIN_EXE_carp-service"))
        .args(["--listen", "127.0.0.1:0", "--tenants", "W-1"])
        .args(["--mux-threads", "2", "--wal"])
        .arg(&scratch.0)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn carp-service daemon");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut reader = BufReader::new(stderr);
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            reader.read_line(&mut line).expect("daemon stderr"),
            0,
            "daemon exited before announcing its address"
        );
        if let Some(rest) = line.trim().strip_prefix("carp-service: listening on ") {
            break rest.parse::<std::net::SocketAddr>().expect("bound address");
        }
    };
    // Keep draining stderr so the daemon never blocks on a full pipe; the
    // collected tail carries the drain/seal message we assert on.
    let stderr_tail = std::thread::spawn(move || {
        let mut tail = String::new();
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap_or(0) > 0 {
            tail.push_str(&line);
            line.clear();
        }
        tail
    });

    // Valid endpoints for the W-1 tenant: spawn cells to rack cells.
    let layout = carp_warehouse::layout::WarehousePreset::W1.generate();
    let scenario = LoadScenario::new("W-1@1x", layout, 8, 40, 1.0, 7);
    let targets: Vec<(Cell, Cell)> = scenario
        .tasks
        .iter()
        .take(16)
        .enumerate()
        .map(|(i, task)| {
            let spawns = &scenario.layout.robot_spawns;
            (spawns[i % spawns.len()], task.rack)
        })
        .collect();

    let connect_client = || {
        let stream = std::net::TcpStream::connect(addr).expect("connect to daemon");
        stream.set_nodelay(true).expect("nodelay");
        WireClient::new(stream.try_clone().expect("clone read half"), stream)
    };
    // Guarantee journaled commits before the signal fires.
    let mut warm = connect_client();
    for id in 0..3u64 {
        let (origin, destination) = targets[id as usize % targets.len()];
        let request = Request::new(id, 0, origin, destination, QueryKind::Pickup);
        warm.submit("W-1", &request).expect("warm-up submit");
        match warm.wait_plan(id).expect("warm-up plan") {
            PlanResponse::Planned(_) => {}
            other => panic!("warm-up request {id} refused: {other:?}"),
        }
    }

    // Churn: two clients submitting as fast as they can until the drain
    // closes their sockets out from under them.
    let committed_mid_churn = Arc::new(AtomicUsize::new(0));
    let churners: Vec<_> = (0..2u64)
        .map(|c| {
            let mut client = connect_client();
            let targets = targets.clone();
            let committed = Arc::clone(&committed_mid_churn);
            std::thread::spawn(move || {
                for k in 0.. {
                    let id = 1_000 * (c + 1) + k;
                    let (origin, destination) = targets[(id as usize) % targets.len()];
                    let request = Request::new(id, 0, origin, destination, QueryKind::Pickup);
                    match client.submit("W-1", &request) {
                        Ok(()) => {}
                        Err(WireSubmitError::Backpressure { retry_after, .. })
                        | Err(WireSubmitError::Throttled { retry_after }) => {
                            std::thread::sleep(retry_after);
                            continue;
                        }
                        Err(_) => return, // daemon is draining; done
                    }
                    match client.wait_plan(id) {
                        Ok(PlanResponse::Planned(_)) => {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {}
                        Err(_) => return,
                    }
                }
            })
        })
        .collect();
    // Let the churn run long enough to have work genuinely in flight.
    while committed_mid_churn.load(Ordering::Relaxed) < 4 {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");
    let status = child.wait().expect("daemon exit status");
    assert_eq!(status.code(), Some(0), "daemon must exit 0 after SIGTERM");
    for churner in churners {
        churner.join().expect("churn client thread");
    }
    let tail = stderr_tail.join().expect("stderr drain thread");
    assert!(
        tail.contains("drained 1 tenant(s), log sealed"),
        "daemon stderr missing drain/seal message:\n{tail}"
    );

    // The changeset log must be sealed: clean tail, open/close bracketed,
    // and the mid-churn commits journaled inside the bracket.
    let (records, log_tail) = read_log(&scratch.0).expect("read sealed log");
    assert_eq!(log_tail, LogTail::Clean, "WAL tail not sealed clean");
    let opens = records
        .iter()
        .filter(|r| matches!(r.op, ChangeOp::TenantOpen))
        .count();
    let closes = records
        .iter()
        .filter(|r| matches!(r.op, ChangeOp::TenantClose))
        .count();
    assert_eq!((opens, closes), (1, 1), "tenant open/close not bracketed");
    let commits = records
        .iter()
        .filter(|r| matches!(r.op, ChangeOp::Commit { .. }))
        .count();
    assert!(
        commits >= 3 + committed_mid_churn.load(Ordering::Relaxed),
        "journal is missing commits: {commits} recorded"
    );
    wal::audit_log(&records).expect("sealed history is collision-free");
    assert!(ReplayState::from_records(&records).tenants.is_empty());
}

/// The changeset log subsumes `ReproBundle`: the pinned seed-104 fixture
/// still replays directly, and a bundle derived from a journaled log
/// slice replays the same way (same request stream, same audit verdict).
#[test]
fn seed_104_bundle_replays_directly_and_from_a_log_slice() {
    let bundle = ReproBundle::from_json(include_str!("../../srp/tests/fixtures/seed_104.json"))
        .expect("fixture parses");

    // Direct replay: plan every request in order, audit every commit —
    // the historical conflict stays fixed.
    let replay = |layout_cfg: LayoutConfig, requests: &[Request]| -> usize {
        let layout = layout_cfg.generate();
        let mut planner = carp_srp::SrpPlanner::new(layout.matrix, carp_srp::SrpConfig::default());
        let mut auditor = IncrementalAuditor::new();
        let mut planned = 0usize;
        for req in requests {
            if let PlanOutcome::Planned(route) = planner.plan(req) {
                auditor
                    .commit(req.id, &route)
                    .expect("replayed commit is collision-free");
                planned += 1;
            }
        }
        planned
    };
    let direct = replay(bundle.layout.clone(), &bundle.requests);
    assert!(direct > 0, "fixture replay planned nothing");

    // Log-slice conversion: journal the same day, derive a bundle from
    // the log, and replay that — identical request stream, same verdict.
    let scratch = ScratchLog::new();
    {
        let journal = WalJournal::create(&scratch.0).expect("create journal");
        let layout = bundle.layout.generate();
        let mut planner = carp_srp::SrpPlanner::new(layout.matrix, carp_srp::SrpConfig::default());
        let tj = carp_service::wal::TenantJournal::new(journal, "seed-104");
        tj.open();
        for req in &bundle.requests {
            if let PlanOutcome::Planned(route) = planner.plan(req) {
                tj.commit(req, &route);
            }
        }
        tj.close();
    }
    let (records, tail) = read_log(&scratch.0).expect("read journaled day");
    assert_eq!(tail, LogTail::Clean);
    let derived = wal::bundle_from_log(bundle.layout, &records, "seed-104");
    assert_eq!(derived.requests.len(), direct);
    // The derived bundle survives its own serialization format…
    let rejson = ReproBundle::from_json(&derived.to_json()).expect("derived bundle round-trips");
    // …and replays exactly like the original fixture's surviving stream.
    assert_eq!(replay(rejson.layout, &rejson.requests), direct);
}
