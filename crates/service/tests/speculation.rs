//! Conformance suite for the speculative multi-worker commit pipeline:
//! worker count must be *unobservable* in the committed output.
//!
//! The pipeline's contract (DESIGN.md §13) is that N speculative planner
//! workers plus the single validate-and-commit stage produce exactly the
//! serial worker's committed route set — same routes, same digest, zero
//! audited collisions — for any N. These tests pin that equivalence on the
//! acceptance scenario (W-2 at 1× and 4×) and exercise the loser-retry
//! path deterministically on a contention ladder.

use carp_service::loadgen::{run_load, run_load_speculative, LoadScenario};
use carp_service::report::routes_digest;
use carp_service::service::{PlanResponse, PlanningService, ServiceConfig};
use carp_simenv::SimConfig;
use carp_srp::{SrpConfig, SrpPlanner};
use carp_warehouse::layout::{Layout, WarehousePreset};
use carp_warehouse::planner::{PlanOutcome, Planner, SpeculativePlanner};
use carp_warehouse::request::{QueryKind, Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::types::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex};

fn srp(layout: &Layout) -> SrpPlanner {
    SrpPlanner::new(layout.matrix.clone(), SrpConfig::default())
}

fn cfg(workers: usize) -> ServiceConfig {
    ServiceConfig {
        deadline: None, // bit-determinism requires wall-clock-free refusals
        workers,
        ..ServiceConfig::default()
    }
}

/// The conformance property on the acceptance scenario: workers ∈ {1,2,8}
/// × W-2 at 1× and 4× all produce the identical `routes_digest`, audit
/// clean, and complete every task.
#[test]
fn w2_digest_is_identical_across_worker_counts() {
    let layout = WarehousePreset::W2.generate();
    let sim = SimConfig::default();
    for rate in [1.0, 4.0] {
        let scenario =
            |r: f64| LoadScenario::new(format!("W-2@{r}x"), layout.clone(), 60, 600, r, 104);
        let (serial, _) = run_load(&scenario(rate), srp(&layout), sim.clone(), cfg(1));
        assert_eq!(serial.audit_conflicts, 0, "serial W-2@{rate}x audited");
        assert_eq!(serial.completed, 60);
        for workers in [2, 8] {
            let (spec, _) =
                run_load_speculative(&scenario(rate), srp(&layout), sim.clone(), cfg(workers));
            assert_eq!(
                spec.audit_conflicts, 0,
                "W-2@{rate}x workers={workers} audited a collision"
            );
            assert_eq!(spec.completed, 60, "W-2@{rate}x workers={workers}");
            assert_eq!(
                spec.routes_digest, serial.routes_digest,
                "worker count {workers} observable in W-2@{rate}x digest"
            );
            assert_eq!(spec.service.planned, serial.service.planned);
            assert_eq!(spec.makespan, serial.makespan);
            assert!(
                spec.service.speculation_wins > 0,
                "pipeline never engaged at workers={workers}"
            );
            assert_eq!(spec.service.workers, workers);
        }
    }
}

/// Speculative test double for the contention ladder: a route claims the
/// first unoccupied column of its origin's row, so requests sharing an
/// origin contend for the same cell. The optional gate makes the first
/// `need` `plan_candidate` calls rendezvous, guaranteeing the opening rung
/// is planned concurrently at the same epoch — a deterministic conflict.
#[derive(Clone)]
struct FirstFreeCol {
    occupied: HashSet<Cell>,
    gate: Option<Arc<(Mutex<usize>, Condvar)>>,
    need: usize,
}

impl FirstFreeCol {
    fn serial() -> Self {
        FirstFreeCol {
            occupied: HashSet::new(),
            gate: None,
            need: 0,
        }
    }
    fn gated(need: usize) -> Self {
        FirstFreeCol {
            occupied: HashSet::new(),
            gate: Some(Arc::new((Mutex::new(0), Condvar::new()))),
            need,
        }
    }
    fn choose(&self, req: &Request) -> Route {
        let row = req.origin.row;
        let col = (0..u16::MAX)
            .find(|&c| !self.occupied.contains(&Cell::new(row, c)))
            .expect("a free column exists");
        Route::stationary(req.t, Cell::new(row, col))
    }
    fn claim(&mut self, route: &Route) {
        let fresh = self.occupied.insert(route.origin());
        assert!(fresh, "cell claimed twice — double commit");
    }
}

impl Planner for FirstFreeCol {
    fn name(&self) -> &'static str {
        "first-free-col"
    }
    fn plan(&mut self, req: &Request) -> PlanOutcome {
        let route = self.choose(req);
        self.claim(&route);
        PlanOutcome::Planned(route)
    }
    fn cancel(&mut self, _id: RequestId) -> bool {
        false
    }
    fn memory_bytes(&self) -> usize {
        0
    }
}

impl SpeculativePlanner for FirstFreeCol {
    fn fork(&self) -> Self {
        self.clone()
    }
    fn plan_candidate(&mut self, req: &Request) -> Option<Route> {
        if let Some(gate) = &self.gate {
            let (count, cv) = &**gate;
            let mut n = count.lock().unwrap();
            *n += 1;
            cv.notify_all();
            while *n < self.need {
                n = cv.wait(n).unwrap();
            }
        }
        Some(self.choose(req))
    }
    fn adopt(&mut self, _id: RequestId, route: &Route) {
        self.claim(route);
    }
}

fn ladder_requests(rungs: u16, width: u16) -> Vec<Request> {
    // Rung r: `width` requests sharing origin (r, 0) at time r — all of
    // them contend for the same first-free cell.
    let mut reqs = Vec::new();
    let mut id: RequestId = 0;
    for r in 0..rungs {
        for _ in 0..width {
            reqs.push(Request::new(
                id,
                r as carp_warehouse::types::Time,
                Cell::new(r, 0),
                Cell::new(r, 10),
                QueryKind::Pickup,
            ));
            id += 1;
        }
    }
    reqs
}

fn run_ladder(
    planner: FirstFreeCol,
    config: ServiceConfig,
    requests: &[Request],
    rung_width: usize,
) -> (HashMap<RequestId, Route>, carp_service::ServiceMetrics) {
    let svc = if config.workers > 1 {
        PlanningService::spawn_speculative(planner, config)
    } else {
        PlanningService::spawn(planner, config)
    };
    let client = svc.client();
    let mut routes = HashMap::new();
    // Submit one rung at a time and resolve it before the next, so every
    // rung's requests are in flight together.
    for rung in requests.chunks(rung_width) {
        let tickets: Vec<_> = rung
            .iter()
            .map(|r| client.submit(*r).expect("queue capacity"))
            .collect();
        for (req, t) in rung.iter().zip(tickets) {
            match t.wait() {
                PlanResponse::Planned(route) => {
                    routes.insert(req.id, route);
                }
                other => panic!("request {} not planned: {other:?}", req.id),
            }
        }
    }
    let metrics = client.metrics();
    svc.shutdown();
    (routes, metrics)
}

/// Contention ladder: every rung's requests share an origin, the gate
/// forces the opening rung to plan concurrently at the same epoch, and the
/// suite asserts (a) the loser retried instead of double-committing and
/// (b) the final assignment matches the serial run cell for cell.
#[test]
fn contention_ladder_losers_retry_without_double_commit() {
    const RUNGS: u16 = 6;
    const WIDTH: usize = 2;
    let requests = ladder_requests(RUNGS, WIDTH as u16);

    let (serial_routes, serial_m) = run_ladder(FirstFreeCol::serial(), cfg(1), &requests, WIDTH);
    assert_eq!(serial_routes.len(), RUNGS as usize * WIDTH);
    assert_eq!(serial_m.speculation_retries, 0, "serial mode never retries");

    let (spec_routes, spec_m) =
        run_ladder(FirstFreeCol::gated(WIDTH), cfg(WIDTH), &requests, WIDTH);
    assert_eq!(
        routes_digest(&spec_routes),
        routes_digest(&serial_routes),
        "speculative ladder diverged from serial assignment"
    );
    assert!(
        spec_m.speculation_retries >= 1,
        "gated rung must produce at least one requeued loser"
    );
    assert_eq!(
        spec_m.planned as usize,
        RUNGS as usize * WIDTH,
        "every request commits exactly once"
    );
    assert_eq!(spec_m.speculation_aborts, 0, "retry budget suffices");
    // No double commit: each rung resolved to `WIDTH` distinct cells (the
    // adopt path asserts freshness inside the planner as well).
    for rung in 0..RUNGS {
        let cells: HashSet<Cell> = spec_routes
            .iter()
            .filter(|(id, _)| **id / WIDTH as u64 == rung as u64)
            .map(|(_, r)| r.origin())
            .collect();
        assert_eq!(cells.len(), WIDTH, "rung {rung} reused a cell");
    }
}
