//! Deterministic load generation: replay warehouse days through the
//! daemon's wire protocol and audit every committed route.
//!
//! The harness regenerates the simulator's three-leg task workflow
//! (pickup → transmission → return, nearest-free-robot assignment, retry
//! on infeasible) but speaks the daemon's **wire protocol** instead of
//! calling the planner — or even the in-process service API — directly:
//! every run registers its tenant(s) in a [`TenantRegistry`], connects a
//! [`WireClient`] over the in-process [`duplex`] transport, and drives the
//! whole day through framed submit/ack/plan-reply/advance traffic. The
//! measured path is the deployed path — queueing, admission control,
//! deadlines, *and* wire encode/decode.
//!
//! Determinism: the request stream is a pure function of (layout, profile,
//! seed, multiplier), and submissions happen in lockstep bursts — all
//! requests sharing a sim-timestamp are submitted in sequence order (each
//! acked synchronously by the ingest reader, which pins admission order),
//! then their replies are collected before the clock moves. With deadlines
//! disabled the committed route set is bit-identical across runs and
//! transports ([`LoadReport::routes_digest`] pins it). With a deadline
//! set, refusals depend on wall-clock speed — that is the point of a
//! deadline — so overload runs trade the bit-determinism guarantee for
//! budget enforcement.
//!
//! Multi-tenancy: [`run_load_multi`] registers several tenants in **one**
//! registry and drives each day on its own connection thread,
//! concurrently. Tenants share nothing but CPU (each has its own queue,
//! worker pool and commit pipeline), so each tenant's digest must equal
//! its single-tenant run's — the conformance property the two-tenant CI
//! smoke gates on.
//!
//! Every committed route is mirrored into an [`IncrementalAuditor`] the
//! moment its reply arrives, and the final route set is re-validated
//! batch-style, exactly like the batch simulator's audit. Route revisions
//! delivered by `advance` are re-audited (cancel, then recommit as one
//! batch); leg chaining keeps the originally planned end times, so the
//! harness is exact for non-revising planners (SRP, SAP, SIPP, ACP) and a
//! close approximation for TWP/RP.

use crate::ingest::{duplex, serve_connection};
use crate::report::LoadReport;
use crate::service::{PlanResponse, ServiceConfig, ServiceMetrics};
use crate::tenant::{TenantRegistry, WireCounters};
use crate::wire::{WireClient, WireSubmitError};
use carp_simenv::SimConfig;
use carp_warehouse::collision::{validate_routes, IncrementalAuditor};
use carp_warehouse::layout::Layout;
use carp_warehouse::planner::{EngineMetrics, Planner, SpeculativePlanner};
use carp_warehouse::request::{QueryKind, Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::tasks::{generate_tasks, DayProfile, Task};
use carp_warehouse::types::{Cell, Time};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// A complete load scenario: the warehouse, the (already rate-compressed)
/// task stream, and the identity of the run. The scenario `name` doubles
/// as the tenant's [`WarehouseId`](crate::tenant::WarehouseId) on the
/// daemon.
#[derive(Clone)]
pub struct LoadScenario {
    /// Scenario label carried into the report ("W-2@4x" …) and used as the
    /// tenant id.
    pub name: String,
    /// The warehouse.
    pub layout: Layout,
    /// Task stream with compressed arrival times, sorted by arrival.
    pub tasks: Vec<Task>,
    /// The arrival-rate multiplier the stream was compressed by.
    pub rate_multiplier: f64,
    /// RNG seed the stream was generated from.
    pub seed: u64,
}

impl LoadScenario {
    /// Build a scenario over `layout`: `num_tasks` tasks drawn from the
    /// standard bimodal day profile over `horizon` seconds with `seed`,
    /// arrivals divided by `rate_multiplier`.
    pub fn new(
        name: impl Into<String>,
        layout: Layout,
        num_tasks: u32,
        horizon: Time,
        rate_multiplier: f64,
        seed: u64,
    ) -> Self {
        assert!(rate_multiplier > 0.0, "rate multiplier must be positive");
        let profile = DayProfile::new(horizon, num_tasks);
        let mut tasks = generate_tasks(&layout, &profile, seed);
        for t in &mut tasks {
            t.arrival = (t.arrival as f64 / rate_multiplier) as Time;
        }
        // Integer truncation preserves order, but re-assert the invariant.
        tasks.sort_by_key(|t| (t.arrival, t.id));
        LoadScenario {
            name: name.into(),
            layout,
            tasks,
            rate_multiplier,
            seed,
        }
    }
}

/// One tenant's slice of a multi-tenant run: its day plus the planner and
/// service configuration serving it.
pub struct TenantLoad<P> {
    /// The tenant's day; `scenario.name` is its warehouse id.
    pub scenario: LoadScenario,
    /// The planner serving this tenant.
    pub planner: P,
    /// Per-tenant service tuning (queue bound, workers, deadline).
    pub service_cfg: ServiceConfig,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// A task emerges: grab the nearest free robot or queue.
    Arrive { task: usize },
    /// Submit one leg's planning request (possibly a retry).
    Leg {
        task: usize,
        robot: usize,
        kind: QueryKind,
        attempt: u32,
    },
    /// The return leg finished: free the robot, serve the waiting queue.
    Complete { robot: usize },
}

struct RobotState {
    pos: Cell,
    busy: bool,
}

/// Raw outcome of one driven day, before it meets the metrics snapshot.
struct RawRun {
    final_routes: HashMap<RequestId, Route>,
    completed: usize,
    failed_requests: usize,
    refused_requests: usize,
    backpressure_retries: u64,
    audit_conflicts: usize,
    makespan: Time,
    wall_secs: f64,
}

/// Everything a driver thread brings home from one tenant's day.
struct DriverOut {
    scenario: LoadScenario,
    raw: RawRun,
    metrics: ServiceMetrics,
    wire: WireCounters,
}

/// Drive `planner` through a full load run of `scenario` on the serial
/// service, over the wire. Returns the report and the planner (recovered
/// from the registry after shutdown) for post-run inspection.
pub fn run_load<P: Planner + Send + 'static>(
    scenario: &LoadScenario,
    planner: P,
    sim: SimConfig,
    service_cfg: ServiceConfig,
) -> (LoadReport, P) {
    let registry = Arc::new(TenantRegistry::new());
    registry.register(scenario.name.clone(), planner, service_cfg);
    let out = drive_tenant(&registry, scenario.clone(), &sim);
    recover::<P>(&registry, out)
}

/// Like [`run_load`], but on the speculative multi-worker commit pipeline
/// (`service_cfg.workers` planner threads; delegates to the serial worker
/// when `workers <= 1`). The request stream, burst cadence, and audit are
/// identical to [`run_load`] — which is the point: with deadlines disabled
/// the committed route set must be bit-identical across worker counts.
pub fn run_load_speculative<P: SpeculativePlanner + Send + 'static>(
    scenario: &LoadScenario,
    planner: P,
    sim: SimConfig,
    service_cfg: ServiceConfig,
) -> (LoadReport, P) {
    let registry = Arc::new(TenantRegistry::new());
    registry.register_speculative(scenario.name.clone(), planner, service_cfg);
    let out = drive_tenant(&registry, scenario.clone(), &sim);
    recover::<P>(&registry, out)
}

/// Serve several tenants from **one** registry concurrently: each tenant's
/// day runs on its own connection + driver thread against the shared
/// daemon. Returns `(report, planner)` per tenant, in input order.
///
/// Tenants are registered on the speculative pipeline (serial when a
/// tenant's `workers <= 1`), so worker pools are per-tenant too.
pub fn run_load_multi<P: SpeculativePlanner + Send + 'static>(
    tenants: Vec<TenantLoad<P>>,
    sim: SimConfig,
) -> Vec<(LoadReport, P)> {
    let registry = Arc::new(TenantRegistry::new());
    let mut scenarios = Vec::with_capacity(tenants.len());
    for t in tenants {
        registry.register_speculative(t.scenario.name.clone(), t.planner, t.service_cfg);
        scenarios.push(t.scenario);
    }
    let handles: Vec<_> = scenarios
        .into_iter()
        .map(|scenario| {
            let registry = Arc::clone(&registry);
            let sim = sim.clone();
            std::thread::Builder::new()
                .name(format!("carp-load-{}", scenario.name))
                .spawn(move || drive_tenant(&registry, scenario, &sim))
                .expect("spawn tenant driver")
        })
        .collect();
    handles
        .into_iter()
        .map(|h| {
            let out = h.join().expect("tenant driver panicked");
            recover::<P>(&registry, out)
        })
        .collect()
}

/// Open one wire connection to the daemon and drive one tenant's whole day
/// over it; fetch the final metrics through the wire before hanging up.
fn drive_tenant(
    registry: &Arc<TenantRegistry>,
    scenario: LoadScenario,
    sim: &SimConfig,
) -> DriverOut {
    let ((client_read, client_write), (server_read, server_write)) = duplex();
    let server_registry = Arc::clone(registry);
    let server = std::thread::Builder::new()
        .name(format!("carp-ingest-{}", scenario.name))
        .spawn(move || serve_connection(&server_registry, server_read, server_write))
        .expect("spawn ingest thread");
    let mut client = WireClient::new(client_read, client_write);
    let raw = drive_wire(&scenario, &mut client, sim);
    let (metrics, wire) = client
        .metrics(&scenario.name)
        .expect("metrics query over the wire");
    drop(client); // closes the pipes: the ingest reader sees clean EOF
    server
        .join()
        .expect("ingest thread panicked")
        .expect("connection ended with a protocol error");
    DriverOut {
        scenario,
        raw,
        metrics,
        wire,
    }
}

/// Shut the tenant down, recover the concrete planner from the registry,
/// and assemble its report.
fn recover<P: Planner + Send + 'static>(
    registry: &TenantRegistry,
    out: DriverOut,
) -> (LoadReport, P) {
    let planner = match registry
        .remove(&out.scenario.name)
        .expect("tenant registered by this run")
        .downcast::<P>()
    {
        Ok(planner) => *planner,
        Err(_) => panic!("tenant planner has the registered type"),
    };
    let engine: Option<EngineMetrics> = planner.engine_metrics();
    let report = LoadReport::build(
        &out.scenario,
        out.scenario.name.clone(),
        &out.raw.final_routes,
        out.metrics,
        out.wire,
        engine,
        out.raw.wall_secs,
        out.raw.completed,
        out.raw.failed_requests,
        out.raw.refused_requests,
        out.raw.backpressure_retries,
        out.raw.audit_conflicts,
        out.raw.makespan,
    );
    (report, planner)
}

/// The shared day-replay event loop, speaking frames through `client`.
fn drive_wire<R: std::io::Read, W: std::io::Write>(
    scenario: &LoadScenario,
    client: &mut WireClient<R, W>,
    sim: &SimConfig,
) -> RawRun {
    let tenant = scenario.name.as_str();
    let mut robots: Vec<RobotState> = scenario
        .layout
        .robot_spawns
        .iter()
        .map(|&pos| RobotState { pos, busy: false })
        .collect();
    assert!(!robots.is_empty(), "layout has no robots");

    // (time, seq) heap with payload map, exactly the simulator's ordering.
    let mut heap: BinaryHeap<core::cmp::Reverse<(Time, u64)>> = BinaryHeap::new();
    let mut payloads: HashMap<u64, Event> = HashMap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<core::cmp::Reverse<(Time, u64)>>,
                payloads: &mut HashMap<u64, Event>,
                seq: &mut u64,
                t: Time,
                e: Event| {
        heap.push(core::cmp::Reverse((t, *seq)));
        payloads.insert(*seq, e);
        *seq += 1;
    };
    for (i, task) in scenario.tasks.iter().enumerate() {
        push(
            &mut heap,
            &mut payloads,
            &mut seq,
            task.arrival,
            Event::Arrive { task: i },
        );
    }

    let mut waiting: VecDeque<usize> = VecDeque::new();
    let mut next_request_id: RequestId = 0;
    let mut final_routes: HashMap<RequestId, Route> = HashMap::new();
    let mut auditor = IncrementalAuditor::new();
    let mut online_conflicts = 0usize;
    let mut completed = 0usize;
    let mut failed_requests = 0usize;
    let mut refused_requests = 0usize;
    let mut makespan: Time = 0;
    let mut backpressure_retries = 0u64;

    let wall_start = Instant::now();
    while let Some(&core::cmp::Reverse((now, _))) = heap.peek() {
        // Clock moved: let the planner retire state (the engine's batched
        // remove_batch path) and deliver revisions before this burst plans.
        let revisions = client.advance(tenant, now).expect("advance over the wire");
        if !revisions.is_empty() {
            // Revisions land as one atomic batch (see sim.rs): cancel every
            // revised route before recommitting any.
            for (rid, _) in &revisions {
                auditor.cancel(*rid);
            }
            for (rid, route) in revisions {
                makespan = makespan.max(route.finish_exclusive());
                if auditor.commit(rid, &route).is_err() {
                    online_conflicts += 1;
                }
                final_routes.insert(rid, route);
            }
        }

        // Drain every event scheduled for `now`, in sequence order, into
        // one submission burst.
        let mut burst: Vec<(RequestId, usize, usize, QueryKind, u32)> = Vec::new();
        while let Some(&core::cmp::Reverse((t, _))) = heap.peek() {
            if t != now {
                break;
            }
            let core::cmp::Reverse((_, id)) = heap.pop().expect("peeked");
            let event = payloads.remove(&id).expect("payload");
            match event {
                Event::Arrive { task } => {
                    match nearest_free_robot(&robots, scenario.tasks[task].rack) {
                        Some(r) => {
                            robots[r].busy = true;
                            push(
                                &mut heap,
                                &mut payloads,
                                &mut seq,
                                now,
                                Event::Leg {
                                    task,
                                    robot: r,
                                    kind: QueryKind::Pickup,
                                    attempt: 0,
                                },
                            );
                        }
                        None => waiting.push_back(task),
                    }
                }
                Event::Complete { robot } => {
                    robots[robot].busy = false;
                    completed += 1;
                    if let Some(next_task) = waiting.pop_front() {
                        if let Some(r) = nearest_free_robot(&robots, scenario.tasks[next_task].rack)
                        {
                            robots[r].busy = true;
                            push(
                                &mut heap,
                                &mut payloads,
                                &mut seq,
                                now,
                                Event::Leg {
                                    task: next_task,
                                    robot: r,
                                    kind: QueryKind::Pickup,
                                    attempt: 0,
                                },
                            );
                        } else {
                            waiting.push_front(next_task);
                        }
                    }
                }
                Event::Leg {
                    task,
                    robot,
                    kind,
                    attempt,
                } => {
                    let t = scenario.tasks[task];
                    let (origin, destination) = match kind {
                        QueryKind::Pickup => (robots[robot].pos, t.rack),
                        QueryKind::Transmission => (t.rack, t.picker),
                        QueryKind::Return => (t.picker, t.rack),
                    };
                    let rid = next_request_id;
                    next_request_id += 1;
                    let request = Request::new(rid, now, origin, destination, kind);
                    // Backpressure: back off for the hinted delay and
                    // resubmit. The retry loop keeps submission order —
                    // there is exactly one submitter per connection and the
                    // ingest reader acks in frame order — so determinism
                    // survives rejection storms.
                    loop {
                        match client.submit(tenant, &request) {
                            Ok(()) => break,
                            Err(WireSubmitError::Backpressure { retry_after, .. }) => {
                                backpressure_retries += 1;
                                std::thread::sleep(retry_after);
                            }
                            Err(e) => unreachable!("submission refused mid-run: {e}"),
                        }
                    }
                    burst.push((rid, task, robot, kind, attempt));
                }
            }
        }

        // Collect the burst's replies in submission order and schedule the
        // follow-up events.
        for (rid, task, robot, kind, attempt) in burst {
            match client.wait_plan(rid).expect("plan reply over the wire") {
                PlanResponse::Planned(route) => {
                    makespan = makespan.max(route.finish_exclusive());
                    let end = route.end_time();
                    if auditor.commit(rid, &route).is_err() {
                        online_conflicts += 1;
                    }
                    final_routes.insert(rid, route);
                    match kind {
                        QueryKind::Pickup => {
                            robots[robot].pos = scenario.tasks[task].rack;
                            push(
                                &mut heap,
                                &mut payloads,
                                &mut seq,
                                end + sim.service_time,
                                Event::Leg {
                                    task,
                                    robot,
                                    kind: QueryKind::Transmission,
                                    attempt: 0,
                                },
                            );
                        }
                        QueryKind::Transmission => {
                            robots[robot].pos = scenario.tasks[task].picker;
                            push(
                                &mut heap,
                                &mut payloads,
                                &mut seq,
                                end + sim.service_time,
                                Event::Leg {
                                    task,
                                    robot,
                                    kind: QueryKind::Return,
                                    attempt: 0,
                                },
                            );
                        }
                        QueryKind::Return => {
                            robots[robot].pos = scenario.tasks[task].rack;
                            push(
                                &mut heap,
                                &mut payloads,
                                &mut seq,
                                end,
                                Event::Complete { robot },
                            );
                        }
                    }
                }
                PlanResponse::ServiceDied => {
                    panic!("service died mid-run (planner worker panic)")
                }
                resp => {
                    // Refusals and infeasibilities share the retry path: the
                    // client backs off retry_delay sim-seconds and tries
                    // again, up to the shared SimConfig budget.
                    if resp.is_refusal() {
                        refused_requests += 1;
                    }
                    if attempt < sim.max_retries {
                        push(
                            &mut heap,
                            &mut payloads,
                            &mut seq,
                            now + sim.retry_delay,
                            Event::Leg {
                                task,
                                robot,
                                kind,
                                attempt: attempt + 1,
                            },
                        );
                    } else {
                        failed_requests += 1;
                        robots[robot].busy = false;
                    }
                }
            }
        }
    }
    let wall_secs = wall_start.elapsed().as_secs_f64();

    // Batch re-validation of the final (post-revision) set, like sim.rs:
    // report whichever of the online and batch counts is worse.
    let routes: Vec<Route> = final_routes.values().cloned().collect();
    let audit_conflicts = match validate_routes(&routes) {
        None => online_conflicts,
        Some(_) => online_conflicts.max(1),
    };

    RawRun {
        final_routes,
        completed,
        failed_requests,
        refused_requests,
        backpressure_retries,
        audit_conflicts,
        makespan,
        wall_secs,
    }
}

fn nearest_free_robot(robots: &[RobotState], target: Cell) -> Option<usize> {
    robots
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.busy)
        .min_by_key(|(_, r)| r.pos.manhattan(target))
        .map(|(i, _)| i)
}
