//! Deterministic load generation: replay warehouse days through the
//! daemon's wire protocol and audit every committed route.
//!
//! The harness regenerates the simulator's three-leg task workflow
//! (pickup → transmission → return, nearest-free-robot assignment, retry
//! on infeasible) but speaks the daemon's **wire protocol** instead of
//! calling the planner — or even the in-process service API — directly:
//! every run registers its tenant(s) in a [`TenantRegistry`], connects a
//! [`WireClient`] over the in-process [`duplex`] transport, and drives the
//! whole day through framed submit/ack/plan-reply/advance traffic. The
//! measured path is the deployed path — queueing, admission control,
//! deadlines, *and* wire encode/decode.
//!
//! Determinism: the request stream is a pure function of (layout, profile,
//! seed, multiplier), and submissions happen in lockstep bursts — all
//! requests sharing a sim-timestamp are submitted in sequence order (each
//! acked synchronously by the ingest reader, which pins admission order),
//! then their replies are collected before the clock moves. With deadlines
//! disabled the committed route set is bit-identical across runs and
//! transports ([`LoadReport::routes_digest`] pins it). With a deadline
//! set, refusals depend on wall-clock speed — that is the point of a
//! deadline — so overload runs trade the bit-determinism guarantee for
//! budget enforcement.
//!
//! Multi-tenancy: [`run_load_multi`] registers several tenants in **one**
//! registry and drives each day on its own connection thread,
//! concurrently. Tenants share nothing but CPU (each has its own queue,
//! worker pool and commit pipeline), so each tenant's digest must equal
//! its single-tenant run's — the conformance property the two-tenant CI
//! smoke gates on.
//!
//! Every committed route is mirrored into an [`IncrementalAuditor`] the
//! moment its reply arrives, and the final route set is re-validated
//! batch-style, exactly like the batch simulator's audit. Route revisions
//! delivered by `advance` are re-audited (cancel, then recommit as one
//! batch); leg chaining keeps the originally planned end times, so the
//! harness is exact for non-revising planners (SRP, SAP, SIPP, ACP) and a
//! close approximation for TWP/RP.

use crate::histogram::LatencySummary;
use crate::ingest::{duplex, serve_connection};
#[cfg(unix)]
use crate::mux::{serve_tcp_mux, MuxConfig, MuxMetrics};
use crate::report::LoadReport;
#[cfg(unix)]
use crate::report::{
    routes_digest, ConnLadderRung, MuxBenchReport, ReplicationBenchReport, BENCH_VERSION,
};
use crate::service::{PlanResponse, ServiceConfig, ServiceMetrics};
use crate::tenant::{TenantRegistry, WireCounters};
use crate::wal::{self, LogTail, WalJournal, WalStats};
use crate::wire::{WireClient, WireSubmitError};
use carp_simenv::SimConfig;
use carp_warehouse::collision::{validate_routes, IncrementalAuditor};
use carp_warehouse::layout::Layout;
use carp_warehouse::planner::{EngineMetrics, Planner, SpeculativePlanner};
use carp_warehouse::request::{QueryKind, Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::tasks::{generate_tasks, DayProfile, Task};
use carp_warehouse::types::{Cell, Time};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// A complete load scenario: the warehouse, the (already rate-compressed)
/// task stream, and the identity of the run. The scenario `name` doubles
/// as the tenant's [`WarehouseId`](crate::tenant::WarehouseId) on the
/// daemon.
#[derive(Clone)]
pub struct LoadScenario {
    /// Scenario label carried into the report ("W-2@4x" …) and used as the
    /// tenant id.
    pub name: String,
    /// The warehouse.
    pub layout: Layout,
    /// Task stream with compressed arrival times, sorted by arrival.
    pub tasks: Vec<Task>,
    /// The arrival-rate multiplier the stream was compressed by.
    pub rate_multiplier: f64,
    /// RNG seed the stream was generated from.
    pub seed: u64,
}

impl LoadScenario {
    /// Build a scenario over `layout`: `num_tasks` tasks drawn from the
    /// standard bimodal day profile over `horizon` seconds with `seed`,
    /// arrivals divided by `rate_multiplier`.
    pub fn new(
        name: impl Into<String>,
        layout: Layout,
        num_tasks: u32,
        horizon: Time,
        rate_multiplier: f64,
        seed: u64,
    ) -> Self {
        assert!(rate_multiplier > 0.0, "rate multiplier must be positive");
        let profile = DayProfile::new(horizon, num_tasks);
        let mut tasks = generate_tasks(&layout, &profile, seed);
        for t in &mut tasks {
            t.arrival = (t.arrival as f64 / rate_multiplier) as Time;
        }
        // Integer truncation preserves order, but re-assert the invariant.
        tasks.sort_by_key(|t| (t.arrival, t.id));
        LoadScenario {
            name: name.into(),
            layout,
            tasks,
            rate_multiplier,
            seed,
        }
    }
}

/// One tenant's slice of a multi-tenant run: its day plus the planner and
/// service configuration serving it.
pub struct TenantLoad<P> {
    /// The tenant's day; `scenario.name` is its warehouse id.
    pub scenario: LoadScenario,
    /// The planner serving this tenant.
    pub planner: P,
    /// Per-tenant service tuning (queue bound, workers, deadline).
    pub service_cfg: ServiceConfig,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// A task emerges: grab the nearest free robot or queue.
    Arrive { task: usize },
    /// Submit one leg's planning request (possibly a retry).
    Leg {
        task: usize,
        robot: usize,
        kind: QueryKind,
        attempt: u32,
    },
    /// The return leg finished: free the robot, serve the waiting queue.
    Complete { robot: usize },
}

struct RobotState {
    pos: Cell,
    busy: bool,
}

/// Raw outcome of one driven day, before it meets the metrics snapshot.
struct RawRun {
    final_routes: HashMap<RequestId, Route>,
    completed: usize,
    failed_requests: usize,
    refused_requests: usize,
    backpressure_retries: u64,
    audit_conflicts: usize,
    makespan: Time,
    wall_secs: f64,
    /// Client-side submit → ack latency of every accepted submission
    /// (per successful attempt; backoff sleeps are not counted).
    ack: LatencySummary,
}

/// Everything a driver thread brings home from one tenant's day.
struct DriverOut {
    scenario: LoadScenario,
    raw: RawRun,
    metrics: ServiceMetrics,
    wire: WireCounters,
}

/// Drive `planner` through a full load run of `scenario` on the serial
/// service, over the wire. Returns the report and the planner (recovered
/// from the registry after shutdown) for post-run inspection.
pub fn run_load<P: Planner + Send + 'static>(
    scenario: &LoadScenario,
    planner: P,
    sim: SimConfig,
    service_cfg: ServiceConfig,
) -> (LoadReport, P) {
    let registry = Arc::new(TenantRegistry::new());
    registry.register(scenario.name.clone(), planner, service_cfg);
    let out = drive_tenant(&registry, scenario.clone(), &sim);
    recover::<P>(&registry, out)
}

/// Like [`run_load`], but on the speculative multi-worker commit pipeline
/// (`service_cfg.workers` planner threads; delegates to the serial worker
/// when `workers <= 1`). The request stream, burst cadence, and audit are
/// identical to [`run_load`] — which is the point: with deadlines disabled
/// the committed route set must be bit-identical across worker counts.
pub fn run_load_speculative<P: SpeculativePlanner + Send + 'static>(
    scenario: &LoadScenario,
    planner: P,
    sim: SimConfig,
    service_cfg: ServiceConfig,
) -> (LoadReport, P) {
    let registry = Arc::new(TenantRegistry::new());
    registry.register_speculative(scenario.name.clone(), planner, service_cfg);
    let out = drive_tenant(&registry, scenario.clone(), &sim);
    recover::<P>(&registry, out)
}

/// Like [`run_load_speculative`], with the registry journaling every
/// commit / cancel / advance into `wal` — the WAL-on leg of the recovery
/// bench. The tenant is drained through
/// [`TenantRegistry::remove`](crate::tenant::TenantRegistry::remove) at
/// the end, so the returned journal is sealed with a `TenantClose` record.
pub fn run_load_journaled<P: SpeculativePlanner + Send + 'static>(
    scenario: &LoadScenario,
    planner: P,
    sim: SimConfig,
    service_cfg: ServiceConfig,
    wal: Arc<WalJournal>,
) -> (LoadReport, P) {
    let registry = Arc::new(TenantRegistry::new());
    registry.attach_journal(wal);
    registry.register_speculative(scenario.name.clone(), planner, service_cfg);
    let out = drive_tenant(&registry, scenario.clone(), &sim);
    recover::<P>(&registry, out)
}

/// Outcome of a kill-primary / standby-takeover day.
#[derive(Debug)]
pub struct RecoveryRun {
    /// Report over the **whole** day — the client-side route mirror spans
    /// both halves, so `report.routes_digest` is directly comparable with
    /// an uninterrupted run's. Service/wire metrics in the report cover
    /// only the standby's half (the primary's died with it; see
    /// [`RecoveryRun::primary_metrics`]).
    pub report: LoadReport,
    /// Sim time of the first burst the standby drove.
    pub killed_at: Time,
    /// Changeset records the standby replayed to rebuild the planner.
    pub records_replayed: usize,
    /// Bytes the standby truncated off the torn tail (0 = clean log).
    pub torn_tail_dropped: u64,
    /// The primary's service metrics, scraped just before the kill.
    pub primary_metrics: ServiceMetrics,
    /// Journal stats at end of day (standby's journal: replayed + appended).
    pub wal_stats: WalStats,
}

/// Drive a day with the WAL on, **kill the primary daemon** at the first
/// burst boundary at or after sim time `kill_at`, and finish the day on a
/// **warm standby** rebuilt purely from the changeset log.
///
/// The kill is deliberately graceless: the client connection is dropped
/// and the primary's registry is abandoned without drain or seal, so the
/// log ends wherever the commit pipeline last appended — exactly the disk
/// image a crash leaves (minus OS buffers, which `fsync_every` bounds).
/// With `torn_tail` set, a half-written record is appended on top to
/// simulate dying mid-`write`; the standby must truncate it and recover.
///
/// The standby replays the log through
/// [`recover_planners`](crate::wal::recover_planners) into a fresh planner
/// from `make_planner`, re-registers the tenant (appending a reopen
/// `TenantOpen` to the same log), and drives the rest of the day. Because
/// a paused [`DayDriver`] has no request in flight and every acked commit
/// was journaled before its reply, the standby's planner state is exactly
/// the primary's at the pause point — so with deadlines disabled the whole
/// day's committed route set is bit-identical to an uninterrupted run's.
pub fn run_load_recovery<P, F>(
    scenario: &LoadScenario,
    mut make_planner: F,
    sim: SimConfig,
    service_cfg: ServiceConfig,
    wal_path: &Path,
    kill_at: Time,
    torn_tail: bool,
) -> (RecoveryRun, P)
where
    P: SpeculativePlanner + Send + 'static,
    F: FnMut() -> P,
{
    // ---- phase 1: the primary, driven to the kill point ----
    let journal = WalJournal::create(wal_path).expect("create changeset log");
    let primary = Arc::new(TenantRegistry::new());
    primary.attach_journal(journal);
    primary.register_speculative(scenario.name.clone(), make_planner(), service_cfg);
    let mut driver = DayDriver::new(scenario);

    let ((client_read, client_write), (server_read, server_write)) = duplex();
    let server_registry = Arc::clone(&primary);
    let server = std::thread::Builder::new()
        .name(format!("carp-primary-{}", scenario.name))
        .spawn(move || serve_connection(&server_registry, server_read, server_write))
        .expect("spawn primary ingest thread");
    let mut client = WireClient::new(client_read, client_write);
    let outcome = driver.drive(scenario, &mut client, &sim, Some(kill_at));
    let killed_at = match outcome {
        DriveOutcome::Paused { at } => at,
        // Day shorter than the kill point: nothing left for the standby,
        // but the takeover path below still runs (and must be a no-op).
        DriveOutcome::Completed => kill_at,
    };
    let (primary_metrics, _) = client
        .metrics(&scenario.name)
        .expect("primary metrics before kill");
    // The kill: hang up and abandon the registry — no drain, no close
    // records, no seal. Worker threads exit as their channels die; the
    // journal Arc dies with them without flushing anything extra.
    drop(client);
    server
        .join()
        .expect("primary ingest thread panicked")
        .expect("primary connection errored");
    drop(primary);

    if torn_tail {
        // A record header promising 64 payload bytes followed by 3: the
        // torn in-flight append of a crash mid-write. Its commit was never
        // acked, so truncating it loses nothing the client observed.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(wal_path)
            .expect("open log for tail corruption");
        f.write_all(&[64, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3])
            .expect("append torn tail");
    }

    // ---- phase 2: the standby, rebuilt from the log alone ----
    let (journal, records, tail) = WalJournal::open_append(wal_path).expect("standby opens log");
    let torn_tail_dropped = match tail {
        LogTail::Torn { dropped_bytes, .. } => dropped_bytes,
        LogTail::Clean => 0,
    };
    let records_replayed = records.len();
    if let Err((tenant, conflict)) = wal::audit_log(&records) {
        panic!("changeset log fails audit for tenant {tenant}: {conflict:?}");
    }
    let (mut planners, _state) = wal::recover_planners(&records, |_| make_planner());
    let planner = planners
        .remove(scenario.name.as_str())
        .unwrap_or_else(&mut make_planner);

    let standby = Arc::new(TenantRegistry::new());
    standby.attach_journal(Arc::clone(&journal));
    standby.register_speculative(scenario.name.clone(), planner, service_cfg);
    let ((client_read, client_write), (server_read, server_write)) = duplex();
    let server_registry = Arc::clone(&standby);
    let server = std::thread::Builder::new()
        .name(format!("carp-standby-{}", scenario.name))
        .spawn(move || serve_connection(&server_registry, server_read, server_write))
        .expect("spawn standby ingest thread");
    let mut client = WireClient::new(client_read, client_write);
    let outcome = driver.drive(scenario, &mut client, &sim, None);
    debug_assert_eq!(outcome, DriveOutcome::Completed);
    let (metrics, wire) = client
        .metrics(&scenario.name)
        .expect("standby metrics over the wire");
    drop(client);
    server
        .join()
        .expect("standby ingest thread panicked")
        .expect("standby connection errored");

    let planner = match standby
        .remove(&scenario.name)
        .expect("standby tenant registered")
        .downcast::<P>()
    {
        Ok(planner) => *planner,
        Err(_) => panic!("standby planner has the registered type"),
    };
    let wal_stats = journal.stats();
    let engine: Option<EngineMetrics> = planner.engine_metrics();
    let raw = driver.finish();
    let report = LoadReport::build(
        scenario,
        scenario.name.clone(),
        &raw.final_routes,
        metrics,
        wire,
        engine,
        raw.wall_secs,
        raw.completed,
        raw.failed_requests,
        raw.refused_requests,
        raw.backpressure_retries,
        raw.audit_conflicts,
        raw.makespan,
    );
    (
        RecoveryRun {
            report,
            killed_at,
            records_replayed,
            torn_tail_dropped,
            primary_metrics,
            wal_stats,
        },
        planner,
    )
}

/// Drive a day over real TCP against the event-loop front-end with a
/// **network standby** tailing the changeset log live, kill the primary at
/// the first burst boundary at or after `kill_at`, and finish the day on
/// the standby — the `BENCH_service_replication.json` producer behind
/// `carp-service --replication`.
///
/// Two legs share the scenario:
///
/// * **baseline** — the same day uninterrupted, in-process; its digest is
///   the conformance reference.
/// * **replicated** — the primary serves over [`serve_tcp_mux`] journaling
///   to `wal_path`; a standby connects over TCP, subscribes with
///   `TailLog(1)`, and mirrors every shipped record into its own journal
///   (`<wal_path>.standby`) as it arrives. At the kill the standby holds a
///   shipped copy of the log, *received entirely over the wire* — the
///   on-disk file is never shared. Takeover: strict audit of the shipped
///   records, epoch bump (fencing any resurrected-primary handle), planner
///   replay, re-listen, and the paused [`DayDriver`] resumes against it.
///
/// The kill is graceful-enough rather than graceless: the reactor's drain
/// flushes the shipping connection, so the standby's copy is the complete
/// appended prefix (the paused driver has nothing in flight; commits
/// resolved during the drain itself would not ship — that residue is what
/// `staleness_records` measures, at the kill signal). Because every acked
/// commit was journaled — and therefore shipped — before its reply, the
/// standby's planner state equals the primary's at the pause point, and
/// with deadlines disabled the whole day's committed route set is
/// bit-identical to the baseline's (`digests_match`, the CI gate).
///
/// The fence is provoked explicitly: a [`TenantJournal`]
/// handle captured under the primary epoch attempts an append after the
/// bump; the journal refuses and counts it (`fenced_appends`).
#[cfg(unix)]
pub fn run_load_replication<P, F>(
    scenario: &LoadScenario,
    mut make_planner: F,
    sim: SimConfig,
    service_cfg: ServiceConfig,
    mux_threads: usize,
    wal_path: &Path,
    kill_at: Time,
) -> ReplicationBenchReport
where
    P: SpeculativePlanner + Send + 'static,
    F: FnMut() -> P,
{
    use crate::wal::record::ChangeRecord;
    use crate::wal::TenantJournal;
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    // ---- leg 1: the uninterrupted baseline, in-process ----
    let (baseline, _planner) =
        run_load_speculative(scenario, make_planner(), sim.clone(), service_cfg);

    // ---- leg 2, phase 1: the primary over TCP, with a live standby ----
    let journal = WalJournal::create(wal_path).expect("create changeset log");
    let registry = Arc::new(TenantRegistry::new());
    registry.attach_journal(Arc::clone(&journal));
    registry.register_speculative(scenario.name.clone(), make_planner(), service_cfg);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let shutdown = Arc::new(AtomicBool::new(false));
    let mux_metrics = Arc::new(MuxMetrics::default());
    let server = {
        let registry = Arc::clone(&registry);
        let shutdown = Arc::clone(&shutdown);
        let metrics = Arc::clone(&mux_metrics);
        let config = MuxConfig {
            threads: mux_threads,
            ..MuxConfig::default()
        };
        std::thread::Builder::new()
            .name("carp-repl-primary".into())
            .spawn(move || serve_tcp_mux(listener, registry, shutdown, config, metrics))
            .expect("spawn primary mux server")
    };

    // The standby: its own TCP connection, its own journal file. It applies
    // chunks as they arrive and publishes the highest sequence applied, so
    // the kill point can measure shipping lag.
    let standby_path = {
        let mut os = wal_path.as_os_str().to_os_string();
        os.push(".standby");
        std::path::PathBuf::from(os)
    };
    let standby_journal = WalJournal::create(&standby_path).expect("create standby log");
    let shipped_seq = Arc::new(AtomicU64::new(0));
    let tailer = {
        let journal = Arc::clone(&standby_journal);
        let shipped_seq = Arc::clone(&shipped_seq);
        std::thread::Builder::new()
            .name("carp-repl-standby".into())
            .spawn(move || -> Vec<ChangeRecord> {
                let stream = TcpStream::connect(addr).expect("standby connects");
                stream.set_nodelay(true).expect("standby nodelay");
                let reader = stream.try_clone().expect("clone standby socket");
                let mut client = WireClient::new(reader, stream);
                client.tail_log(1).expect("subscribe to the changeset log");
                let mut shipped = Vec::new();
                loop {
                    match client.next_log_chunk() {
                        Ok(Some((_epoch, records))) => {
                            for rec in records {
                                if journal.append_record(&rec) {
                                    shipped_seq.store(rec.seq, Ordering::SeqCst);
                                    shipped.push(rec);
                                }
                            }
                        }
                        // Clean EOF: the primary is gone. Takeover time.
                        Ok(None) => return shipped,
                        Err(e) => panic!("standby log tail failed: {e}"),
                    }
                }
            })
            .expect("spawn standby tail thread")
    };

    // Drive the day over TCP until the kill point.
    let stream = TcpStream::connect(addr).expect("driver connects");
    stream.set_nodelay(true).expect("driver nodelay");
    let reader = stream.try_clone().expect("clone driver socket");
    let mut client = WireClient::new(reader, stream);
    let mut driver = DayDriver::new(scenario);
    let outcome = driver.drive(scenario, &mut client, &sim, Some(kill_at));
    let killed_at = match outcome {
        DriveOutcome::Paused { at } => at,
        // Day shorter than the kill point: the takeover below still runs
        // (and must be a no-op hand-off).
        DriveOutcome::Completed => kill_at,
    };
    let (primary_metrics, _) = client
        .metrics(&scenario.name)
        .expect("primary metrics before kill");

    // ---- the kill ----
    // Shipping lag is judged at the kill signal, before the drain flushes
    // anything further.
    let staleness_records = journal
        .last_seq()
        .saturating_sub(shipped_seq.load(Ordering::SeqCst));
    let kill_instant = Instant::now();
    drop(client);
    shutdown.store(true, Ordering::SeqCst);
    server
        .join()
        .expect("primary mux server panicked")
        .expect("primary mux server exits clean");
    let shipped = tailer.join().expect("standby tail thread panicked");
    // Abandon the primary registry without drain or seal — no close
    // records; its worker threads exit as the channels die.
    drop(registry);

    // ---- leg 2, phase 2: takeover on the shipped copy alone ----
    if let Err((tenant, conflict)) = wal::audit_log(&shipped) {
        panic!("shipped changeset log fails audit for tenant {tenant}: {conflict:?}");
    }
    let records_shipped = shipped.len();
    // A handle under the primary's epoch, as a resurrected primary would
    // still hold...
    let stale_handle = TenantJournal::new(Arc::clone(&standby_journal), &scenario.name);
    let takeover_epoch = standby_journal.bump_epoch();
    // ...is fenced the moment the standby bumps: refused and counted,
    // never written.
    stale_handle.advance(killed_at, &[]);
    let (mut planners, _state) = wal::recover_planners(&shipped, |_| make_planner());
    let planner = planners
        .remove(scenario.name.as_str())
        .unwrap_or_else(&mut make_planner);
    let standby_registry = Arc::new(TenantRegistry::new());
    standby_registry.attach_journal(Arc::clone(&standby_journal));
    standby_registry.register_speculative(scenario.name.clone(), planner, service_cfg);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind standby loopback");
    let standby_addr = listener.local_addr().expect("standby local addr");
    let standby_shutdown = Arc::new(AtomicBool::new(false));
    let standby_server = {
        let registry = Arc::clone(&standby_registry);
        let shutdown = Arc::clone(&standby_shutdown);
        let metrics = Arc::clone(&mux_metrics);
        let config = MuxConfig {
            threads: mux_threads,
            ..MuxConfig::default()
        };
        std::thread::Builder::new()
            .name("carp-repl-takeover".into())
            .spawn(move || serve_tcp_mux(listener, registry, shutdown, config, metrics))
            .expect("spawn standby mux server")
    };
    let takeover_ms = kill_instant.elapsed().as_secs_f64() * 1e3;

    // The paused driver resumes against the standby daemon.
    let stream = TcpStream::connect(standby_addr).expect("driver reconnects");
    stream.set_nodelay(true).expect("driver nodelay");
    let reader = stream.try_clone().expect("clone driver socket");
    let mut client = WireClient::new(reader, stream);
    let outcome = driver.drive(scenario, &mut client, &sim, None);
    debug_assert_eq!(outcome, DriveOutcome::Completed);
    let (metrics, wire) = client
        .metrics(&scenario.name)
        .expect("standby metrics over the wire");
    drop(client);
    standby_shutdown.store(true, Ordering::SeqCst);
    standby_server
        .join()
        .expect("standby mux server panicked")
        .expect("standby mux server exits clean");

    let planner = match standby_registry
        .remove(&scenario.name)
        .expect("standby tenant registered")
        .downcast::<P>()
    {
        Ok(planner) => *planner,
        Err(_) => panic!("standby planner has the registered type"),
    };
    let wal_stats = standby_journal.stats();
    let engine: Option<EngineMetrics> = planner.engine_metrics();
    let raw = driver.finish();
    let replicated = LoadReport::build(
        scenario,
        scenario.name.clone(),
        &raw.final_routes,
        metrics,
        wire,
        engine,
        raw.wall_secs,
        raw.completed,
        raw.failed_requests,
        raw.refused_requests,
        raw.backpressure_retries,
        raw.audit_conflicts,
        raw.makespan,
    );
    let digests_match = replicated.routes_digest == baseline.routes_digest;
    ReplicationBenchReport {
        version: BENCH_VERSION,
        scenario: scenario.name.clone(),
        killed_at,
        records_shipped,
        staleness_records,
        takeover_ms,
        takeover_epoch,
        fenced_appends: wal_stats.fenced_appends,
        digests_match,
        baseline,
        replicated,
        primary: primary_metrics,
        wal_stats,
    }
}

/// Serve several tenants from **one** registry concurrently: each tenant's
/// day runs on its own connection + driver thread against the shared
/// daemon. Returns `(report, planner)` per tenant, in input order.
///
/// Tenants are registered on the speculative pipeline (serial when a
/// tenant's `workers <= 1`), so worker pools are per-tenant too.
pub fn run_load_multi<P: SpeculativePlanner + Send + 'static>(
    tenants: Vec<TenantLoad<P>>,
    sim: SimConfig,
) -> Vec<(LoadReport, P)> {
    let registry = Arc::new(TenantRegistry::new());
    let mut scenarios = Vec::with_capacity(tenants.len());
    for t in tenants {
        registry.register_speculative(t.scenario.name.clone(), t.planner, t.service_cfg);
        scenarios.push(t.scenario);
    }
    let handles: Vec<_> = scenarios
        .into_iter()
        .map(|scenario| {
            let registry = Arc::clone(&registry);
            let sim = sim.clone();
            std::thread::Builder::new()
                .name(format!("carp-load-{}", scenario.name))
                .spawn(move || drive_tenant(&registry, scenario, &sim))
                .expect("spawn tenant driver")
        })
        .collect();
    handles
        .into_iter()
        .map(|h| {
            let out = h.join().expect("tenant driver panicked");
            recover::<P>(&registry, out)
        })
        .collect()
}

/// Open one wire connection to the daemon and drive one tenant's whole day
/// over it; fetch the final metrics through the wire before hanging up.
fn drive_tenant(
    registry: &Arc<TenantRegistry>,
    scenario: LoadScenario,
    sim: &SimConfig,
) -> DriverOut {
    let ((client_read, client_write), (server_read, server_write)) = duplex();
    let server_registry = Arc::clone(registry);
    let server = std::thread::Builder::new()
        .name(format!("carp-ingest-{}", scenario.name))
        .spawn(move || serve_connection(&server_registry, server_read, server_write))
        .expect("spawn ingest thread");
    let mut client = WireClient::new(client_read, client_write);
    let raw = drive_wire(&scenario, &mut client, sim);
    let (metrics, wire) = client
        .metrics(&scenario.name)
        .expect("metrics query over the wire");
    drop(client); // closes the pipes: the ingest reader sees clean EOF
    server
        .join()
        .expect("ingest thread panicked")
        .expect("connection ended with a protocol error");
    DriverOut {
        scenario,
        raw,
        metrics,
        wire,
    }
}

/// Shut the tenant down, recover the concrete planner from the registry,
/// and assemble its report.
fn recover<P: Planner + Send + 'static>(
    registry: &TenantRegistry,
    out: DriverOut,
) -> (LoadReport, P) {
    let planner = match registry
        .remove(&out.scenario.name)
        .expect("tenant registered by this run")
        .downcast::<P>()
    {
        Ok(planner) => *planner,
        Err(_) => panic!("tenant planner has the registered type"),
    };
    let engine: Option<EngineMetrics> = planner.engine_metrics();
    let report = LoadReport::build(
        &out.scenario,
        out.scenario.name.clone(),
        &out.raw.final_routes,
        out.metrics,
        out.wire,
        engine,
        out.raw.wall_secs,
        out.raw.completed,
        out.raw.failed_requests,
        out.raw.refused_requests,
        out.raw.backpressure_retries,
        out.raw.audit_conflicts,
        out.raw.makespan,
    );
    (report, planner)
}

/// Where a [`DayDriver::drive`] call stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DriveOutcome {
    /// The event heap drained: the day is over.
    Completed,
    /// A `stop` bound was hit *at a burst boundary* (every submitted
    /// request already has its reply); the day resumes from sim time `at`
    /// on the next [`DayDriver::drive`] call — possibly against a
    /// different daemon.
    Paused {
        /// Sim time of the first undriven burst.
        at: Time,
    },
}

/// The day-replay event loop as a **resumable** value: all client-side
/// state of a driven day (robot fleet, event heap, client auditor mirror,
/// counters) lives here rather than on one function's stack, so a day can
/// be driven partway against one daemon, paused at a burst boundary, and
/// finished against another — the primitive under the kill-primary /
/// standby-takeover recovery runs.
struct DayDriver {
    robots: Vec<RobotState>,
    /// (time, seq) heap with payload map, exactly the simulator's ordering.
    heap: BinaryHeap<core::cmp::Reverse<(Time, u64)>>,
    payloads: HashMap<u64, Event>,
    seq: u64,
    waiting: VecDeque<usize>,
    next_request_id: RequestId,
    final_routes: HashMap<RequestId, Route>,
    auditor: IncrementalAuditor,
    online_conflicts: usize,
    completed: usize,
    failed_requests: usize,
    refused_requests: usize,
    makespan: Time,
    backpressure_retries: u64,
    /// Wall time accumulated across `drive` calls.
    wall_secs: f64,
    /// Submit → ack round-trip of every accepted submission, measured
    /// client-side around the successful attempt (raw µs: the ladder's 2×
    /// latency gate needs exact order statistics, not histogram buckets).
    ack_us: Vec<u64>,
}

impl DayDriver {
    fn new(scenario: &LoadScenario) -> Self {
        let robots: Vec<RobotState> = scenario
            .layout
            .robot_spawns
            .iter()
            .map(|&pos| RobotState { pos, busy: false })
            .collect();
        assert!(!robots.is_empty(), "layout has no robots");
        let mut driver = DayDriver {
            robots,
            heap: BinaryHeap::new(),
            payloads: HashMap::new(),
            seq: 0,
            waiting: VecDeque::new(),
            next_request_id: 0,
            final_routes: HashMap::new(),
            auditor: IncrementalAuditor::new(),
            online_conflicts: 0,
            completed: 0,
            failed_requests: 0,
            refused_requests: 0,
            makespan: 0,
            backpressure_retries: 0,
            wall_secs: 0.0,
            ack_us: Vec::new(),
        };
        for (i, task) in scenario.tasks.iter().enumerate() {
            driver.push(task.arrival, Event::Arrive { task: i });
        }
        driver
    }

    fn push(&mut self, t: Time, e: Event) {
        self.heap.push(core::cmp::Reverse((t, self.seq)));
        self.payloads.insert(self.seq, e);
        self.seq += 1;
    }

    /// Drive bursts through `client` until the heap drains or the next
    /// burst's sim time reaches `stop`. Stopping happens *between* bursts,
    /// so a paused driver has no request in flight: every submission has
    /// been acked and its plan reply collected, which is exactly the
    /// prefix a standby can reconstruct from the changeset log.
    fn drive<R: std::io::Read, W: std::io::Write>(
        &mut self,
        scenario: &LoadScenario,
        client: &mut WireClient<R, W>,
        sim: &SimConfig,
        stop: Option<Time>,
    ) -> DriveOutcome {
        let tenant = scenario.name.as_str();
        let wall_start = Instant::now();
        while let Some(&core::cmp::Reverse((now, _))) = self.heap.peek() {
            if let Some(bound) = stop {
                if now >= bound {
                    self.wall_secs += wall_start.elapsed().as_secs_f64();
                    return DriveOutcome::Paused { at: now };
                }
            }
            // Clock moved: let the planner retire state (the engine's
            // batched remove_batch path) and deliver revisions before this
            // burst plans.
            let revisions = client.advance(tenant, now).expect("advance over the wire");
            if !revisions.is_empty() {
                // Revisions land as one atomic batch (see sim.rs): cancel
                // every revised route before recommitting any.
                for (rid, _) in &revisions {
                    self.auditor.cancel(*rid);
                }
                for (rid, route) in revisions {
                    self.makespan = self.makespan.max(route.finish_exclusive());
                    if self.auditor.commit(rid, &route).is_err() {
                        self.online_conflicts += 1;
                    }
                    self.final_routes.insert(rid, route);
                }
            }

            // Drain every event scheduled for `now`, in sequence order,
            // into one submission burst.
            let mut burst: Vec<(RequestId, usize, usize, QueryKind, u32)> = Vec::new();
            while let Some(&core::cmp::Reverse((t, _))) = self.heap.peek() {
                if t != now {
                    break;
                }
                let core::cmp::Reverse((_, id)) = self.heap.pop().expect("peeked");
                let event = self.payloads.remove(&id).expect("payload");
                match event {
                    Event::Arrive { task } => {
                        match nearest_free_robot(&self.robots, scenario.tasks[task].rack) {
                            Some(r) => {
                                self.robots[r].busy = true;
                                self.push(
                                    now,
                                    Event::Leg {
                                        task,
                                        robot: r,
                                        kind: QueryKind::Pickup,
                                        attempt: 0,
                                    },
                                );
                            }
                            None => self.waiting.push_back(task),
                        }
                    }
                    Event::Complete { robot } => {
                        self.robots[robot].busy = false;
                        self.completed += 1;
                        if let Some(next_task) = self.waiting.pop_front() {
                            if let Some(r) =
                                nearest_free_robot(&self.robots, scenario.tasks[next_task].rack)
                            {
                                self.robots[r].busy = true;
                                self.push(
                                    now,
                                    Event::Leg {
                                        task: next_task,
                                        robot: r,
                                        kind: QueryKind::Pickup,
                                        attempt: 0,
                                    },
                                );
                            } else {
                                self.waiting.push_front(next_task);
                            }
                        }
                    }
                    Event::Leg {
                        task,
                        robot,
                        kind,
                        attempt,
                    } => {
                        let t = scenario.tasks[task];
                        let (origin, destination) = match kind {
                            QueryKind::Pickup => (self.robots[robot].pos, t.rack),
                            QueryKind::Transmission => (t.rack, t.picker),
                            QueryKind::Return => (t.picker, t.rack),
                        };
                        let rid = self.next_request_id;
                        self.next_request_id += 1;
                        let request = Request::new(rid, now, origin, destination, kind);
                        // Backpressure and throttling: back off for the
                        // hinted delay and resubmit. The retry loop keeps
                        // submission order — there is exactly one submitter
                        // per connection and the ingest reader acks in
                        // frame order — so determinism survives rejection
                        // storms.
                        loop {
                            let attempt_start = Instant::now();
                            match client.submit(tenant, &request) {
                                Ok(()) => {
                                    self.ack_us.push(attempt_start.elapsed().as_micros() as u64);
                                    break;
                                }
                                Err(WireSubmitError::Backpressure { retry_after, .. })
                                | Err(WireSubmitError::Throttled { retry_after }) => {
                                    self.backpressure_retries += 1;
                                    std::thread::sleep(retry_after);
                                }
                                Err(e) => unreachable!("submission refused mid-run: {e}"),
                            }
                        }
                        burst.push((rid, task, robot, kind, attempt));
                    }
                }
            }

            // Collect the burst's replies in submission order and schedule
            // the follow-up events.
            for (rid, task, robot, kind, attempt) in burst {
                match client.wait_plan(rid).expect("plan reply over the wire") {
                    PlanResponse::Planned(route) => {
                        self.makespan = self.makespan.max(route.finish_exclusive());
                        let end = route.end_time();
                        if self.auditor.commit(rid, &route).is_err() {
                            self.online_conflicts += 1;
                        }
                        self.final_routes.insert(rid, route);
                        match kind {
                            QueryKind::Pickup => {
                                self.robots[robot].pos = scenario.tasks[task].rack;
                                self.push(
                                    end + sim.service_time,
                                    Event::Leg {
                                        task,
                                        robot,
                                        kind: QueryKind::Transmission,
                                        attempt: 0,
                                    },
                                );
                            }
                            QueryKind::Transmission => {
                                self.robots[robot].pos = scenario.tasks[task].picker;
                                self.push(
                                    end + sim.service_time,
                                    Event::Leg {
                                        task,
                                        robot,
                                        kind: QueryKind::Return,
                                        attempt: 0,
                                    },
                                );
                            }
                            QueryKind::Return => {
                                self.robots[robot].pos = scenario.tasks[task].rack;
                                self.push(end, Event::Complete { robot });
                            }
                        }
                    }
                    PlanResponse::ServiceDied => {
                        panic!("service died mid-run (planner worker panic)")
                    }
                    resp => {
                        // Refusals and infeasibilities share the retry
                        // path: the client backs off retry_delay
                        // sim-seconds and tries again, up to the shared
                        // SimConfig budget.
                        if resp.is_refusal() {
                            self.refused_requests += 1;
                        }
                        if attempt < sim.max_retries {
                            self.push(
                                now + sim.retry_delay,
                                Event::Leg {
                                    task,
                                    robot,
                                    kind,
                                    attempt: attempt + 1,
                                },
                            );
                        } else {
                            self.failed_requests += 1;
                            self.robots[robot].busy = false;
                        }
                    }
                }
            }
        }
        self.wall_secs += wall_start.elapsed().as_secs_f64();
        DriveOutcome::Completed
    }

    /// Close the books on a (fully driven) day: batch re-validation of the
    /// final (post-revision) set, like sim.rs — report whichever of the
    /// online and batch counts is worse.
    fn finish(mut self) -> RawRun {
        let ack = LatencySummary::from_samples_us(&mut self.ack_us);
        let routes: Vec<Route> = self.final_routes.values().cloned().collect();
        let audit_conflicts = match validate_routes(&routes) {
            None => self.online_conflicts,
            Some(_) => self.online_conflicts.max(1),
        };
        RawRun {
            final_routes: self.final_routes,
            completed: self.completed,
            failed_requests: self.failed_requests,
            refused_requests: self.refused_requests,
            backpressure_retries: self.backpressure_retries,
            audit_conflicts,
            makespan: self.makespan,
            wall_secs: self.wall_secs,
            ack,
        }
    }
}

/// The shared day-replay event loop, speaking frames through `client`.
fn drive_wire<R: std::io::Read, W: std::io::Write>(
    scenario: &LoadScenario,
    client: &mut WireClient<R, W>,
    sim: &SimConfig,
) -> RawRun {
    let mut driver = DayDriver::new(scenario);
    let outcome = driver.drive(scenario, client, sim, None);
    debug_assert_eq!(outcome, DriveOutcome::Completed);
    driver.finish()
}

fn nearest_free_robot(robots: &[RobotState], target: Cell) -> Option<usize> {
    robots
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.busy)
        .min_by_key(|(_, r)| r.pos.manhattan(target))
        .map(|(i, _)| i)
}

// ---------------------------------------------------------------------------
// Connection ladder over the event-loop front-end (unix only, like the mux).
// ---------------------------------------------------------------------------

/// Replay the scenario's day through the **event-loop front-end**
/// ([`serve_tcp_mux`]) while a rising ladder of churn connections holds the
/// reactors busy — the `BENCH_service_mux.json` producer behind
/// `carp-service --connections`.
///
/// Every entry in `connections` is one rung: the *total* number of sockets
/// held open while the measured tenant's day runs (1 driver + n−1 churn).
/// A 1-connection rung is always prepended as the latency baseline
/// ([`MuxBenchReport::worst_driver_p99_ratio`] is relative to it). Per
/// rung, a fresh registry gets two tenants:
///
/// * the **measured tenant** (`scenario.name`) — its whole day is driven
///   over one TCP connection by the same [`DayDriver`] the blocking-path
///   benches use, recording client-side submit → ack latency;
/// * a **churn tenant** (`{name}#churn`, its own queue and worker pool) —
///   hammered with submit → plan → cancel cycles by a handful of client
///   threads that each own a slice of the churn sockets, all opened before
///   the day starts and held open until it ends.
///
/// The conformance gate: the measured tenant's committed route set must be
/// bit-identical to the same day driven through the legacy blocking
/// thread-per-connection path ([`run_load_speculative`]), at every rung —
/// per-tenant isolation plus per-connection admission order make fan-in
/// invisible to the digest. `digests_match` reports the conjunction.
#[cfg(unix)]
pub fn run_connection_ladder<P, F>(
    scenario: &LoadScenario,
    mut make_planner: F,
    sim: SimConfig,
    service_cfg: ServiceConfig,
    mux_threads: usize,
    connections: &[usize],
) -> MuxBenchReport
where
    P: SpeculativePlanner + Send + 'static,
    F: FnMut() -> P,
{
    // The conformance reference: the identical day over the legacy
    // blocking path, in-process.
    let (baseline, _planner) =
        run_load_speculative(scenario, make_planner(), sim.clone(), service_cfg);
    let baseline_digest = baseline.routes_digest;

    let mut ladder: Vec<usize> = vec![1];
    ladder.extend(connections.iter().copied().filter(|&n| n > 1));
    ladder.dedup();

    let mut rungs = Vec::with_capacity(ladder.len());
    let mut digests_match = true;
    for &total in &ladder {
        // A single run's p99 is one scheduler hiccup away from either
        // tail — on both sides of the ratio: run every rung three times
        // and keep the median-p99 run, so the reported ratio reflects
        // fan-in cost rather than which rung got lucky. Every repetition
        // still gates the digest.
        let mut candidates: Vec<ConnLadderRung> = (0..3)
            .map(|_| {
                let rung = ladder_rung(
                    scenario,
                    &mut make_planner,
                    &sim,
                    &service_cfg,
                    mux_threads,
                    total,
                );
                digests_match &= rung.routes_digest == baseline_digest;
                rung
            })
            .collect();
        candidates.sort_by_key(|r| r.driver_ack.p99_us);
        rungs.push(candidates.swap_remove(candidates.len() / 2));
    }
    MuxBenchReport {
        version: BENCH_VERSION,
        scenario: scenario.name.clone(),
        mux_threads,
        baseline_digest,
        digests_match,
        rungs,
    }
}

/// One rung: fresh registry + mux server, `total_conns - 1` churn sockets
/// opened and cycling before the measured day starts on its own socket.
#[cfg(unix)]
fn ladder_rung<P, F>(
    scenario: &LoadScenario,
    make_planner: &mut F,
    sim: &SimConfig,
    service_cfg: &ServiceConfig,
    mux_threads: usize,
    total_conns: usize,
) -> ConnLadderRung
where
    P: SpeculativePlanner + Send + 'static,
    F: FnMut() -> P,
{
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Barrier;

    let churn_conns = total_conns.saturating_sub(1);
    let churn_id = format!("{}#churn", scenario.name);

    let registry = Arc::new(TenantRegistry::new());
    registry.register_speculative(scenario.name.clone(), make_planner(), *service_cfg);
    if churn_conns > 0 {
        registry.register_speculative(churn_id.clone(), make_planner(), *service_cfg);
    }

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let shutdown = Arc::new(AtomicBool::new(false));
    let metrics = Arc::new(MuxMetrics::default());
    let server = {
        let registry = Arc::clone(&registry);
        let shutdown = Arc::clone(&shutdown);
        let metrics = Arc::clone(&metrics);
        let config = MuxConfig {
            threads: mux_threads,
            ..MuxConfig::default()
        };
        std::thread::Builder::new()
            .name("carp-mux-ladder".into())
            .spawn(move || serve_tcp_mux(listener, registry, shutdown, config, metrics))
            .expect("spawn mux server")
    };

    // Churn fan-in: a handful of client threads, each owning a slice of the
    // open sockets. The barrier guarantees every churn socket is connected
    // (registered with a reactor) before the measured day starts.
    let stop = Arc::new(AtomicBool::new(false));
    let threads = churn_conns.min(4);
    let ready = Arc::new(Barrier::new(threads + 1));
    let targets = Arc::new(churn_targets(scenario));
    let mut workers = Vec::with_capacity(threads);
    let mut next = 0usize;
    for t in 0..threads {
        let share = churn_conns / threads + usize::from(t < churn_conns % threads);
        let conns = next..next + share;
        next += share;
        let tenant = churn_id.clone();
        let targets = Arc::clone(&targets);
        let stop = Arc::clone(&stop);
        let ready = Arc::clone(&ready);
        workers.push(
            std::thread::Builder::new()
                .name(format!("carp-churn-{t}"))
                .spawn(move || churn_worker(addr, &tenant, &targets, conns, &stop, &ready))
                .expect("spawn churn worker"),
        );
    }
    ready.wait();

    // The measured tenant's whole day, over one connection.
    let stream = TcpStream::connect(addr).expect("driver connects");
    stream.set_nodelay(true).expect("driver nodelay");
    let reader = stream.try_clone().expect("clone driver socket");
    let mut client = WireClient::new(reader, stream);
    let mut driver = DayDriver::new(scenario);
    let outcome = driver.drive(scenario, &mut client, sim, None);
    debug_assert_eq!(outcome, DriveOutcome::Completed);
    drop(client);
    let raw = driver.finish();

    stop.store(true, Ordering::SeqCst);
    let mut churn_us: Vec<u64> = Vec::new();
    for w in workers {
        churn_us.extend(w.join().expect("churn worker panicked"));
    }
    let churn_requests = churn_us.len() as u64;
    let churn_ack = LatencySummary::from_samples_us(&mut churn_us);

    shutdown.store(true, Ordering::SeqCst);
    server
        .join()
        .expect("mux server thread panicked")
        .expect("mux server exits clean");
    registry.drain_all();

    ConnLadderRung {
        connections: total_conns,
        churn_connections: churn_conns,
        driver_ack: raw.ack,
        churn_ack,
        churn_requests,
        routes_digest: routes_digest(&raw.final_routes),
        audit_conflicts: raw.audit_conflicts,
        wall_secs: raw.wall_secs,
        mux: metrics.snapshot(),
    }
}

/// Origin/destination pairs for churn traffic, sampled from the scenario's
/// own layout so every churn request is plannable.
#[cfg(unix)]
fn churn_targets(scenario: &LoadScenario) -> Vec<(Cell, Cell)> {
    let spawns = &scenario.layout.robot_spawns;
    let mut targets: Vec<(Cell, Cell)> = scenario
        .tasks
        .iter()
        .take(32)
        .enumerate()
        .map(|(i, task)| (spawns[i % spawns.len()], task.rack))
        .collect();
    if targets.is_empty() {
        targets.push((spawns[0], spawns[spawns.len() - 1]));
    }
    targets
}

/// One churn thread: open every socket in `conns`, wait at the barrier,
/// then cycle submit → plan → cancel on each until `stop`. Request ids are
/// disjoint per connection (and live on the churn tenant, so they never
/// collide with the measured day). Returns the raw client-side submit →
/// ack samples, in microseconds, one per accepted submission.
#[cfg(unix)]
fn churn_worker(
    addr: std::net::SocketAddr,
    tenant: &str,
    targets: &[(Cell, Cell)],
    conns: std::ops::Range<usize>,
    stop: &std::sync::atomic::AtomicBool,
    ready: &std::sync::Barrier,
) -> Vec<u64> {
    use std::net::TcpStream;
    use std::sync::atomic::Ordering;

    let mut clients: Vec<(usize, WireClient<TcpStream, TcpStream>, u64)> = conns
        .map(|idx| {
            let stream = TcpStream::connect(addr).expect("churn connect");
            stream.set_nodelay(true).expect("churn nodelay");
            let reader = stream.try_clone().expect("clone churn socket");
            (idx, WireClient::new(reader, stream), 0u64)
        })
        .collect();
    ready.wait();

    // Cycle a small rotating batch per sweep rather than every socket:
    // the ladder's claim is *open sockets multiplexed on few threads*, so
    // every connection stays registered and sees traffic over the day,
    // while the instantaneous request rate stays low enough that churn
    // does not saturate the host (CI runners may have one core — churn at
    // full tilt would measure scheduler queueing, not the reactor).
    let mut samples = Vec::new();
    let mut cursor = 0usize;
    'churn: loop {
        let batch = clients.len().min(2);
        for _ in 0..batch {
            let slot = cursor % clients.len();
            cursor += 1;
            let (idx, client, k) = &mut clients[slot];
            if stop.load(Ordering::SeqCst) {
                break 'churn;
            }
            // Disjoint id space per connection; a churn socket cannot run
            // a million cycles in one day.
            let rid = (*idx as u64) * 1_000_000 + *k;
            let (origin, destination) = targets[(*idx + *k as usize) % targets.len()];
            let request = Request::new(rid, *k as Time, origin, destination, QueryKind::Pickup);
            loop {
                let attempt_start = Instant::now();
                match client.submit(tenant, &request) {
                    Ok(()) => {
                        samples.push(attempt_start.elapsed().as_micros() as u64);
                        break;
                    }
                    Err(WireSubmitError::Backpressure { retry_after, .. })
                    | Err(WireSubmitError::Throttled { retry_after }) => {
                        std::thread::sleep(retry_after)
                    }
                    Err(e) => panic!("churn submission refused: {e}"),
                }
            }
            *k += 1;
            if let PlanResponse::Planned(_) = client.wait_plan(rid).expect("churn plan reply") {
                client.cancel(tenant, rid).expect("churn cancel");
            }
        }
        // Pace the sweep: the ladder measures open-socket fan-in, not
        // planner saturation — churn keeps every socket hot without
        // monopolizing the reactors the measured tenant shares.
        std::thread::sleep(std::time::Duration::from_millis(12));
    }
    samples
}
