//! Deterministic load generation: replay a warehouse day through the
//! service and audit every committed route.
//!
//! The harness regenerates the simulator's three-leg task workflow
//! (pickup → transmission → return, nearest-free-robot assignment, retry
//! on infeasible) but drives the [`PlanningService`] API instead of
//! calling the planner directly, so queueing, admission control and
//! deadlines are on the measured path. Arrival times come from the same
//! bimodal [`DayProfile`] the batch simulator uses, divided by a
//! configurable **rate multiplier** — 4× compresses the day to a quarter
//! of its span, quadrupling the arrival rate without changing the task
//! set.
//!
//! Determinism: the request stream is a pure function of (layout, profile,
//! seed, multiplier), and submissions happen in lockstep bursts — all
//! requests sharing a sim-timestamp are submitted in sequence order, then
//! their replies are collected before the clock moves. The worker answers
//! strictly FIFO, so with deadlines disabled the committed route set is
//! bit-identical across runs ([`LoadReport::routes_digest`] pins it).
//! With a deadline set, refusals depend on wall-clock speed — that is the
//! point of a deadline — so overload runs trade the bit-determinism
//! guarantee for budget enforcement.
//!
//! Every committed route is mirrored into an [`IncrementalAuditor`] the
//! moment its ticket resolves, and the final route set is re-validated
//! batch-style, exactly like the batch simulator's audit. Route revisions
//! delivered by `advance` are re-audited (cancel, then recommit as one
//! batch); leg chaining keeps the originally planned end times, so the
//! harness is exact for non-revising planners (SRP, SAP, SIPP, ACP) and a
//! close approximation for TWP/RP.

use crate::report::LoadReport;
use crate::service::{PlanResponse, PlanningService, ServiceConfig, SubmitError};
use carp_simenv::SimConfig;
use carp_warehouse::collision::{validate_routes, IncrementalAuditor};
use carp_warehouse::layout::Layout;
use carp_warehouse::planner::{Planner, SpeculativePlanner};
use carp_warehouse::request::{QueryKind, Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::tasks::{generate_tasks, DayProfile, Task};
use carp_warehouse::types::{Cell, Time};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::time::Instant;

/// A complete load scenario: the warehouse, the (already rate-compressed)
/// task stream, and the identity of the run.
pub struct LoadScenario {
    /// Scenario label carried into the report ("W-2@4x" …).
    pub name: String,
    /// The warehouse.
    pub layout: Layout,
    /// Task stream with compressed arrival times, sorted by arrival.
    pub tasks: Vec<Task>,
    /// The arrival-rate multiplier the stream was compressed by.
    pub rate_multiplier: f64,
    /// RNG seed the stream was generated from.
    pub seed: u64,
}

impl LoadScenario {
    /// Build a scenario over `layout`: `num_tasks` tasks drawn from the
    /// standard bimodal day profile over `horizon` seconds with `seed`,
    /// arrivals divided by `rate_multiplier`.
    pub fn new(
        name: impl Into<String>,
        layout: Layout,
        num_tasks: u32,
        horizon: Time,
        rate_multiplier: f64,
        seed: u64,
    ) -> Self {
        assert!(rate_multiplier > 0.0, "rate multiplier must be positive");
        let profile = DayProfile::new(horizon, num_tasks);
        let mut tasks = generate_tasks(&layout, &profile, seed);
        for t in &mut tasks {
            t.arrival = (t.arrival as f64 / rate_multiplier) as Time;
        }
        // Integer truncation preserves order, but re-assert the invariant.
        tasks.sort_by_key(|t| (t.arrival, t.id));
        LoadScenario {
            name: name.into(),
            layout,
            tasks,
            rate_multiplier,
            seed,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// A task emerges: grab the nearest free robot or queue.
    Arrive { task: usize },
    /// Submit one leg's planning request (possibly a retry).
    Leg {
        task: usize,
        robot: usize,
        kind: QueryKind,
        attempt: u32,
    },
    /// The return leg finished: free the robot, serve the waiting queue.
    Complete { robot: usize },
}

struct RobotState {
    pos: Cell,
    busy: bool,
}

/// Drive `planner` through a full load run of `scenario` on the serial
/// service. Returns the report and the planner (recovered from the
/// service worker) for post-run inspection.
pub fn run_load<P: Planner + Send + 'static>(
    scenario: &LoadScenario,
    planner: P,
    sim: SimConfig,
    service_cfg: ServiceConfig,
) -> (LoadReport, P) {
    drive(scenario, PlanningService::spawn(planner, service_cfg), sim)
}

/// Like [`run_load`], but on the speculative multi-worker commit pipeline
/// (`service_cfg.workers` planner threads; delegates to the serial worker
/// when `workers <= 1`). The request stream, burst cadence, and audit are
/// identical to [`run_load`] — which is the point: with deadlines disabled
/// the committed route set must be bit-identical across worker counts.
pub fn run_load_speculative<P: SpeculativePlanner + Send + 'static>(
    scenario: &LoadScenario,
    planner: P,
    sim: SimConfig,
    service_cfg: ServiceConfig,
) -> (LoadReport, P) {
    drive(
        scenario,
        PlanningService::spawn_speculative(planner, service_cfg),
        sim,
    )
}

/// The shared day-replay harness behind both entry points.
fn drive<P: Planner + Send + 'static>(
    scenario: &LoadScenario,
    svc: PlanningService<P>,
    sim: SimConfig,
) -> (LoadReport, P) {
    let client = svc.client();

    let mut robots: Vec<RobotState> = scenario
        .layout
        .robot_spawns
        .iter()
        .map(|&pos| RobotState { pos, busy: false })
        .collect();
    assert!(!robots.is_empty(), "layout has no robots");

    // (time, seq) heap with payload map, exactly the simulator's ordering.
    let mut heap: BinaryHeap<core::cmp::Reverse<(Time, u64)>> = BinaryHeap::new();
    let mut payloads: HashMap<u64, Event> = HashMap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<core::cmp::Reverse<(Time, u64)>>,
                payloads: &mut HashMap<u64, Event>,
                seq: &mut u64,
                t: Time,
                e: Event| {
        heap.push(core::cmp::Reverse((t, *seq)));
        payloads.insert(*seq, e);
        *seq += 1;
    };
    for (i, task) in scenario.tasks.iter().enumerate() {
        push(
            &mut heap,
            &mut payloads,
            &mut seq,
            task.arrival,
            Event::Arrive { task: i },
        );
    }

    let mut waiting: VecDeque<usize> = VecDeque::new();
    let mut next_request_id: RequestId = 0;
    let mut final_routes: HashMap<RequestId, Route> = HashMap::new();
    let mut auditor = IncrementalAuditor::new();
    let mut online_conflicts = 0usize;
    let mut completed = 0usize;
    let mut failed_requests = 0usize;
    let mut refused_requests = 0usize;
    let mut makespan: Time = 0;
    let mut backpressure_retries = 0u64;

    let wall_start = Instant::now();
    while let Some(&core::cmp::Reverse((now, _))) = heap.peek() {
        // Clock moved: let the planner retire state (the engine's batched
        // remove_batch path) and deliver revisions before this burst plans.
        let revisions = client.advance(now);
        if !revisions.is_empty() {
            // Revisions land as one atomic batch (see sim.rs): cancel every
            // revised route before recommitting any.
            for (rid, _) in &revisions {
                auditor.cancel(*rid);
            }
            for (rid, route) in revisions {
                makespan = makespan.max(route.finish_exclusive());
                if auditor.commit(rid, &route).is_err() {
                    online_conflicts += 1;
                }
                final_routes.insert(rid, route);
            }
        }

        // Drain every event scheduled for `now`, in sequence order, into
        // one submission burst.
        let mut burst: Vec<(
            RequestId,
            usize,
            usize,
            QueryKind,
            u32,
            crate::service::Ticket,
        )> = Vec::new();
        while let Some(&core::cmp::Reverse((t, _))) = heap.peek() {
            if t != now {
                break;
            }
            let core::cmp::Reverse((_, id)) = heap.pop().expect("peeked");
            let event = payloads.remove(&id).expect("payload");
            match event {
                Event::Arrive { task } => {
                    match nearest_free_robot(&robots, scenario.tasks[task].rack) {
                        Some(r) => {
                            robots[r].busy = true;
                            push(
                                &mut heap,
                                &mut payloads,
                                &mut seq,
                                now,
                                Event::Leg {
                                    task,
                                    robot: r,
                                    kind: QueryKind::Pickup,
                                    attempt: 0,
                                },
                            );
                        }
                        None => waiting.push_back(task),
                    }
                }
                Event::Complete { robot } => {
                    robots[robot].busy = false;
                    completed += 1;
                    if let Some(next_task) = waiting.pop_front() {
                        if let Some(r) = nearest_free_robot(&robots, scenario.tasks[next_task].rack)
                        {
                            robots[r].busy = true;
                            push(
                                &mut heap,
                                &mut payloads,
                                &mut seq,
                                now,
                                Event::Leg {
                                    task: next_task,
                                    robot: r,
                                    kind: QueryKind::Pickup,
                                    attempt: 0,
                                },
                            );
                        } else {
                            waiting.push_front(next_task);
                        }
                    }
                }
                Event::Leg {
                    task,
                    robot,
                    kind,
                    attempt,
                } => {
                    let t = scenario.tasks[task];
                    let (origin, destination) = match kind {
                        QueryKind::Pickup => (robots[robot].pos, t.rack),
                        QueryKind::Transmission => (t.rack, t.picker),
                        QueryKind::Return => (t.picker, t.rack),
                    };
                    let rid = next_request_id;
                    next_request_id += 1;
                    let request = Request::new(rid, now, origin, destination, kind);
                    // Backpressure: back off for the hinted delay and
                    // resubmit. The retry loop keeps submission order —
                    // there is exactly one submitter — so determinism
                    // survives rejection storms.
                    let ticket = loop {
                        match client.submit(request) {
                            Ok(t) => break t,
                            Err(SubmitError::Backpressure { retry_after, .. }) => {
                                backpressure_retries += 1;
                                std::thread::sleep(retry_after);
                            }
                            Err(SubmitError::ShuttingDown) => {
                                unreachable!("service shut down mid-run")
                            }
                        }
                    };
                    burst.push((rid, task, robot, kind, attempt, ticket));
                }
            }
        }

        // Collect the burst's replies in submission order and schedule the
        // follow-up events.
        for (rid, task, robot, kind, attempt, ticket) in burst {
            match ticket.wait() {
                PlanResponse::Planned(route) => {
                    makespan = makespan.max(route.finish_exclusive());
                    let end = route.end_time();
                    if auditor.commit(rid, &route).is_err() {
                        online_conflicts += 1;
                    }
                    final_routes.insert(rid, route);
                    match kind {
                        QueryKind::Pickup => {
                            robots[robot].pos = scenario.tasks[task].rack;
                            push(
                                &mut heap,
                                &mut payloads,
                                &mut seq,
                                end + sim.service_time,
                                Event::Leg {
                                    task,
                                    robot,
                                    kind: QueryKind::Transmission,
                                    attempt: 0,
                                },
                            );
                        }
                        QueryKind::Transmission => {
                            robots[robot].pos = scenario.tasks[task].picker;
                            push(
                                &mut heap,
                                &mut payloads,
                                &mut seq,
                                end + sim.service_time,
                                Event::Leg {
                                    task,
                                    robot,
                                    kind: QueryKind::Return,
                                    attempt: 0,
                                },
                            );
                        }
                        QueryKind::Return => {
                            robots[robot].pos = scenario.tasks[task].rack;
                            push(
                                &mut heap,
                                &mut payloads,
                                &mut seq,
                                end,
                                Event::Complete { robot },
                            );
                        }
                    }
                }
                PlanResponse::ServiceDied => {
                    panic!("service died mid-run (planner worker panic)")
                }
                resp => {
                    // Refusals and infeasibilities share the retry path: the
                    // client backs off retry_delay sim-seconds and tries
                    // again, up to the shared SimConfig budget.
                    if resp.is_refusal() {
                        refused_requests += 1;
                    }
                    if attempt < sim.max_retries {
                        push(
                            &mut heap,
                            &mut payloads,
                            &mut seq,
                            now + sim.retry_delay,
                            Event::Leg {
                                task,
                                robot,
                                kind,
                                attempt: attempt + 1,
                            },
                        );
                    } else {
                        failed_requests += 1;
                        robots[robot].busy = false;
                    }
                }
            }
        }
    }
    let wall_secs = wall_start.elapsed().as_secs_f64();

    let metrics = client.metrics();
    let planner = svc.shutdown();

    // Batch re-validation of the final (post-revision) set, like sim.rs:
    // report whichever of the online and batch counts is worse.
    let routes: Vec<Route> = final_routes.values().cloned().collect();
    let audit_conflicts = match validate_routes(&routes) {
        None => online_conflicts,
        Some(_) => online_conflicts.max(1),
    };

    let report = LoadReport::build(
        scenario,
        &final_routes,
        metrics,
        planner.engine_metrics(),
        wall_secs,
        completed,
        failed_requests,
        refused_requests,
        backpressure_retries,
        audit_conflicts,
        makespan,
    );
    (report, planner)
}

fn nearest_free_robot(robots: &[RobotState], target: Cell) -> Option<usize> {
    robots
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.busy)
        .min_by_key(|(_, r)| r.pos.manhattan(target))
        .map(|(i, _)| i)
}
