//! Deterministic load generation: replay warehouse days through the
//! daemon's wire protocol and audit every committed route.
//!
//! The harness regenerates the simulator's three-leg task workflow
//! (pickup → transmission → return, nearest-free-robot assignment, retry
//! on infeasible) but speaks the daemon's **wire protocol** instead of
//! calling the planner — or even the in-process service API — directly:
//! every run registers its tenant(s) in a [`TenantRegistry`], connects a
//! [`WireClient`] over the in-process [`duplex`] transport, and drives the
//! whole day through framed submit/ack/plan-reply/advance traffic. The
//! measured path is the deployed path — queueing, admission control,
//! deadlines, *and* wire encode/decode.
//!
//! Determinism: the request stream is a pure function of (layout, profile,
//! seed, multiplier), and submissions happen in lockstep bursts — all
//! requests sharing a sim-timestamp are submitted in sequence order (each
//! acked synchronously by the ingest reader, which pins admission order),
//! then their replies are collected before the clock moves. With deadlines
//! disabled the committed route set is bit-identical across runs and
//! transports ([`LoadReport::routes_digest`] pins it). With a deadline
//! set, refusals depend on wall-clock speed — that is the point of a
//! deadline — so overload runs trade the bit-determinism guarantee for
//! budget enforcement.
//!
//! Multi-tenancy: [`run_load_multi`] registers several tenants in **one**
//! registry and drives each day on its own connection thread,
//! concurrently. Tenants share nothing but CPU (each has its own queue,
//! worker pool and commit pipeline), so each tenant's digest must equal
//! its single-tenant run's — the conformance property the two-tenant CI
//! smoke gates on.
//!
//! Every committed route is mirrored into an [`IncrementalAuditor`] the
//! moment its reply arrives, and the final route set is re-validated
//! batch-style, exactly like the batch simulator's audit. Route revisions
//! delivered by `advance` are re-audited (cancel, then recommit as one
//! batch); leg chaining keeps the originally planned end times, so the
//! harness is exact for non-revising planners (SRP, SAP, SIPP, ACP) and a
//! close approximation for TWP/RP.

use crate::ingest::{duplex, serve_connection};
use crate::report::LoadReport;
use crate::service::{PlanResponse, ServiceConfig, ServiceMetrics};
use crate::tenant::{TenantRegistry, WireCounters};
use crate::wal::{self, LogTail, WalJournal, WalStats};
use crate::wire::{WireClient, WireSubmitError};
use carp_simenv::SimConfig;
use carp_warehouse::collision::{validate_routes, IncrementalAuditor};
use carp_warehouse::layout::Layout;
use carp_warehouse::planner::{EngineMetrics, Planner, SpeculativePlanner};
use carp_warehouse::request::{QueryKind, Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::tasks::{generate_tasks, DayProfile, Task};
use carp_warehouse::types::{Cell, Time};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// A complete load scenario: the warehouse, the (already rate-compressed)
/// task stream, and the identity of the run. The scenario `name` doubles
/// as the tenant's [`WarehouseId`](crate::tenant::WarehouseId) on the
/// daemon.
#[derive(Clone)]
pub struct LoadScenario {
    /// Scenario label carried into the report ("W-2@4x" …) and used as the
    /// tenant id.
    pub name: String,
    /// The warehouse.
    pub layout: Layout,
    /// Task stream with compressed arrival times, sorted by arrival.
    pub tasks: Vec<Task>,
    /// The arrival-rate multiplier the stream was compressed by.
    pub rate_multiplier: f64,
    /// RNG seed the stream was generated from.
    pub seed: u64,
}

impl LoadScenario {
    /// Build a scenario over `layout`: `num_tasks` tasks drawn from the
    /// standard bimodal day profile over `horizon` seconds with `seed`,
    /// arrivals divided by `rate_multiplier`.
    pub fn new(
        name: impl Into<String>,
        layout: Layout,
        num_tasks: u32,
        horizon: Time,
        rate_multiplier: f64,
        seed: u64,
    ) -> Self {
        assert!(rate_multiplier > 0.0, "rate multiplier must be positive");
        let profile = DayProfile::new(horizon, num_tasks);
        let mut tasks = generate_tasks(&layout, &profile, seed);
        for t in &mut tasks {
            t.arrival = (t.arrival as f64 / rate_multiplier) as Time;
        }
        // Integer truncation preserves order, but re-assert the invariant.
        tasks.sort_by_key(|t| (t.arrival, t.id));
        LoadScenario {
            name: name.into(),
            layout,
            tasks,
            rate_multiplier,
            seed,
        }
    }
}

/// One tenant's slice of a multi-tenant run: its day plus the planner and
/// service configuration serving it.
pub struct TenantLoad<P> {
    /// The tenant's day; `scenario.name` is its warehouse id.
    pub scenario: LoadScenario,
    /// The planner serving this tenant.
    pub planner: P,
    /// Per-tenant service tuning (queue bound, workers, deadline).
    pub service_cfg: ServiceConfig,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// A task emerges: grab the nearest free robot or queue.
    Arrive { task: usize },
    /// Submit one leg's planning request (possibly a retry).
    Leg {
        task: usize,
        robot: usize,
        kind: QueryKind,
        attempt: u32,
    },
    /// The return leg finished: free the robot, serve the waiting queue.
    Complete { robot: usize },
}

struct RobotState {
    pos: Cell,
    busy: bool,
}

/// Raw outcome of one driven day, before it meets the metrics snapshot.
struct RawRun {
    final_routes: HashMap<RequestId, Route>,
    completed: usize,
    failed_requests: usize,
    refused_requests: usize,
    backpressure_retries: u64,
    audit_conflicts: usize,
    makespan: Time,
    wall_secs: f64,
}

/// Everything a driver thread brings home from one tenant's day.
struct DriverOut {
    scenario: LoadScenario,
    raw: RawRun,
    metrics: ServiceMetrics,
    wire: WireCounters,
}

/// Drive `planner` through a full load run of `scenario` on the serial
/// service, over the wire. Returns the report and the planner (recovered
/// from the registry after shutdown) for post-run inspection.
pub fn run_load<P: Planner + Send + 'static>(
    scenario: &LoadScenario,
    planner: P,
    sim: SimConfig,
    service_cfg: ServiceConfig,
) -> (LoadReport, P) {
    let registry = Arc::new(TenantRegistry::new());
    registry.register(scenario.name.clone(), planner, service_cfg);
    let out = drive_tenant(&registry, scenario.clone(), &sim);
    recover::<P>(&registry, out)
}

/// Like [`run_load`], but on the speculative multi-worker commit pipeline
/// (`service_cfg.workers` planner threads; delegates to the serial worker
/// when `workers <= 1`). The request stream, burst cadence, and audit are
/// identical to [`run_load`] — which is the point: with deadlines disabled
/// the committed route set must be bit-identical across worker counts.
pub fn run_load_speculative<P: SpeculativePlanner + Send + 'static>(
    scenario: &LoadScenario,
    planner: P,
    sim: SimConfig,
    service_cfg: ServiceConfig,
) -> (LoadReport, P) {
    let registry = Arc::new(TenantRegistry::new());
    registry.register_speculative(scenario.name.clone(), planner, service_cfg);
    let out = drive_tenant(&registry, scenario.clone(), &sim);
    recover::<P>(&registry, out)
}

/// Like [`run_load_speculative`], with the registry journaling every
/// commit / cancel / advance into `wal` — the WAL-on leg of the recovery
/// bench. The tenant is drained through
/// [`TenantRegistry::remove`](crate::tenant::TenantRegistry::remove) at
/// the end, so the returned journal is sealed with a `TenantClose` record.
pub fn run_load_journaled<P: SpeculativePlanner + Send + 'static>(
    scenario: &LoadScenario,
    planner: P,
    sim: SimConfig,
    service_cfg: ServiceConfig,
    wal: Arc<WalJournal>,
) -> (LoadReport, P) {
    let registry = Arc::new(TenantRegistry::new());
    registry.attach_journal(wal);
    registry.register_speculative(scenario.name.clone(), planner, service_cfg);
    let out = drive_tenant(&registry, scenario.clone(), &sim);
    recover::<P>(&registry, out)
}

/// Outcome of a kill-primary / standby-takeover day.
#[derive(Debug)]
pub struct RecoveryRun {
    /// Report over the **whole** day — the client-side route mirror spans
    /// both halves, so `report.routes_digest` is directly comparable with
    /// an uninterrupted run's. Service/wire metrics in the report cover
    /// only the standby's half (the primary's died with it; see
    /// [`RecoveryRun::primary_metrics`]).
    pub report: LoadReport,
    /// Sim time of the first burst the standby drove.
    pub killed_at: Time,
    /// Changeset records the standby replayed to rebuild the planner.
    pub records_replayed: usize,
    /// Bytes the standby truncated off the torn tail (0 = clean log).
    pub torn_tail_dropped: u64,
    /// The primary's service metrics, scraped just before the kill.
    pub primary_metrics: ServiceMetrics,
    /// Journal stats at end of day (standby's journal: replayed + appended).
    pub wal_stats: WalStats,
}

/// Drive a day with the WAL on, **kill the primary daemon** at the first
/// burst boundary at or after sim time `kill_at`, and finish the day on a
/// **warm standby** rebuilt purely from the changeset log.
///
/// The kill is deliberately graceless: the client connection is dropped
/// and the primary's registry is abandoned without drain or seal, so the
/// log ends wherever the commit pipeline last appended — exactly the disk
/// image a crash leaves (minus OS buffers, which `fsync_every` bounds).
/// With `torn_tail` set, a half-written record is appended on top to
/// simulate dying mid-`write`; the standby must truncate it and recover.
///
/// The standby replays the log through
/// [`recover_planners`](crate::wal::recover_planners) into a fresh planner
/// from `make_planner`, re-registers the tenant (appending a reopen
/// `TenantOpen` to the same log), and drives the rest of the day. Because
/// a paused [`DayDriver`] has no request in flight and every acked commit
/// was journaled before its reply, the standby's planner state is exactly
/// the primary's at the pause point — so with deadlines disabled the whole
/// day's committed route set is bit-identical to an uninterrupted run's.
pub fn run_load_recovery<P, F>(
    scenario: &LoadScenario,
    mut make_planner: F,
    sim: SimConfig,
    service_cfg: ServiceConfig,
    wal_path: &Path,
    kill_at: Time,
    torn_tail: bool,
) -> (RecoveryRun, P)
where
    P: SpeculativePlanner + Send + 'static,
    F: FnMut() -> P,
{
    // ---- phase 1: the primary, driven to the kill point ----
    let journal = WalJournal::create(wal_path).expect("create changeset log");
    let primary = Arc::new(TenantRegistry::new());
    primary.attach_journal(journal);
    primary.register_speculative(scenario.name.clone(), make_planner(), service_cfg);
    let mut driver = DayDriver::new(scenario);

    let ((client_read, client_write), (server_read, server_write)) = duplex();
    let server_registry = Arc::clone(&primary);
    let server = std::thread::Builder::new()
        .name(format!("carp-primary-{}", scenario.name))
        .spawn(move || serve_connection(&server_registry, server_read, server_write))
        .expect("spawn primary ingest thread");
    let mut client = WireClient::new(client_read, client_write);
    let outcome = driver.drive(scenario, &mut client, &sim, Some(kill_at));
    let killed_at = match outcome {
        DriveOutcome::Paused { at } => at,
        // Day shorter than the kill point: nothing left for the standby,
        // but the takeover path below still runs (and must be a no-op).
        DriveOutcome::Completed => kill_at,
    };
    let (primary_metrics, _) = client
        .metrics(&scenario.name)
        .expect("primary metrics before kill");
    // The kill: hang up and abandon the registry — no drain, no close
    // records, no seal. Worker threads exit as their channels die; the
    // journal Arc dies with them without flushing anything extra.
    drop(client);
    server
        .join()
        .expect("primary ingest thread panicked")
        .expect("primary connection errored");
    drop(primary);

    if torn_tail {
        // A record header promising 64 payload bytes followed by 3: the
        // torn in-flight append of a crash mid-write. Its commit was never
        // acked, so truncating it loses nothing the client observed.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(wal_path)
            .expect("open log for tail corruption");
        f.write_all(&[64, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3])
            .expect("append torn tail");
    }

    // ---- phase 2: the standby, rebuilt from the log alone ----
    let (journal, records, tail) = WalJournal::open_append(wal_path).expect("standby opens log");
    let torn_tail_dropped = match tail {
        LogTail::Torn { dropped_bytes, .. } => dropped_bytes,
        LogTail::Clean => 0,
    };
    let records_replayed = records.len();
    if let Err((tenant, conflict)) = wal::audit_log(&records) {
        panic!("changeset log fails audit for tenant {tenant}: {conflict:?}");
    }
    let (mut planners, _state) = wal::recover_planners(&records, |_| make_planner());
    let planner = planners
        .remove(scenario.name.as_str())
        .unwrap_or_else(&mut make_planner);

    let standby = Arc::new(TenantRegistry::new());
    standby.attach_journal(Arc::clone(&journal));
    standby.register_speculative(scenario.name.clone(), planner, service_cfg);
    let ((client_read, client_write), (server_read, server_write)) = duplex();
    let server_registry = Arc::clone(&standby);
    let server = std::thread::Builder::new()
        .name(format!("carp-standby-{}", scenario.name))
        .spawn(move || serve_connection(&server_registry, server_read, server_write))
        .expect("spawn standby ingest thread");
    let mut client = WireClient::new(client_read, client_write);
    let outcome = driver.drive(scenario, &mut client, &sim, None);
    debug_assert_eq!(outcome, DriveOutcome::Completed);
    let (metrics, wire) = client
        .metrics(&scenario.name)
        .expect("standby metrics over the wire");
    drop(client);
    server
        .join()
        .expect("standby ingest thread panicked")
        .expect("standby connection errored");

    let planner = match standby
        .remove(&scenario.name)
        .expect("standby tenant registered")
        .downcast::<P>()
    {
        Ok(planner) => *planner,
        Err(_) => panic!("standby planner has the registered type"),
    };
    let wal_stats = journal.stats();
    let engine: Option<EngineMetrics> = planner.engine_metrics();
    let raw = driver.finish();
    let report = LoadReport::build(
        scenario,
        scenario.name.clone(),
        &raw.final_routes,
        metrics,
        wire,
        engine,
        raw.wall_secs,
        raw.completed,
        raw.failed_requests,
        raw.refused_requests,
        raw.backpressure_retries,
        raw.audit_conflicts,
        raw.makespan,
    );
    (
        RecoveryRun {
            report,
            killed_at,
            records_replayed,
            torn_tail_dropped,
            primary_metrics,
            wal_stats,
        },
        planner,
    )
}

/// Serve several tenants from **one** registry concurrently: each tenant's
/// day runs on its own connection + driver thread against the shared
/// daemon. Returns `(report, planner)` per tenant, in input order.
///
/// Tenants are registered on the speculative pipeline (serial when a
/// tenant's `workers <= 1`), so worker pools are per-tenant too.
pub fn run_load_multi<P: SpeculativePlanner + Send + 'static>(
    tenants: Vec<TenantLoad<P>>,
    sim: SimConfig,
) -> Vec<(LoadReport, P)> {
    let registry = Arc::new(TenantRegistry::new());
    let mut scenarios = Vec::with_capacity(tenants.len());
    for t in tenants {
        registry.register_speculative(t.scenario.name.clone(), t.planner, t.service_cfg);
        scenarios.push(t.scenario);
    }
    let handles: Vec<_> = scenarios
        .into_iter()
        .map(|scenario| {
            let registry = Arc::clone(&registry);
            let sim = sim.clone();
            std::thread::Builder::new()
                .name(format!("carp-load-{}", scenario.name))
                .spawn(move || drive_tenant(&registry, scenario, &sim))
                .expect("spawn tenant driver")
        })
        .collect();
    handles
        .into_iter()
        .map(|h| {
            let out = h.join().expect("tenant driver panicked");
            recover::<P>(&registry, out)
        })
        .collect()
}

/// Open one wire connection to the daemon and drive one tenant's whole day
/// over it; fetch the final metrics through the wire before hanging up.
fn drive_tenant(
    registry: &Arc<TenantRegistry>,
    scenario: LoadScenario,
    sim: &SimConfig,
) -> DriverOut {
    let ((client_read, client_write), (server_read, server_write)) = duplex();
    let server_registry = Arc::clone(registry);
    let server = std::thread::Builder::new()
        .name(format!("carp-ingest-{}", scenario.name))
        .spawn(move || serve_connection(&server_registry, server_read, server_write))
        .expect("spawn ingest thread");
    let mut client = WireClient::new(client_read, client_write);
    let raw = drive_wire(&scenario, &mut client, sim);
    let (metrics, wire) = client
        .metrics(&scenario.name)
        .expect("metrics query over the wire");
    drop(client); // closes the pipes: the ingest reader sees clean EOF
    server
        .join()
        .expect("ingest thread panicked")
        .expect("connection ended with a protocol error");
    DriverOut {
        scenario,
        raw,
        metrics,
        wire,
    }
}

/// Shut the tenant down, recover the concrete planner from the registry,
/// and assemble its report.
fn recover<P: Planner + Send + 'static>(
    registry: &TenantRegistry,
    out: DriverOut,
) -> (LoadReport, P) {
    let planner = match registry
        .remove(&out.scenario.name)
        .expect("tenant registered by this run")
        .downcast::<P>()
    {
        Ok(planner) => *planner,
        Err(_) => panic!("tenant planner has the registered type"),
    };
    let engine: Option<EngineMetrics> = planner.engine_metrics();
    let report = LoadReport::build(
        &out.scenario,
        out.scenario.name.clone(),
        &out.raw.final_routes,
        out.metrics,
        out.wire,
        engine,
        out.raw.wall_secs,
        out.raw.completed,
        out.raw.failed_requests,
        out.raw.refused_requests,
        out.raw.backpressure_retries,
        out.raw.audit_conflicts,
        out.raw.makespan,
    );
    (report, planner)
}

/// Where a [`DayDriver::drive`] call stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DriveOutcome {
    /// The event heap drained: the day is over.
    Completed,
    /// A `stop` bound was hit *at a burst boundary* (every submitted
    /// request already has its reply); the day resumes from sim time `at`
    /// on the next [`DayDriver::drive`] call — possibly against a
    /// different daemon.
    Paused {
        /// Sim time of the first undriven burst.
        at: Time,
    },
}

/// The day-replay event loop as a **resumable** value: all client-side
/// state of a driven day (robot fleet, event heap, client auditor mirror,
/// counters) lives here rather than on one function's stack, so a day can
/// be driven partway against one daemon, paused at a burst boundary, and
/// finished against another — the primitive under the kill-primary /
/// standby-takeover recovery runs.
struct DayDriver {
    robots: Vec<RobotState>,
    /// (time, seq) heap with payload map, exactly the simulator's ordering.
    heap: BinaryHeap<core::cmp::Reverse<(Time, u64)>>,
    payloads: HashMap<u64, Event>,
    seq: u64,
    waiting: VecDeque<usize>,
    next_request_id: RequestId,
    final_routes: HashMap<RequestId, Route>,
    auditor: IncrementalAuditor,
    online_conflicts: usize,
    completed: usize,
    failed_requests: usize,
    refused_requests: usize,
    makespan: Time,
    backpressure_retries: u64,
    /// Wall time accumulated across `drive` calls.
    wall_secs: f64,
}

impl DayDriver {
    fn new(scenario: &LoadScenario) -> Self {
        let robots: Vec<RobotState> = scenario
            .layout
            .robot_spawns
            .iter()
            .map(|&pos| RobotState { pos, busy: false })
            .collect();
        assert!(!robots.is_empty(), "layout has no robots");
        let mut driver = DayDriver {
            robots,
            heap: BinaryHeap::new(),
            payloads: HashMap::new(),
            seq: 0,
            waiting: VecDeque::new(),
            next_request_id: 0,
            final_routes: HashMap::new(),
            auditor: IncrementalAuditor::new(),
            online_conflicts: 0,
            completed: 0,
            failed_requests: 0,
            refused_requests: 0,
            makespan: 0,
            backpressure_retries: 0,
            wall_secs: 0.0,
        };
        for (i, task) in scenario.tasks.iter().enumerate() {
            driver.push(task.arrival, Event::Arrive { task: i });
        }
        driver
    }

    fn push(&mut self, t: Time, e: Event) {
        self.heap.push(core::cmp::Reverse((t, self.seq)));
        self.payloads.insert(self.seq, e);
        self.seq += 1;
    }

    /// Drive bursts through `client` until the heap drains or the next
    /// burst's sim time reaches `stop`. Stopping happens *between* bursts,
    /// so a paused driver has no request in flight: every submission has
    /// been acked and its plan reply collected, which is exactly the
    /// prefix a standby can reconstruct from the changeset log.
    fn drive<R: std::io::Read, W: std::io::Write>(
        &mut self,
        scenario: &LoadScenario,
        client: &mut WireClient<R, W>,
        sim: &SimConfig,
        stop: Option<Time>,
    ) -> DriveOutcome {
        let tenant = scenario.name.as_str();
        let wall_start = Instant::now();
        while let Some(&core::cmp::Reverse((now, _))) = self.heap.peek() {
            if let Some(bound) = stop {
                if now >= bound {
                    self.wall_secs += wall_start.elapsed().as_secs_f64();
                    return DriveOutcome::Paused { at: now };
                }
            }
            // Clock moved: let the planner retire state (the engine's
            // batched remove_batch path) and deliver revisions before this
            // burst plans.
            let revisions = client.advance(tenant, now).expect("advance over the wire");
            if !revisions.is_empty() {
                // Revisions land as one atomic batch (see sim.rs): cancel
                // every revised route before recommitting any.
                for (rid, _) in &revisions {
                    self.auditor.cancel(*rid);
                }
                for (rid, route) in revisions {
                    self.makespan = self.makespan.max(route.finish_exclusive());
                    if self.auditor.commit(rid, &route).is_err() {
                        self.online_conflicts += 1;
                    }
                    self.final_routes.insert(rid, route);
                }
            }

            // Drain every event scheduled for `now`, in sequence order,
            // into one submission burst.
            let mut burst: Vec<(RequestId, usize, usize, QueryKind, u32)> = Vec::new();
            while let Some(&core::cmp::Reverse((t, _))) = self.heap.peek() {
                if t != now {
                    break;
                }
                let core::cmp::Reverse((_, id)) = self.heap.pop().expect("peeked");
                let event = self.payloads.remove(&id).expect("payload");
                match event {
                    Event::Arrive { task } => {
                        match nearest_free_robot(&self.robots, scenario.tasks[task].rack) {
                            Some(r) => {
                                self.robots[r].busy = true;
                                self.push(
                                    now,
                                    Event::Leg {
                                        task,
                                        robot: r,
                                        kind: QueryKind::Pickup,
                                        attempt: 0,
                                    },
                                );
                            }
                            None => self.waiting.push_back(task),
                        }
                    }
                    Event::Complete { robot } => {
                        self.robots[robot].busy = false;
                        self.completed += 1;
                        if let Some(next_task) = self.waiting.pop_front() {
                            if let Some(r) =
                                nearest_free_robot(&self.robots, scenario.tasks[next_task].rack)
                            {
                                self.robots[r].busy = true;
                                self.push(
                                    now,
                                    Event::Leg {
                                        task: next_task,
                                        robot: r,
                                        kind: QueryKind::Pickup,
                                        attempt: 0,
                                    },
                                );
                            } else {
                                self.waiting.push_front(next_task);
                            }
                        }
                    }
                    Event::Leg {
                        task,
                        robot,
                        kind,
                        attempt,
                    } => {
                        let t = scenario.tasks[task];
                        let (origin, destination) = match kind {
                            QueryKind::Pickup => (self.robots[robot].pos, t.rack),
                            QueryKind::Transmission => (t.rack, t.picker),
                            QueryKind::Return => (t.picker, t.rack),
                        };
                        let rid = self.next_request_id;
                        self.next_request_id += 1;
                        let request = Request::new(rid, now, origin, destination, kind);
                        // Backpressure and throttling: back off for the
                        // hinted delay and resubmit. The retry loop keeps
                        // submission order — there is exactly one submitter
                        // per connection and the ingest reader acks in
                        // frame order — so determinism survives rejection
                        // storms.
                        loop {
                            match client.submit(tenant, &request) {
                                Ok(()) => break,
                                Err(WireSubmitError::Backpressure { retry_after, .. })
                                | Err(WireSubmitError::Throttled { retry_after }) => {
                                    self.backpressure_retries += 1;
                                    std::thread::sleep(retry_after);
                                }
                                Err(e) => unreachable!("submission refused mid-run: {e}"),
                            }
                        }
                        burst.push((rid, task, robot, kind, attempt));
                    }
                }
            }

            // Collect the burst's replies in submission order and schedule
            // the follow-up events.
            for (rid, task, robot, kind, attempt) in burst {
                match client.wait_plan(rid).expect("plan reply over the wire") {
                    PlanResponse::Planned(route) => {
                        self.makespan = self.makespan.max(route.finish_exclusive());
                        let end = route.end_time();
                        if self.auditor.commit(rid, &route).is_err() {
                            self.online_conflicts += 1;
                        }
                        self.final_routes.insert(rid, route);
                        match kind {
                            QueryKind::Pickup => {
                                self.robots[robot].pos = scenario.tasks[task].rack;
                                self.push(
                                    end + sim.service_time,
                                    Event::Leg {
                                        task,
                                        robot,
                                        kind: QueryKind::Transmission,
                                        attempt: 0,
                                    },
                                );
                            }
                            QueryKind::Transmission => {
                                self.robots[robot].pos = scenario.tasks[task].picker;
                                self.push(
                                    end + sim.service_time,
                                    Event::Leg {
                                        task,
                                        robot,
                                        kind: QueryKind::Return,
                                        attempt: 0,
                                    },
                                );
                            }
                            QueryKind::Return => {
                                self.robots[robot].pos = scenario.tasks[task].rack;
                                self.push(end, Event::Complete { robot });
                            }
                        }
                    }
                    PlanResponse::ServiceDied => {
                        panic!("service died mid-run (planner worker panic)")
                    }
                    resp => {
                        // Refusals and infeasibilities share the retry
                        // path: the client backs off retry_delay
                        // sim-seconds and tries again, up to the shared
                        // SimConfig budget.
                        if resp.is_refusal() {
                            self.refused_requests += 1;
                        }
                        if attempt < sim.max_retries {
                            self.push(
                                now + sim.retry_delay,
                                Event::Leg {
                                    task,
                                    robot,
                                    kind,
                                    attempt: attempt + 1,
                                },
                            );
                        } else {
                            self.failed_requests += 1;
                            self.robots[robot].busy = false;
                        }
                    }
                }
            }
        }
        self.wall_secs += wall_start.elapsed().as_secs_f64();
        DriveOutcome::Completed
    }

    /// Close the books on a (fully driven) day: batch re-validation of the
    /// final (post-revision) set, like sim.rs — report whichever of the
    /// online and batch counts is worse.
    fn finish(self) -> RawRun {
        let routes: Vec<Route> = self.final_routes.values().cloned().collect();
        let audit_conflicts = match validate_routes(&routes) {
            None => self.online_conflicts,
            Some(_) => self.online_conflicts.max(1),
        };
        RawRun {
            final_routes: self.final_routes,
            completed: self.completed,
            failed_requests: self.failed_requests,
            refused_requests: self.refused_requests,
            backpressure_retries: self.backpressure_retries,
            audit_conflicts,
            makespan: self.makespan,
            wall_secs: self.wall_secs,
        }
    }
}

/// The shared day-replay event loop, speaking frames through `client`.
fn drive_wire<R: std::io::Read, W: std::io::Write>(
    scenario: &LoadScenario,
    client: &mut WireClient<R, W>,
    sim: &SimConfig,
) -> RawRun {
    let mut driver = DayDriver::new(scenario);
    let outcome = driver.drive(scenario, client, sim, None);
    debug_assert_eq!(outcome, DriveOutcome::Completed);
    driver.finish()
}

fn nearest_free_robot(robots: &[RobotState], target: Cell) -> Option<usize> {
    robots
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.busy)
        .min_by_key(|(_, r)| r.pos.manhattan(target))
        .map(|(i, _)| i)
}
