//! Fixed-bucket latency histogram.
//!
//! The service records every planning latency into a histogram with a
//! fixed 1–2–5 bucket ladder (microseconds, spanning 1 µs to 60 s), so
//! percentile queries cost one pass over ~35 counters, recording is one
//! branchless-ish binary search + increment, and the memory footprint is
//! constant no matter how many requests flow through. Percentiles are
//! reported as the upper bound of the bucket where the cumulative count
//! crosses the rank — a deterministic, slightly pessimistic estimate whose
//! error is bounded by the bucket ratio (≤ 2.5×), plenty for p50/p95/p99
//! trend tracking across runs.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Upper bounds of the fixed buckets, in microseconds: a 1–2–5 ladder from
/// 1 µs to 60 s. Latencies above the last bound land in an overflow bucket
/// reported as `u64::MAX`'s bound — i.e. the 60 s cap.
const BOUNDS_US: [u64; 35] = [
    1,
    2,
    5,
    10,
    20,
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    60_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
    20_000_000_000,
    50_000_000_000,
    60_000_000_000,
];

/// Fixed-bucket histogram of latencies in microseconds.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// One count per bound, plus a final overflow bucket.
    counts: [u64; BOUNDS_US.len() + 1],
    total: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; BOUNDS_US.len() + 1],
            total: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    /// Record one latency.
    pub fn record(&mut self, d: Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Record one latency given in microseconds.
    pub fn record_us(&mut self, us: u64) {
        let idx = BOUNDS_US.partition_point(|&b| b < us);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Percentile estimate in microseconds: the upper bound of the bucket
    /// where the cumulative count reaches `ceil(p · total)`. `p` is clamped
    /// into (0, 1]; an empty histogram reports 0.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let p = p.clamp(f64::MIN_POSITIVE, 1.0);
        // ceil(p * total) as an integer rank ≥ 1, avoiding float edge cases
        // at p = 1.0.
        let rank = ((p * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return BOUNDS_US.get(i).copied().unwrap_or(self.max_us);
            }
        }
        self.max_us
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.total as f64
        }
    }

    /// Largest recorded latency in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Fold another histogram's samples into this one — bucket counts add
    /// exactly, so merging per-thread histograms loses nothing.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.total += other.total;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Freeze the histogram into a serializable summary.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.total,
            mean_us: self.mean_us(),
            p50_us: self.percentile_us(0.50),
            p95_us: self.percentile_us(0.95),
            p99_us: self.percentile_us(0.99),
            max_us: self.max_us,
        }
    }
}

impl LatencySummary {
    /// Exact summary of raw microsecond samples (sorts them in place).
    /// Unlike the bucketed histogram, percentiles here are true order
    /// statistics — use this where *ratios between summaries* must be
    /// meaningful (the connection ladder's 2× ack-latency gate), not just
    /// trend direction.
    pub fn from_samples_us(samples: &mut [u64]) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary {
                count: 0,
                mean_us: 0.0,
                p50_us: 0,
                p95_us: 0,
                p99_us: 0,
                max_us: 0,
            };
        }
        samples.sort_unstable();
        let count = samples.len();
        let rank = |p: f64| samples[((p * count as f64).ceil() as usize).clamp(1, count) - 1];
        let sum: u64 = samples.iter().fold(0, |a, &x| a.saturating_add(x));
        LatencySummary {
            count: count as u64,
            mean_us: sum as f64 / count as f64,
            p50_us: rank(0.50),
            p95_us: rank(0.95),
            p99_us: rank(0.99),
            max_us: samples[count - 1],
        }
    }
}

/// Serializable percentile summary of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Mean in microseconds.
    pub mean_us: f64,
    /// Median (bucket upper bound), microseconds.
    pub p50_us: u64,
    /// 95th percentile (bucket upper bound), microseconds.
    pub p95_us: u64,
    /// 99th percentile (bucket upper bound), microseconds.
    pub p99_us: u64,
    /// Largest sample, microseconds.
    pub max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn uniform_distribution_percentiles() {
        // 1..=1000 µs uniformly: p50 must bound 500 µs from above within
        // one bucket (→ 500), p99 bounds 990 µs (→ 1000).
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record_us(us);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.percentile_us(0.50), 500);
        assert_eq!(h.percentile_us(0.95), 1000);
        assert_eq!(h.percentile_us(0.99), 1000);
        assert_eq!(h.max_us(), 1000);
        assert!((h.mean_us() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn bimodal_distribution_separates_modes() {
        // 95 fast samples at 8 µs, 5 slow at 40 ms: p50/p95 sit in the fast
        // mode's bucket, p99 in the slow mode's.
        let mut h = LatencyHistogram::new();
        for _ in 0..95 {
            h.record_us(8);
        }
        for _ in 0..5 {
            h.record_us(40_000);
        }
        assert_eq!(h.percentile_us(0.50), 10);
        assert_eq!(h.percentile_us(0.95), 10);
        assert_eq!(h.percentile_us(0.99), 50_000);
    }

    #[test]
    fn single_sample_all_percentiles_agree() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(137));
        for p in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile_us(p), 200, "p={p}");
        }
    }

    #[test]
    fn overflow_lands_in_cap_bucket() {
        let mut h = LatencyHistogram::new();
        h.record_us(90_000_000_000); // 25 h
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile_us(0.5), 90_000_000_000);
        assert_eq!(h.max_us(), 90_000_000_000);
    }

    #[test]
    fn bucket_bounds_are_sorted_and_unique() {
        for w in BOUNDS_US.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn exact_summary_order_statistics() {
        let mut samples: Vec<u64> = (1..=100).rev().collect();
        let s = LatencySummary::from_samples_us(&mut samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p95_us, 95);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
        assert!((s.mean_us - 50.5).abs() < 1e-9);
        assert_eq!(LatencySummary::from_samples_us(&mut []).count, 0);
    }

    #[test]
    fn merge_is_exact() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for us in [3, 17, 230] {
            a.record_us(us);
            whole.record_us(us);
        }
        for us in [8, 4_500, 90_000] {
            b.record_us(us);
            whole.record_us(us);
        }
        a.merge(&b);
        assert_eq!(a.summary(), whole.summary());
    }

    #[test]
    fn summary_round_trips_through_json() {
        let mut h = LatencyHistogram::new();
        for us in [3, 17, 230, 4_500] {
            h.record_us(us);
        }
        let s = h.summary();
        let json = serde_json::to_string(&s).unwrap();
        let back: LatencySummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
