//! Tenants: one planning service per warehouse, behind one registry.
//!
//! A [`Tenant`] owns everything one warehouse needs — its engine (via the
//! planner inside a [`PlanningService`]), its commit pipeline (serial or
//! speculative worker pool), its metrics, and its wire-traffic tally —
//! keyed by a [`WarehouseId`]. The [`TenantRegistry`] maps ids to tenants
//! and is the only shared state between warehouses: each tenant has its own
//! bounded queue, worker pool and op-log, so backpressure, deadlines and
//! commit order are all **per tenant**. That isolation is the multi-tenant
//! determinism argument (DESIGN.md §14): a tenant's committed route set is
//! a function of its own admission order alone, so serving W-1 and W-2
//! from one daemon cannot change either one's routes — concurrent tenants
//! only contend for CPU time, never for planner state.
//!
//! The registry deliberately exposes planners only through
//! [`TenantRegistry::remove`], which shuts the tenant's service down and
//! returns the planner as `Box<dyn Any>` for typed recovery — while a
//! tenant is live, *all* traffic goes through its service client (and, one
//! layer up, through the wire protocol).

use crate::service::{PlanningService, ServiceClient, ServiceConfig};
use crate::wal::{TenantJournal, WalJournal};
use carp_warehouse::planner::{Planner, SpeculativePlanner};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Identifies one warehouse served by the daemon ("W-1", "W-2", …).
pub type WarehouseId = String;

/// Monotone per-tenant wire-traffic counters, updated lock-free by the
/// ingest front-end as frames are routed.
#[derive(Debug, Default)]
pub struct WireTally {
    frames_received: AtomicU64,
    frames_sent: AtomicU64,
    bytes_received: AtomicU64,
    bytes_sent: AtomicU64,
    protocol_errors: AtomicU64,
}

impl WireTally {
    /// Count one decoded inbound frame of `bytes` total wire bytes.
    pub fn frame_received(&self, bytes: u64) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Count one encoded outbound frame of `bytes` total wire bytes.
    pub fn frame_sent(&self, bytes: u64) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Count one protocol error attributed to this tenant's traffic.
    pub fn protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time snapshot.
    pub fn snapshot(&self) -> WireCounters {
        WireCounters {
            frames_received: self.frames_received.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// Serializable snapshot of a [`WireTally`] — the per-tenant encode/decode
/// counters reported in `BENCH_service.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireCounters {
    /// Frames decoded from this tenant's clients.
    pub frames_received: u64,
    /// Frames encoded to this tenant's clients.
    pub frames_sent: u64,
    /// Total wire bytes received (headers + payloads).
    pub bytes_received: u64,
    /// Total wire bytes sent (headers + payloads).
    pub bytes_sent: u64,
    /// Protocol errors attributed to this tenant's traffic.
    pub protocol_errors: u64,
}

type PlannerRecovery = Box<dyn FnOnce() -> Box<dyn Any + Send> + Send>;

/// One warehouse: its running planning service plus wire accounting.
pub struct Tenant {
    id: WarehouseId,
    client: ServiceClient,
    wire: Arc<WireTally>,
    /// The tenant's handle on the daemon's changeset journal, when one is
    /// attached — used to seal the tenant's history on deregistration.
    journal: Option<TenantJournal>,
    /// Consumed by [`TenantRegistry::remove`]: shuts the service down and
    /// yields the planner, type-erased (the registry is heterogeneous).
    shutdown: Mutex<Option<PlannerRecovery>>,
}

impl Tenant {
    fn new<P: Planner + Send + 'static>(
        id: WarehouseId,
        svc: PlanningService<P>,
        journal: Option<TenantJournal>,
    ) -> Self {
        let client = svc.client();
        Tenant {
            id,
            client,
            wire: Arc::new(WireTally::default()),
            journal,
            shutdown: Mutex::new(Some(Box::new(move || Box::new(svc.shutdown())))),
        }
    }

    /// The warehouse id this tenant serves.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The tenant's service client — how the ingest front-end reaches its
    /// queue.
    pub fn client(&self) -> &ServiceClient {
        &self.client
    }

    /// The tenant's wire-traffic tally.
    pub fn wire(&self) -> &Arc<WireTally> {
        &self.wire
    }

    fn take_shutdown(&self) -> Option<PlannerRecovery> {
        self.shutdown.lock().expect("tenant shutdown lock").take()
    }
}

/// The daemon's tenant table: `WarehouseId → Tenant`.
#[derive(Default)]
pub struct TenantRegistry {
    tenants: RwLock<BTreeMap<WarehouseId, Arc<Tenant>>>,
    /// The daemon-wide changeset journal; when attached, every tenant
    /// registered afterwards journals its commits through it.
    journal: Mutex<Option<Arc<WalJournal>>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TenantRegistry::default()
    }

    /// Attach the daemon's durable changeset journal. Tenants registered
    /// after this call journal every commit/cancel/advance/revision; call
    /// it before the first `register`.
    pub fn attach_journal(&self, journal: Arc<WalJournal>) {
        *self.journal.lock().expect("registry journal lock") = Some(journal);
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<Arc<WalJournal>> {
        self.journal.lock().expect("registry journal lock").clone()
    }

    fn tenant_journal(&self, id: &str) -> Option<TenantJournal> {
        self.journal()
            .map(|j| TenantJournal::new(j, id))
            .inspect(|j| j.open())
    }

    /// Register a tenant on the serial (single-worker) service.
    ///
    /// # Panics
    /// When `id` is already registered or longer than a wire `str16`.
    pub fn register<P: Planner + Send + 'static>(
        &self,
        id: impl Into<WarehouseId>,
        planner: P,
        config: ServiceConfig,
    ) -> Arc<Tenant> {
        self.insert(id.into(), |j| {
            PlanningService::spawn_journaled(planner, config, j)
        })
    }

    /// Register a tenant on the speculative multi-worker pipeline
    /// (`config.workers` planner threads; serial when `workers <= 1`).
    ///
    /// # Panics
    /// When `id` is already registered or longer than a wire `str16`.
    pub fn register_speculative<P: SpeculativePlanner + Send + 'static>(
        &self,
        id: impl Into<WarehouseId>,
        planner: P,
        config: ServiceConfig,
    ) -> Arc<Tenant> {
        self.insert(id.into(), |j| {
            PlanningService::spawn_speculative_journaled(planner, config, j)
        })
    }

    fn insert<P, F>(&self, id: WarehouseId, spawn: F) -> Arc<Tenant>
    where
        P: Planner + Send + 'static,
        F: FnOnce(Option<TenantJournal>) -> PlanningService<P>,
    {
        assert!(
            u16::try_from(id.len()).is_ok(),
            "tenant id must fit a wire str16"
        );
        let journal = self.tenant_journal(&id);
        let svc = spawn(journal.clone());
        let tenant = Arc::new(Tenant::new(id.clone(), svc, journal));
        let mut map = self.tenants.write().expect("tenant registry lock");
        let prior = map.insert(id.clone(), Arc::clone(&tenant));
        assert!(prior.is_none(), "tenant {id:?} registered twice");
        tenant
    }

    /// Look a tenant up by id.
    pub fn get(&self, id: &str) -> Option<Arc<Tenant>> {
        self.tenants
            .read()
            .expect("tenant registry lock")
            .get(id)
            .cloned()
    }

    /// Registered warehouse ids, sorted.
    pub fn ids(&self) -> Vec<WarehouseId> {
        self.tenants
            .read()
            .expect("tenant registry lock")
            .keys()
            .cloned()
            .collect()
    }

    /// Deregister `id`, shut its service down (draining the queue), and
    /// return the planner type-erased; `downcast` it to the concrete type
    /// for post-run inspection. `None` when the id is unknown.
    ///
    /// Connections still holding the tenant's `Arc` observe
    /// shutting-down acks from its client — the registry drops its entry
    /// first, so new lookups fail fast.
    pub fn remove(&self, id: &str) -> Option<Box<dyn Any + Send>> {
        let tenant = self
            .tenants
            .write()
            .expect("tenant registry lock")
            .remove(id)?;
        let recover = tenant
            .take_shutdown()
            .expect("tenant shutdown ran twice — registry entry was duplicated");
        let planner = recover();
        // Journal the close only after the service drained: every commit
        // the tenant ever made is on disk before its close record.
        if let Some(j) = &tenant.journal {
            j.close();
        }
        Some(planner)
    }

    /// Drain every tenant — shut each service down in id order, dropping
    /// the recovered planners — then seal the journal (final fsync). The
    /// graceful-shutdown path of the daemon's SIGTERM handling; returns
    /// how many tenants were drained.
    pub fn drain_all(&self) -> usize {
        let mut drained = 0;
        for id in self.ids() {
            if self.remove(&id).is_some() {
                drained += 1;
            }
        }
        if let Some(j) = self.journal() {
            j.seal();
        }
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carp_warehouse::planner::{PlanOutcome, Planner};
    use carp_warehouse::request::{Request, RequestId};
    use carp_warehouse::route::Route;
    use carp_warehouse::types::Time;

    struct Echo;

    impl Planner for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn plan(&mut self, req: &Request) -> PlanOutcome {
            PlanOutcome::Planned(Route::stationary(req.t, req.origin))
        }
        fn advance(&mut self, _now: Time) -> Vec<(RequestId, Route)> {
            Vec::new()
        }
        fn cancel(&mut self, _id: RequestId) -> bool {
            false
        }
        fn memory_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn register_lookup_remove_cycle() {
        let reg = TenantRegistry::new();
        reg.register("W-1", Echo, ServiceConfig::default());
        reg.register("W-2", Echo, ServiceConfig::default());
        assert_eq!(reg.ids(), vec!["W-1".to_string(), "W-2".to_string()]);
        assert!(reg.get("W-1").is_some());
        assert!(reg.get("W-9").is_none());

        let planner = reg.remove("W-1").expect("registered");
        assert!(planner.downcast::<Echo>().is_ok());
        assert!(reg.get("W-1").is_none());
        assert!(reg.remove("W-1").is_none());
        reg.remove("W-2").expect("registered");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let reg = TenantRegistry::new();
        let _t1 = reg.register("W-1", Echo, ServiceConfig::default());
        let _t2 = reg.register("W-1", Echo, ServiceConfig::default());
    }

    #[test]
    fn tally_snapshot_counts() {
        let tally = WireTally::default();
        tally.frame_received(20);
        tally.frame_received(30);
        tally.frame_sent(12);
        tally.protocol_error();
        let snap = tally.snapshot();
        assert_eq!(snap.frames_received, 2);
        assert_eq!(snap.bytes_received, 50);
        assert_eq!(snap.frames_sent, 1);
        assert_eq!(snap.bytes_sent, 12);
        assert_eq!(snap.protocol_errors, 1);
    }
}
