//! Serializable load-run reports — the `BENCH_service.json` schema.
//!
//! One [`LoadReport`] per (scenario, rate) run; a [`ServiceBenchReport`]
//! bundles the runs of one invocation. The schema is versioned so the CI
//! artifact trail stays parseable as fields accrue.

use crate::loadgen::LoadScenario;
use crate::service::ServiceMetrics;
use crate::tenant::WireCounters;
use carp_warehouse::planner::EngineMetrics;
use carp_warehouse::request::RequestId;
use carp_warehouse::route::Route;
use carp_warehouse::types::Time;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Current `BENCH_service.json` schema version.
///
/// v2: `service` gained `workers`, `speculation_{wins,retries,aborts}`,
/// and the per-stage `queue_latency` / `commit_latency` summaries from the
/// speculative commit pipeline.
///
/// v3: runs are per-tenant — each gained `tenant` (the warehouse id the
/// run was served under) and `wire` (the tenant's frame/byte encode-decode
/// counters), now that all loadgen traffic flows through the wire
/// protocol.
pub const BENCH_VERSION: u32 = 3;

/// Result of one load run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadReport {
    /// Scenario label ("W-2" …).
    pub scenario: String,
    /// Warehouse id the run was served under on the daemon.
    pub tenant: String,
    /// Arrival-rate multiplier the day was compressed by.
    pub rate_multiplier: f64,
    /// Task-stream RNG seed.
    pub seed: u64,
    /// Tasks in the stream.
    pub tasks: usize,
    /// Tasks whose three legs all completed.
    pub completed: usize,
    /// Planning requests submitted (including retries).
    pub requests: usize,
    /// Leg requests abandoned after exhausting retries.
    pub failed_requests: usize,
    /// Requests refused by the service (deadline shed/overrun), before
    /// retries; backpressure rejections are counted separately since those
    /// submissions never entered the queue.
    pub refused_requests: usize,
    /// Submission attempts bounced by backpressure and retried.
    pub backpressure_retries: u64,
    /// Refusal rate over all submission attempts (see
    /// [`ServiceMetrics::refusal_rate`]).
    pub refusal_rate: f64,
    /// Audited conflicts across the committed route set (must be 0).
    pub audit_conflicts: usize,
    /// Makespan of the committed route set (sim-time).
    pub makespan: Time,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Planned routes per wall-clock second.
    pub throughput_rps: f64,
    /// FNV-1a digest over the final committed route set, sorted by request
    /// id — two runs with the same seed and rate must produce the same
    /// digest (the determinism pin the CI job checks).
    pub routes_digest: u64,
    /// Full service metrics snapshot (queue, latency percentiles,
    /// counters), fetched through the wire (`MetricsQuery`).
    pub service: ServiceMetrics,
    /// Per-tenant wire traffic: frames/bytes encoded and decoded for this
    /// tenant, plus protocol errors attributed to it.
    pub wire: WireCounters,
    /// Engine counters read from the planner after shutdown (the service
    /// snapshot holds the last mid-run view; this is the final one).
    pub engine: Option<EngineMetrics>,
}

impl LoadReport {
    /// Assemble a report from a finished run's raw pieces.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build(
        scenario: &LoadScenario,
        tenant: String,
        final_routes: &HashMap<RequestId, Route>,
        service: ServiceMetrics,
        wire: WireCounters,
        engine: Option<EngineMetrics>,
        wall_secs: f64,
        completed: usize,
        failed_requests: usize,
        refused_requests: usize,
        backpressure_retries: u64,
        audit_conflicts: usize,
        makespan: Time,
    ) -> Self {
        let throughput_rps = if wall_secs > 0.0 {
            service.planned as f64 / wall_secs
        } else {
            0.0
        };
        LoadReport {
            scenario: scenario.name.clone(),
            tenant,
            rate_multiplier: scenario.rate_multiplier,
            seed: scenario.seed,
            tasks: scenario.tasks.len(),
            completed,
            requests: service.submitted as usize,
            failed_requests,
            refused_requests,
            backpressure_retries,
            refusal_rate: service.refusal_rate(),
            audit_conflicts,
            makespan,
            wall_secs,
            throughput_rps,
            routes_digest: routes_digest(final_routes),
            service,
            wire,
            engine,
        }
    }
}

/// The `BENCH_service.json` top-level document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceBenchReport {
    /// Schema version ([`BENCH_VERSION`]).
    pub version: u32,
    /// One entry per (scenario, rate) run, in execution order.
    pub runs: Vec<LoadReport>,
}

impl ServiceBenchReport {
    /// Bundle runs under the current schema version.
    pub fn new(runs: Vec<LoadReport>) -> Self {
        ServiceBenchReport {
            version: BENCH_VERSION,
            runs,
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parse a report document.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Total audited conflicts across all runs (the CI gate).
    pub fn total_audit_conflicts(&self) -> usize {
        self.runs.iter().map(|r| r.audit_conflicts).sum()
    }
}

/// The `BENCH_service_recovery.json` document: one crash-recovery bench —
/// the same day driven three ways (WAL off, WAL on, kill + standby
/// takeover) so the WAL's commit-latency overhead and the recovery path's
/// bit-identity are measured side by side.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryBenchReport {
    /// Schema version (shares [`BENCH_VERSION`]).
    pub version: u32,
    /// Scenario label the three legs share.
    pub scenario: String,
    /// Sim time of the first burst the standby drove.
    pub killed_at: Time,
    /// Changeset records the standby replayed on takeover.
    pub records_replayed: usize,
    /// Bytes truncated off the injected torn tail (0 = clean log).
    pub torn_tail_dropped: u64,
    /// Standby-side journal stats at end of day.
    pub wal_stats: crate::wal::WalStats,
    /// All three legs committed the identical route set (the CI gate).
    pub digests_match: bool,
    /// Baseline leg: no journal attached.
    pub wal_off: LoadReport,
    /// WAL-on leg: journaled but uninterrupted.
    pub wal_on: LoadReport,
    /// Recovery leg: killed at `killed_at`, finished by the standby.
    /// Its service/wire metrics cover only the standby's half of the day.
    pub recovered: LoadReport,
    /// The primary's metrics scraped just before the kill (the other half
    /// of the recovery leg's serving record).
    pub primary: ServiceMetrics,
}

impl RecoveryBenchReport {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parse a report document.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Audited conflicts summed over all three legs (the CI gate).
    pub fn total_audit_conflicts(&self) -> usize {
        self.wal_off.audit_conflicts + self.wal_on.audit_conflicts + self.recovered.audit_conflicts
    }
}

/// The `BENCH_service_replication.json` document: a kill-primary failover
/// **over the wire** — the same day driven twice, once uninterrupted
/// in-process (the digest reference) and once over real TCP against the
/// event-loop front-end with a network standby tailing the changeset log
/// live (`TailLog`/`LogChunk`); the primary is killed mid-day and the
/// standby, rebuilt purely from its shipped copy, serves the rest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicationBenchReport {
    /// Schema version (shares [`BENCH_VERSION`]).
    pub version: u32,
    /// Scenario label both legs share.
    pub scenario: String,
    /// Sim time of the first burst the standby drove.
    pub killed_at: Time,
    /// Changeset records the standby had received over the wire at
    /// takeover (its entire replay input).
    pub records_shipped: usize,
    /// Shipping lag at the kill signal: primary log sequence minus the
    /// highest sequence the standby had applied. With the driver paused at
    /// a burst boundary this is in-flight TCP only — near zero.
    pub staleness_records: u64,
    /// Wall-clock milliseconds from the kill signal until the standby was
    /// serving (audit + epoch bump + planner replay + re-listen).
    pub takeover_ms: f64,
    /// Leadership epoch the standby fenced the log to on takeover.
    pub takeover_epoch: u64,
    /// Stale-epoch appends the standby's journal refused after takeover
    /// (the resurrected-primary fence; the bench provokes at least one).
    pub fenced_appends: u64,
    /// The failover leg's committed route set is bit-identical to the
    /// uninterrupted baseline's (the CI gate).
    pub digests_match: bool,
    /// Uninterrupted in-process leg — the digest reference.
    pub baseline: LoadReport,
    /// Failover leg over TCP; its report spans the whole day, its
    /// service/wire metrics only the standby's half.
    pub replicated: LoadReport,
    /// The primary's metrics scraped just before the kill (the other half
    /// of the failover leg's serving record).
    pub primary: ServiceMetrics,
    /// Standby-side journal stats at end of day (shipped + appended).
    pub wal_stats: crate::wal::WalStats,
}

impl ReplicationBenchReport {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parse a report document.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Audited conflicts summed over both legs (the CI gate).
    pub fn total_audit_conflicts(&self) -> usize {
        self.baseline.audit_conflicts + self.replicated.audit_conflicts
    }
}

/// Serializable snapshot of the mux reactor counters
/// ([`MuxMetrics`](crate::mux::MuxMetrics) on unix); lands in
/// `BENCH_service_mux.json`. Defined here rather than in the (unix-only)
/// `mux` module so reports stay parseable on every platform.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MuxCounters {
    /// Client sockets currently registered with a reactor.
    pub registered: u64,
    /// High-water mark of concurrently registered sockets.
    pub peak_registered: u64,
    /// Connections ever accepted.
    pub accepted: u64,
    /// `poll(2)` calls issued.
    pub polls: u64,
    /// `poll(2)` returns with at least one ready descriptor.
    pub wakeups: u64,
    /// Wakeups delivered through the self-pipe (ticket completions and
    /// acceptor nudges, as opposed to socket readiness).
    pub pipe_wakeups: u64,
    /// Socket drains that left a partial frame buffered in the decoder —
    /// frames reassembled across reads.
    pub partial_reads: u64,
    /// Flushes that could not push the whole write buffer out (short write
    /// or `EWOULDBLOCK`) — replies reassembled across writes by the peer.
    pub partial_writes: u64,
    /// Largest ready set a single `poll(2)` return delivered.
    pub max_ready_set: u64,
    /// Frames decoded from clients.
    pub frames_in: u64,
    /// Frames queued toward clients.
    pub frames_out: u64,
}

/// One rung of the connection ladder: the measured tenant's day driven over
/// one mux connection while `churn_connections` extra sockets hammer a
/// churn tenant on the same reactor pool.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConnLadderRung {
    /// Total concurrent connections held open during the driver's day
    /// (1 driver + churn).
    pub connections: usize,
    /// Churn connections (0 on the baseline rung).
    pub churn_connections: usize,
    /// Submit → ack latency observed by the driver connection, client-side
    /// (the acceptance metric: admission must not degrade with fan-in).
    pub driver_ack: crate::histogram::LatencySummary,
    /// Submit → ack latency observed across the churn connections.
    pub churn_ack: crate::histogram::LatencySummary,
    /// Requests the churn connections submitted (and cancelled).
    pub churn_requests: u64,
    /// Digest of the measured tenant's committed route set — must equal
    /// the legacy single-connection baseline digest at every rung.
    pub routes_digest: u64,
    /// Audited conflicts in the measured tenant's committed set (must be 0).
    pub audit_conflicts: usize,
    /// Wall-clock seconds for the rung.
    pub wall_secs: f64,
    /// Reactor counters accumulated during the rung.
    pub mux: MuxCounters,
}

/// The `BENCH_service_mux.json` document: a connection-count ladder over
/// the event-loop front-end, digest-gated against the legacy
/// thread-per-connection path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MuxBenchReport {
    /// Schema version (shares [`BENCH_VERSION`]).
    pub version: u32,
    /// Scenario label of the measured tenant's day.
    pub scenario: String,
    /// Reactor threads serving every rung.
    pub mux_threads: usize,
    /// Digest of the same day driven through the legacy blocking
    /// thread-per-connection path — the conformance reference.
    pub baseline_digest: u64,
    /// Every rung's digest equals `baseline_digest` (the CI gate).
    pub digests_match: bool,
    /// One entry per tested connection count, ascending.
    pub rungs: Vec<ConnLadderRung>,
}

impl MuxBenchReport {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parse a report document.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Audited conflicts summed over all rungs (the CI gate).
    pub fn total_audit_conflicts(&self) -> usize {
        self.rungs.iter().map(|r| r.audit_conflicts).sum()
    }

    /// Worst driver ack p99 across rungs as a multiple of the first
    /// (1-connection) rung's p99 — the "within 2× of baseline" acceptance
    /// check. `None` with fewer than two rungs or a zero baseline.
    pub fn worst_driver_p99_ratio(&self) -> Option<f64> {
        let base = self.rungs.first()?.driver_ack.p99_us;
        if base == 0 || self.rungs.len() < 2 {
            return None;
        }
        self.rungs[1..]
            .iter()
            .map(|r| r.driver_ack.p99_us as f64 / base as f64)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }
}

/// Order-independent digest of a committed route set: FNV-1a over
/// `(id, start, cells…)` of every route, visited in ascending id order.
pub fn routes_digest(routes: &HashMap<RequestId, Route>) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut ids: Vec<&RequestId> = routes.keys().collect();
    ids.sort_unstable();
    let mut h = FNV_OFFSET;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for id in ids {
        let r = &routes[id];
        eat(*id);
        eat(u64::from(r.start));
        for c in &r.grids {
            eat((u64::from(c.row) << 32) | u64::from(c.col));
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use carp_warehouse::types::Cell;

    fn route(start: Time, cols: core::ops::Range<u16>) -> Route {
        Route::new(start, cols.map(|c| Cell::new(0, c)).collect())
    }

    #[test]
    fn digest_is_order_independent_but_content_sensitive() {
        let mut a = HashMap::new();
        a.insert(1u64, route(0, 0..5));
        a.insert(2u64, route(3, 5..9));
        let mut b = HashMap::new();
        b.insert(2u64, route(3, 5..9));
        b.insert(1u64, route(0, 0..5));
        assert_eq!(routes_digest(&a), routes_digest(&b));
        b.insert(3u64, route(7, 2..4));
        assert_ne!(routes_digest(&a), routes_digest(&b));
        let mut c = HashMap::new();
        c.insert(1u64, route(1, 0..5)); // shifted start
        c.insert(2u64, route(3, 5..9));
        assert_ne!(routes_digest(&a), routes_digest(&c));
    }

    #[test]
    fn empty_digest_is_stable() {
        assert_eq!(
            routes_digest(&HashMap::new()),
            routes_digest(&HashMap::new())
        );
    }
}
