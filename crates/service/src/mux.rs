//! Readiness-driven event-loop front-end: the multiplexed replacement for
//! the thread-per-connection ingest path (DESIGN.md §16).
//!
//! ```text
//!                    ┌─ reactor 0 ─ poll(2) over { self-pipe, conns… } ─┐
//!  acceptor thread ─▶│  reactor 1    nonblocking reads → FrameDecoder   │─▶ TenantRegistry
//!  (round-robin)     └─ reactor N    write buffers ← resolved tickets ──┘   (unchanged)
//! ```
//!
//! The legacy path ([`crate::ingest::serve_connection`]) spends two OS
//! threads per connection; the wall for the daemon then is connection
//! *count*, not planning throughput. This module keeps every protocol
//! invariant of that path while serving all sockets from a small fixed pool
//! of reactor threads:
//!
//! * **Admission order** — each connection is owned by exactly one reactor,
//!   which decodes and dispatches its frames strictly in arrival order, so
//!   per-connection admission order (and therefore each tenant's commit
//!   order and committed route set) is byte-for-byte what the blocking
//!   reader produced. Acks are generated synchronously at admission, in
//!   frame order, into the connection's write buffer.
//! * **Reply order** — plan and control replies resolve through a FIFO
//!   per-connection pending queue (the reactor polls only the queue head),
//!   mirroring the legacy reply pump's strict admission-order ticket wait.
//! * **Nothing blocks the loop** — submits use the nonblocking
//!   [`ServiceClient::submit_with_waker`], clock advances and cancels the
//!   deferred [`ServiceClient::advance_deferred`] /
//!   [`ServiceClient::cancel_deferred`] variants, and each resolved reply
//!   nudges the reactor through a self-pipe waker so `poll(2)` wakes the
//!   instant a ticket is answerable (a short timeout backstops the one case
//!   where no waker fires: a worker that died mid-request).
//! * **Rate limiting and drain** — the per-connection token bucket runs
//!   per inbound frame before any tenant lookup, exactly as in
//!   [`crate::ingest`]; on shutdown the acceptor stops, reactors stop
//!   reading, flush what the tenants still owe (bounded by
//!   [`MuxConfig::drain_grace`]), and [`serve_tcp_mux`] returns so the
//!   caller can [`TenantRegistry::drain_all`] and seal the WAL — the same
//!   drain contract as [`crate::ingest::serve_tcp_graceful`].
//!
//! The reactor is hand-rolled on `poll(2)` through a single-declaration FFI
//! shim ([`sys`]) — no event-loop dependency, no `libc` crate. This module
//! is the only code in the crate allowed to contain `unsafe` (the crate
//! root is `#![deny(unsafe_code)]`; the shim opts in locally).
//!
//! [`TenantRegistry::drain_all`]: crate::tenant::TenantRegistry::drain_all

use crate::ingest::{RateLimit, TokenBucket};
use crate::report::MuxCounters;
use crate::service::{ControlReply, SubmitError, Ticket, WakeFn};
use crate::tenant::{Tenant, TenantRegistry};
use crate::wal::record::{encode_record, ChangeRecord};
use crate::wal::{LogSubscription, WalJournal};
use crate::wire::frame::{frame_len, write_frame, FrameDecoder, FrameKind, WireError};
use crate::wire::schema::{self, AckStatus, ErrorCode};
use carp_warehouse::request::RequestId;
use carp_warehouse::route::Route;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The `poll(2)` system-call shim: one extern declaration and one safe
/// wrapper. Kept to the smallest possible unsafe surface — the pointer and
/// length handed to the kernel come straight from a live `&mut [PollFd]`.
#[allow(unsafe_code)]
mod sys {
    use std::io;

    /// There is data to read.
    pub const POLLIN: i16 = 0x001;
    /// Writing now will not block.
    pub const POLLOUT: i16 = 0x004;
    /// Error condition (revents only).
    pub const POLLERR: i16 = 0x008;
    /// Peer hung up (revents only).
    pub const POLLHUP: i16 = 0x010;
    /// Invalid fd (revents only).
    pub const POLLNVAL: i16 = 0x020;

    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    pub struct PollFd {
        /// File descriptor to watch.
        pub fd: i32,
        /// Requested events.
        pub events: i16,
        /// Returned events.
        pub revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: i32) -> i32;
    }

    /// Block up to `timeout_ms` for readiness on `fds`; returns how many
    /// entries have non-zero `revents`. `EINTR` reads as zero ready — the
    /// caller's loop re-polls, which is the behaviour a signal wants.
    pub fn poll_fds(fds: &mut [super::sys::PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `fds` is a live, exclusively borrowed slice; the kernel
        // writes only within `fds.len()` entries, and only to `revents`.
        let rc = unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as core::ffi::c_ulong,
                timeout_ms,
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            return if err.kind() == io::ErrorKind::Interrupted {
                Ok(0)
            } else {
                Err(err)
            };
        }
        Ok(rc as usize)
    }
}

/// How long the reactor sleeps in `poll(2)` when nothing is ready. Purely a
/// backstop: real work arrives via socket readiness or the self-pipe waker;
/// the timeout only bounds how long a ticket whose worker died without
/// waking us (panic) waits before the `ServiceDied` answer is noticed.
const POLL_TIMEOUT: Duration = Duration::from_millis(25);

/// Soft cap on the raw-record bytes packed into one shipped `LogChunk`.
/// A standby catching up from `seq=1` would otherwise receive the whole
/// log as a single frame; splitting near 1 MiB keeps every chunk far
/// below [`crate::wire::MAX_PAYLOAD`] and lets the reactor interleave
/// other connections' replies between chunks of a large catch-up.
const TAIL_CHUNK_BYTES: usize = 1 << 20;

/// Reactor pool configuration for [`serve_tcp_mux`].
#[derive(Debug, Clone, Copy)]
pub struct MuxConfig {
    /// Reactor threads sharing the connections (the fixed worker pool);
    /// normalized up to 1.
    pub threads: usize,
    /// Optional per-connection token-bucket rate limit — same semantics as
    /// [`crate::ingest::serve_connection_limited`].
    pub rate_limit: Option<RateLimit>,
    /// On shutdown, how long reactors keep resolving and flushing replies
    /// the tenants still owe before closing the remaining connections.
    /// Bounds daemon exit time when clients hold connections open.
    pub drain_grace: Duration,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            threads: 2,
            rate_limit: None,
            drain_grace: Duration::from_secs(1),
        }
    }
}

/// Shared reactor counters, updated lock-free by the acceptor and every
/// reactor thread; snapshot with [`MuxMetrics::snapshot`].
#[derive(Debug, Default)]
pub struct MuxMetrics {
    registered: AtomicU64,
    peak_registered: AtomicU64,
    accepted: AtomicU64,
    polls: AtomicU64,
    wakeups: AtomicU64,
    pipe_wakeups: AtomicU64,
    partial_reads: AtomicU64,
    partial_writes: AtomicU64,
    max_ready_set: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
}

impl MuxMetrics {
    fn register(&self) {
        let now = self.registered.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_registered.fetch_max(now, Ordering::Relaxed);
    }

    fn deregister(&self, n: u64) {
        self.registered.fetch_sub(n, Ordering::Relaxed);
    }

    /// Point-in-time serializable snapshot.
    pub fn snapshot(&self) -> MuxCounters {
        MuxCounters {
            registered: self.registered.load(Ordering::Relaxed),
            peak_registered: self.peak_registered.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            polls: self.polls.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            pipe_wakeups: self.pipe_wakeups.load(Ordering::Relaxed),
            partial_reads: self.partial_reads.load(Ordering::Relaxed),
            partial_writes: self.partial_writes.load(Ordering::Relaxed),
            max_ready_set: self.max_ready_set.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
        }
    }
}

/// Self-pipe write end; `wake` is safe from any thread and coalesces —
/// a full pipe means a wakeup is already pending, which is all we need.
struct WakePipe {
    tx: UnixStream,
}

impl WakePipe {
    fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// A reply the connection still owes its client, queued in frame order.
/// The reactor resolves strictly from the front: plan replies therefore
/// stream in admission order and control replies slot into the exact
/// position their request frame had — the same observable order a blocking
/// per-connection reader + reply pump produced.
enum Pending {
    /// An admitted submit awaiting its terminal plan answer.
    Plan {
        tenant: Arc<Tenant>,
        rid: RequestId,
        ticket: Ticket,
    },
    /// A deferred clock advance awaiting its revision batch.
    Advance {
        tenant: Arc<Tenant>,
        reply: ControlReply<Vec<(RequestId, Route)>>,
    },
    /// A deferred cancel awaiting its verdict.
    Cancel {
        tenant: Arc<Tenant>,
        reply: ControlReply<bool>,
    },
}

/// A connection's live WAL-shipping subscription: the journal it tails
/// (for the epoch stamped into each chunk) and the queue the journal's
/// append path pushes committed records into.
struct TailConn {
    journal: Arc<WalJournal>,
    sub: LogSubscription,
}

/// One registered client connection and its reassembly state.
struct Conn {
    stream: TcpStream,
    peer: String,
    decoder: FrameDecoder,
    /// Bytes queued toward the client, flushed as the socket accepts them.
    out: Vec<u8>,
    pending: VecDeque<Pending>,
    bucket: Option<TokenBucket>,
    /// Live log-tail subscription, when the client sent `TailLog`.
    tail: Option<TailConn>,
    /// No more frames will be read (EOF, decode error, or drain mode);
    /// the connection stays registered until its owed replies flush.
    read_closed: bool,
    /// Transport is broken; reap immediately.
    dead: bool,
}

impl Conn {
    fn wants_events(&self) -> i16 {
        let mut ev = 0i16;
        if !self.read_closed {
            ev |= sys::POLLIN;
        }
        if !self.out.is_empty() {
            ev |= sys::POLLOUT;
        }
        ev
    }

    /// Stop reading this connection (protocol error or EOF mid-frame): the
    /// legacy reader severed its loop at this point while the reply pump
    /// kept draining owed tickets — mirrored here by keeping the connection
    /// registered until `pending` and `out` empty.
    fn fail_read(&mut self) {
        self.read_closed = true;
        self.decoder = FrameDecoder::new();
    }
}

/// Immutable per-reactor context shared by the frame handlers.
struct Ctx {
    registry: Arc<TenantRegistry>,
    metrics: Arc<MuxMetrics>,
    /// Completion waker handed to every tenant submission from this
    /// reactor; fires the reactor's own self-pipe.
    wake: WakeFn,
}

struct Reactor {
    ctx: Ctx,
    conns: Vec<Conn>,
    inbox: Arc<Mutex<Vec<(TcpStream, String)>>>,
    wake_rx: UnixStream,
    shutdown: Arc<AtomicBool>,
    rate_limit: Option<RateLimit>,
    drain_grace: Duration,
    /// Event-sweep start offset, advanced every iteration (fairness).
    rotor: usize,
}

impl Reactor {
    fn run(mut self) {
        let mut drain_deadline: Option<Instant> = None;
        let mut scratch = [0u8; 16 * 1024];
        loop {
            self.take_incoming(drain_deadline.is_some());
            if drain_deadline.is_none() && self.shutdown.load(Ordering::SeqCst) {
                // Drain mode: admit nothing new, settle what is owed.
                drain_deadline = Some(Instant::now() + self.drain_grace);
                for conn in &mut self.conns {
                    conn.fail_read();
                }
            }
            for conn in &mut self.conns {
                Self::resolve_pending(&self.ctx, conn);
                Self::pump_tail(&self.ctx, conn);
                Self::flush(&self.ctx.metrics, conn);
            }
            self.reap();
            if let Some(deadline) = drain_deadline {
                if self.conns.is_empty() || Instant::now() >= deadline {
                    self.ctx.metrics.deregister(self.conns.len() as u64);
                    return;
                }
            }

            let mut fds = Vec::with_capacity(self.conns.len() + 1);
            fds.push(sys::PollFd {
                fd: self.wake_rx.as_raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            });
            for conn in &self.conns {
                fds.push(sys::PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events: conn.wants_events(),
                    revents: 0,
                });
            }
            let timeout = POLL_TIMEOUT.as_millis() as i32;
            let ready = match sys::poll_fds(&mut fds, timeout) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("carp-service: mux poll failed: {e}");
                    self.ctx.metrics.deregister(self.conns.len() as u64);
                    return;
                }
            };
            let m = &self.ctx.metrics;
            m.polls.fetch_add(1, Ordering::Relaxed);
            if ready > 0 {
                m.wakeups.fetch_add(1, Ordering::Relaxed);
                m.max_ready_set.fetch_max(ready as u64, Ordering::Relaxed);
            }
            if fds[0].revents & sys::POLLIN != 0 {
                m.pipe_wakeups.fetch_add(1, Ordering::Relaxed);
                self.drain_wake_pipe(&mut scratch);
            }
            // Rotate where the sweep starts: with a fixed order, the conn
            // registered last waits behind every other ready socket on
            // every single wakeup, and its ack tail latency grows linearly
            // with fan-in. Rotation makes the wait positional-average.
            let n = self.conns.len();
            let start = if n == 0 { 0 } else { self.rotor % n };
            self.rotor = self.rotor.wrapping_add(1);
            for j in 0..n {
                let i = (start + j) % n;
                let conn = &mut self.conns[i];
                let re = fds[i + 1].revents;
                if re == 0 {
                    continue;
                }
                if re & sys::POLLNVAL != 0 {
                    conn.dead = true;
                    continue;
                }
                // HUP/ERR still allow draining whatever the kernel buffered
                // before the peer vanished; the read path surfaces the
                // EOF/error itself.
                if re & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0 && !conn.read_closed {
                    Self::read_conn(&self.ctx, conn, &mut scratch);
                    // Acks are generated synchronously at admission; push
                    // them onto the wire before touching the next ready
                    // socket, so one connection's burst doesn't tax every
                    // other connection's ack latency.
                    Self::flush(&self.ctx.metrics, conn);
                } else if re & (sys::POLLHUP | sys::POLLERR) != 0 && conn.read_closed {
                    // The read side is already severed, so no arm above will
                    // consume this condition — without this arm a peer that
                    // vanished with replies still owed (POLLERR from an RST,
                    // POLLHUP) is re-reported by every subsequent poll(2):
                    // a busy loop, and a leaked fd if the owed ticket never
                    // resolves. The transport is gone both ways; try one
                    // last flush (it marks `dead` itself on failure) and
                    // reap regardless.
                    Self::flush(&self.ctx.metrics, conn);
                    conn.dead = true;
                }
                if re & sys::POLLOUT != 0 {
                    Self::flush(&self.ctx.metrics, conn);
                }
            }
        }
    }

    fn take_incoming(&mut self, draining: bool) {
        let fresh = {
            let mut inbox = self.inbox.lock().expect("mux inbox lock");
            std::mem::take(&mut *inbox)
        };
        for (stream, peer) in fresh {
            if stream.set_nonblocking(true).is_err() {
                continue; // socket already dead; never registered
            }
            let _ = stream.set_nodelay(true);
            self.ctx.metrics.register();
            let mut conn = Conn {
                stream,
                peer,
                decoder: FrameDecoder::new(),
                out: Vec::new(),
                pending: VecDeque::new(),
                bucket: self.rate_limit.map(TokenBucket::new),
                tail: None,
                read_closed: false,
                dead: false,
            };
            if draining {
                conn.fail_read();
            }
            self.conns.push(conn);
        }
    }

    fn drain_wake_pipe(&mut self, scratch: &mut [u8]) {
        loop {
            match (&self.wake_rx).read(scratch) {
                Ok(0) => return, // all write ends dropped; nothing to drain
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Drain the socket until `EWOULDBLOCK`/EOF, handing every complete
    /// frame to the dispatcher in arrival order.
    fn read_conn(ctx: &Ctx, conn: &mut Conn, scratch: &mut [u8]) {
        loop {
            match conn.stream.read(scratch) {
                Ok(0) => {
                    // EOF: judge the frame boundary like the blocking path.
                    if conn.decoder.finish().is_err() {
                        eprintln!("carp-service: {}: {}", conn.peer, WireError::Truncated);
                    }
                    conn.fail_read();
                    break;
                }
                Ok(n) => {
                    conn.decoder.push(&scratch[..n]);
                    loop {
                        match conn.decoder.next_frame() {
                            Ok(Some((kind, payload))) => {
                                if let Err(e) = Self::handle_frame(ctx, conn, kind, &payload) {
                                    eprintln!("carp-service: {}: {e}", conn.peer);
                                    conn.fail_read();
                                    break;
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                eprintln!("carp-service: {}: {e}", conn.peer);
                                conn.fail_read();
                                break;
                            }
                        }
                    }
                    if conn.read_closed {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if conn.decoder.buffered() > 0 {
                        ctx.metrics.partial_reads.fetch_add(1, Ordering::Relaxed);
                    }
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    eprintln!("carp-service: {}: {}", conn.peer, WireError::from(e));
                    conn.dead = true;
                    break;
                }
            }
        }
    }

    /// Dispatch one inbound frame — the nonblocking mirror of the legacy
    /// `read_loop` arm for arm: same rate-limit-first order, same tenant
    /// tallies, same ack statuses, same typed error replies.
    fn handle_frame(
        ctx: &Ctx,
        conn: &mut Conn,
        kind: FrameKind,
        payload: &[u8],
    ) -> Result<(), WireError> {
        ctx.metrics.frames_in.fetch_add(1, Ordering::Relaxed);
        if let Some(retry_after) = conn.bucket.as_mut().and_then(|b| b.try_take().err()) {
            if kind == FrameKind::Submit {
                let (_tenant, request) = schema::decode_submit(payload)?;
                let ack =
                    schema::encode_submit_ack(request.id, AckStatus::Throttled { retry_after });
                Self::queue_frame(ctx, conn, None, FrameKind::SubmitAck, &ack);
            } else {
                let reply = schema::encode_error_reply(
                    ErrorCode::Throttled,
                    "connection rate limit exceeded",
                );
                Self::queue_frame(ctx, conn, None, FrameKind::ErrorReply, &reply);
            }
            return Ok(());
        }
        let wire_bytes = frame_len(payload.len());
        match kind {
            FrameKind::Submit => {
                let (tenant_id, request) = schema::decode_submit(payload)?;
                let Some(tenant) = ctx.registry.get(tenant_id) else {
                    let ack = schema::encode_submit_ack(request.id, AckStatus::UnknownTenant);
                    Self::queue_frame(ctx, conn, None, FrameKind::SubmitAck, &ack);
                    return Ok(());
                };
                tenant.wire().frame_received(wire_bytes);
                let rid = request.id;
                let status = match tenant
                    .client()
                    .submit_with_waker(request, Some(Arc::clone(&ctx.wake)))
                {
                    Ok(ticket) => {
                        conn.pending.push_back(Pending::Plan {
                            tenant: Arc::clone(&tenant),
                            rid,
                            ticket,
                        });
                        AckStatus::Accepted
                    }
                    Err(SubmitError::Backpressure {
                        retry_after,
                        queue_depth,
                    }) => AckStatus::Backpressure {
                        retry_after,
                        queue_depth,
                    },
                    Err(SubmitError::ShuttingDown) => AckStatus::ShuttingDown,
                };
                let ack = schema::encode_submit_ack(rid, status);
                Self::queue_frame(ctx, conn, Some(&tenant), FrameKind::SubmitAck, &ack);
            }
            FrameKind::Advance => {
                let (tenant_id, now) = schema::decode_advance(payload)?;
                let Some(tenant) = Self::lookup(ctx, conn, tenant_id) else {
                    return Ok(());
                };
                tenant.wire().frame_received(wire_bytes);
                let reply = tenant
                    .client()
                    .advance_deferred(now, Some(Arc::clone(&ctx.wake)));
                conn.pending.push_back(Pending::Advance { tenant, reply });
            }
            FrameKind::Cancel => {
                let (tenant_id, id) = schema::decode_cancel(payload)?;
                let Some(tenant) = Self::lookup(ctx, conn, tenant_id) else {
                    return Ok(());
                };
                tenant.wire().frame_received(wire_bytes);
                let reply = tenant
                    .client()
                    .cancel_deferred(id, Some(Arc::clone(&ctx.wake)));
                conn.pending.push_back(Pending::Cancel { tenant, reply });
            }
            FrameKind::MetricsQuery => {
                let tenant_id = schema::decode_metrics_query(payload)?;
                let Some(tenant) = Self::lookup(ctx, conn, tenant_id) else {
                    return Ok(());
                };
                tenant.wire().frame_received(wire_bytes);
                let metrics = tenant.client().metrics();
                let wire = tenant.wire().snapshot();
                let reply = schema::encode_metrics_reply(&metrics, &wire);
                Self::queue_frame(ctx, conn, Some(&tenant), FrameKind::MetricsReply, &reply);
            }
            FrameKind::TailLog => {
                let from_seq = schema::decode_tail_log(payload)?;
                let Some(journal) = ctx.registry.journal() else {
                    let reply = schema::encode_error_reply(
                        ErrorCode::NoJournal,
                        "daemon has no changeset log attached",
                    );
                    Self::queue_frame(ctx, conn, None, FrameKind::ErrorReply, &reply);
                    return Ok(());
                };
                // Catch-up (records already on disk from `from_seq`) and
                // the live registration happen under the journal's append
                // lock, so the hand-off is gap-free and duplicate-free:
                // every later append lands in the subscription queue. The
                // waker nudges this reactor's self-pipe so the next
                // `poll(2)` wakes the instant a record ships.
                let wake = Arc::clone(&ctx.wake);
                let (catch_up, sub) = journal.tail(from_seq, move || wake())?;
                Self::queue_log_chunks(ctx, conn, journal.epoch(), &catch_up);
                conn.tail = Some(TailConn { journal, sub });
            }
            FrameKind::SubmitAck
            | FrameKind::PlanReply
            | FrameKind::AdvanceReply
            | FrameKind::CancelReply
            | FrameKind::MetricsReply
            | FrameKind::ErrorReply
            | FrameKind::LogChunk => {
                let reply = schema::encode_error_reply(
                    ErrorCode::UnexpectedFrame,
                    "frame kind is daemon to client only",
                );
                Self::queue_frame(ctx, conn, None, FrameKind::ErrorReply, &reply);
            }
        }
        Ok(())
    }

    /// Move records the journal shipped since the last loop iteration from
    /// the subscription queue into the connection's write buffer.
    fn pump_tail(ctx: &Ctx, conn: &mut Conn) {
        let (epoch, records) = match conn.tail.as_ref() {
            Some(tail) => (tail.journal.epoch(), tail.sub.drain()),
            None => return,
        };
        if !records.is_empty() {
            Self::queue_log_chunks(ctx, conn, epoch, &records);
        }
    }

    /// Encode `records` as one or more `LogChunk` frames into the write
    /// buffer, packing up to [`TAIL_CHUNK_BYTES`] of raw record bytes per
    /// chunk (always at least one record, so progress is guaranteed).
    fn queue_log_chunks(ctx: &Ctx, conn: &mut Conn, epoch: u64, records: &[ChangeRecord]) {
        let mut raw = Vec::new();
        let mut count = 0u32;
        for rec in records {
            let bytes = encode_record(rec);
            if count > 0 && raw.len() + bytes.len() > TAIL_CHUNK_BYTES {
                let payload = schema::encode_log_chunk_raw(epoch, count, &raw);
                Self::queue_frame(ctx, conn, None, FrameKind::LogChunk, &payload);
                raw.clear();
                count = 0;
            }
            raw.extend_from_slice(&bytes);
            count += 1;
        }
        if count > 0 {
            let payload = schema::encode_log_chunk_raw(epoch, count, &raw);
            Self::queue_frame(ctx, conn, None, FrameKind::LogChunk, &payload);
        }
    }

    fn lookup(ctx: &Ctx, conn: &mut Conn, tenant_id: &str) -> Option<Arc<Tenant>> {
        match ctx.registry.get(tenant_id) {
            Some(t) => Some(t),
            None => {
                let reply = schema::encode_error_reply(ErrorCode::UnknownTenant, tenant_id);
                Self::queue_frame(ctx, conn, None, FrameKind::ErrorReply, &reply);
                None
            }
        }
    }

    /// Encode one daemon → client frame into the connection's write buffer,
    /// tallying it on `tenant` when known (mirrors the legacy `send`).
    fn queue_frame(
        ctx: &Ctx,
        conn: &mut Conn,
        tenant: Option<&Tenant>,
        kind: FrameKind,
        payload: &[u8],
    ) {
        write_frame(&mut conn.out, kind, payload).expect("Vec<u8> writes are infallible");
        ctx.metrics.frames_out.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = tenant {
            t.wire().frame_sent(frame_len(payload.len()));
        }
    }

    /// Resolve owed replies strictly from the queue front, preserving the
    /// legacy reply pump's admission-order reply stream.
    fn resolve_pending(ctx: &Ctx, conn: &mut Conn) {
        while let Some(front) = conn.pending.front() {
            let resolved = match front {
                Pending::Plan { ticket, .. } => match ticket.poll_response() {
                    Some(response) => {
                        let Some(Pending::Plan { tenant, rid, .. }) = conn.pending.pop_front()
                        else {
                            unreachable!("front variant checked");
                        };
                        let payload = schema::encode_plan_reply(rid, &response);
                        Self::queue_frame(ctx, conn, Some(&tenant), FrameKind::PlanReply, &payload);
                        true
                    }
                    None => false,
                },
                Pending::Advance { reply, .. } => match reply.poll_response() {
                    Some(revisions) => {
                        let Some(Pending::Advance { tenant, .. }) = conn.pending.pop_front() else {
                            unreachable!("front variant checked");
                        };
                        let payload = schema::encode_advance_reply(&revisions);
                        Self::queue_frame(
                            ctx,
                            conn,
                            Some(&tenant),
                            FrameKind::AdvanceReply,
                            &payload,
                        );
                        true
                    }
                    None => false,
                },
                Pending::Cancel { reply, .. } => match reply.poll_response() {
                    Some(ok) => {
                        let Some(Pending::Cancel { tenant, .. }) = conn.pending.pop_front() else {
                            unreachable!("front variant checked");
                        };
                        let payload = schema::encode_cancel_reply(ok);
                        Self::queue_frame(
                            ctx,
                            conn,
                            Some(&tenant),
                            FrameKind::CancelReply,
                            &payload,
                        );
                        true
                    }
                    None => false,
                },
            };
            if !resolved {
                break;
            }
        }
    }

    /// Push buffered bytes out until the socket pushes back.
    fn flush(metrics: &MuxMetrics, conn: &mut Conn) {
        while !conn.out.is_empty() {
            match conn.stream.write(&conn.out) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(n) => {
                    let short = n < conn.out.len();
                    conn.out.drain(..n);
                    if short {
                        metrics.partial_writes.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    metrics.partial_writes.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Client gone mid-reply. Owed tickets keep resolving in
                    // their tenants (admitted work is never lost); only the
                    // transport is finished.
                    conn.dead = true;
                    return;
                }
            }
        }
    }

    /// Drop connections that are finished: transport dead, or read side
    /// done with nothing further owed.
    fn reap(&mut self) {
        let metrics = &self.ctx.metrics;
        let before = self.conns.len();
        self.conns
            .retain(|c| !(c.dead || c.read_closed && c.pending.is_empty() && c.out.is_empty()));
        let reaped = before - self.conns.len();
        if reaped > 0 {
            metrics.deregister(reaped as u64);
        }
    }
}

/// Accept TCP connections and serve them all from `config.threads` reactor
/// threads until `shutdown` is set — the multiplexed replacement for
/// [`crate::ingest::serve_tcp_graceful`], with the same drain contract:
/// once the flag is set the listener stops accepting, reactors settle what
/// connected clients are still owed (bounded by [`MuxConfig::drain_grace`])
/// and `serve_tcp_mux` returns `Ok(())` so the caller can drain tenants and
/// seal the changeset log. `metrics` is shared so callers can snapshot
/// reactor counters while the daemon serves.
pub fn serve_tcp_mux(
    listener: TcpListener,
    registry: Arc<TenantRegistry>,
    shutdown: Arc<AtomicBool>,
    config: MuxConfig,
    metrics: Arc<MuxMetrics>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let threads = config.threads.max(1);
    let mut inboxes = Vec::with_capacity(threads);
    let mut wakers = Vec::with_capacity(threads);
    let mut handles = Vec::with_capacity(threads);
    for i in 0..threads {
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let pipe = Arc::new(WakePipe { tx: wake_tx });
        let inbox: Arc<Mutex<Vec<(TcpStream, String)>>> = Arc::new(Mutex::new(Vec::new()));
        let reactor = Reactor {
            ctx: Ctx {
                registry: Arc::clone(&registry),
                metrics: Arc::clone(&metrics),
                wake: {
                    let pipe = Arc::clone(&pipe);
                    Arc::new(move || pipe.wake())
                },
            },
            conns: Vec::new(),
            inbox: Arc::clone(&inbox),
            wake_rx,
            shutdown: Arc::clone(&shutdown),
            rate_limit: config.rate_limit,
            drain_grace: config.drain_grace,
            rotor: 0,
        };
        handles.push(
            std::thread::Builder::new()
                .name(format!("carp-mux-{i}"))
                .spawn(move || reactor.run())
                .expect("spawn mux reactor thread"),
        );
        inboxes.push(inbox);
        wakers.push(pipe);
    }

    let mut next = 0usize;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                metrics.accepted.fetch_add(1, Ordering::Relaxed);
                let slot = next % threads;
                next += 1;
                inboxes[slot]
                    .lock()
                    .expect("mux inbox lock")
                    .push((stream, peer.to_string()));
                wakers[slot].wake();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    for w in &wakers {
        w.wake();
    }
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use crate::wire::client::WireClient;
    use carp_warehouse::planner::{PlanOutcome, Planner};
    use carp_warehouse::request::{QueryKind, Request};
    use carp_warehouse::route::Route;
    use carp_warehouse::types::Cell;

    struct StubPlanner;

    impl Planner for StubPlanner {
        fn name(&self) -> &'static str {
            "mux-stub"
        }
        fn plan(&mut self, req: &Request) -> PlanOutcome {
            PlanOutcome::Planned(Route::stationary(req.t, req.origin))
        }
        fn cancel(&mut self, _id: carp_warehouse::request::RequestId) -> bool {
            true
        }
        fn memory_bytes(&self) -> usize {
            0
        }
    }

    fn registry() -> Arc<TenantRegistry> {
        let registry = Arc::new(TenantRegistry::new());
        let cfg = ServiceConfig {
            deadline: None,
            ..ServiceConfig::default()
        };
        registry.register("W-test", StubPlanner, cfg);
        registry
    }

    type Harness = (
        std::net::SocketAddr,
        Arc<AtomicBool>,
        Arc<MuxMetrics>,
        std::thread::JoinHandle<std::io::Result<()>>,
        Arc<TenantRegistry>,
    );

    fn start(config: MuxConfig) -> Harness {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let registry = registry();
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(MuxMetrics::default());
        let srv = {
            let registry = Arc::clone(&registry);
            let shutdown = Arc::clone(&shutdown);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || serve_tcp_mux(listener, registry, shutdown, config, metrics))
        };
        (addr, shutdown, metrics, srv, registry)
    }

    fn req(id: u64) -> Request {
        Request::new(id, 0, Cell::new(0, 0), Cell::new(0, 1), QueryKind::Pickup)
    }

    #[test]
    fn full_protocol_round_trip_over_the_reactor() {
        let (addr, shutdown, metrics, srv, _registry) = start(MuxConfig::default());
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = stream.try_clone().expect("clone");
        let mut client = WireClient::new(reader, stream);
        for id in 0..8u64 {
            client.submit("W-test", &req(id)).expect("submit acked");
        }
        for id in 0..8u64 {
            let response = client.wait_plan(id).expect("plan reply");
            assert!(response.route().is_some(), "request {id} planned");
        }
        assert!(client.advance("W-test", 10).expect("advance").is_empty());
        assert!(client.cancel("W-test", 3).expect("cancel"));
        let (m, _wire) = client.metrics("W-test").expect("metrics");
        assert_eq!(m.planned, 8);
        drop(client);
        shutdown.store(true, Ordering::SeqCst);
        srv.join().expect("server thread").expect("serve ok");
        let counters = metrics.snapshot();
        assert_eq!(counters.accepted, 1);
        assert_eq!(counters.registered, 0, "connection reaped");
        assert!(counters.frames_in >= 11);
    }

    #[test]
    fn torn_frame_then_disconnect_is_reaped_not_wedged() {
        let (addr, shutdown, metrics, srv, _registry) = start(MuxConfig::default());
        {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(b"CARP\x01\x00").expect("half a header");
            // Force the reactor to register + read before we vanish.
            std::thread::sleep(Duration::from_millis(100));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while metrics.snapshot().registered != 0 {
            assert!(Instant::now() < deadline, "torn connection never reaped");
            std::thread::sleep(Duration::from_millis(10));
        }
        shutdown.store(true, Ordering::SeqCst);
        srv.join().expect("server thread").expect("serve ok");
    }

    #[test]
    fn shutdown_mid_connection_drains_and_returns() {
        let (addr, shutdown, _metrics, srv, _registry) = start(MuxConfig {
            drain_grace: Duration::from_millis(200),
            ..MuxConfig::default()
        });
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = stream.try_clone().expect("clone");
        let mut client = WireClient::new(reader, stream);
        client.submit("W-test", &req(0)).expect("submit acked");
        assert!(client.wait_plan(0).expect("plan reply").route().is_some());
        // Client keeps the socket open across shutdown: the reactor must
        // not wait for its EOF.
        shutdown.store(true, Ordering::SeqCst);
        let started = Instant::now();
        srv.join().expect("server thread").expect("serve ok");
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "drain must be bounded by the grace period"
        );
    }
}
