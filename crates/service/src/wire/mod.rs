//! The framed binary wire protocol — the daemon's canonical surface.
//!
//! Every exchange with the planning daemon is a sequence of
//! length-prefixed **frames** ([`frame`]): a fixed 12-byte header (magic,
//! protocol version, frame kind, payload length — all little-endian)
//! followed by a payload whose schema is determined by the kind
//! ([`schema`]). The same bytes flow over every transport — the in-process
//! duplex pipe the load generator and tests use, and the TCP listener
//! behind `carp-service --listen` — so "it worked in the test" and "it
//! works on the socket" are the same claim.
//!
//! Layering (bottom-up):
//!
//! * [`codec`] — bounds-checked little-endian readers/writers over byte
//!   slices; every multi-byte integer on the wire goes through these.
//! * [`frame`] — the header, the frame kinds, [`frame::read_frame`] /
//!   [`frame::write_frame`], and [`WireError`]: *every* malformed input is
//!   a clean typed error, never a panic (pinned by the fuzz tests).
//! * [`schema`] — payload encode/decode for submissions, acks, plan
//!   replies (with [`schema::RouteView`], a zero-copy view over a route
//!   payload), advance/cancel, and the metrics snapshot.
//! * [`client`] — [`WireClient`], a blocking client over any
//!   `Read + Write` pair; what loadgen and the CLI speak.
//!
//! Determinism note: the protocol is strictly request/reply per
//! connection for control frames, while plan replies stream back in
//! commit order; the client buffers out-of-order replies by request id.
//! Admission order — the thing that pins the committed route set — is
//! fixed by submission acks being answered synchronously in frame order
//! (DESIGN.md §14).

pub mod client;
pub mod codec;
pub mod frame;
pub mod schema;

pub use client::{WireClient, WireSubmitError};
pub use frame::{
    read_frame, write_frame, FrameDecoder, FrameKind, WireError, HEADER_LEN, MAX_PAYLOAD, VERSION,
};
pub use schema::{AckStatus, LogChunkView, PlanVerdict, RouteView};
