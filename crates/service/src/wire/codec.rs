//! Bounds-checked little-endian primitives for wire payloads.
//!
//! A [`Reader`] walks a borrowed payload slice and fails with a typed
//! [`WireError::Malformed`] on any overrun — decoding never indexes
//! unchecked, so corrupt payloads surface as errors, not panics. A
//! [`Writer`] appends to an owned buffer; encoding is infallible.
//!
//! Strings travel as `str16`: a `u16` byte length followed by that many
//! bytes of UTF-8 (tenant ids are short; 64 KiB is beyond generous).

use super::frame::WireError;

/// Bounds-checked little-endian reader over a payload slice.
///
/// Lifetimes matter here: `bytes`/`str16` return slices *borrowed from the
/// payload*, which is what makes [`RouteView`](super::schema::RouteView)
/// zero-copy.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Borrow the next `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Malformed("payload shorter than declared"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.bytes(2)?.try_into().expect("len 2"),
        ))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("len 4"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("len 8"),
        ))
    }

    /// Read a little-endian IEEE-754 `f64`.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `u16`-length-prefixed UTF-8 string, borrowed from the
    /// payload.
    pub fn str16(&mut self) -> Result<&'a str, WireError> {
        let len = self.u16()? as usize;
        let raw = self.bytes(len)?;
        core::str::from_utf8(raw).map_err(|_| WireError::Malformed("str16 is not UTF-8"))
    }

    /// Assert the payload was consumed exactly.
    pub fn done(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Malformed("payload longer than declared"))
        }
    }
}

/// Append-only little-endian writer; encoding never fails.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded payload.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian IEEE-754 `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `u16`-length-prefixed UTF-8 string.
    ///
    /// # Panics
    /// When `s` exceeds 65535 bytes (tenant ids never do; enforced at
    /// registration).
    pub fn put_str16(&mut self, s: &str) {
        let len = u16::try_from(s.len()).expect("str16 length fits u16");
        self.put_u16(len);
        self.put_bytes(s.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(1.5);
        w.put_str16("W-1");
        let buf = w.into_inner();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap(), 1.5);
        assert_eq!(r.str16().unwrap(), "W-1");
        assert!(r.done().is_ok());
    }

    #[test]
    fn overruns_are_typed_errors() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32().is_err());
        let mut r = Reader::new(&[2, 0, 0xFF]); // str16 declares 2, has 1
        assert!(r.str16().is_err());
        let r = Reader::new(&[0]);
        assert!(r.done().is_err());
    }

    #[test]
    fn str16_rejects_invalid_utf8() {
        let mut w = Writer::new();
        w.put_u16(2);
        w.put_bytes(&[0xFF, 0xFE]);
        let buf = w.into_inner();
        assert_eq!(
            Reader::new(&buf).str16(),
            Err(WireError::Malformed("str16 is not UTF-8"))
        );
    }
}
