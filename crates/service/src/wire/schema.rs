//! Payload schemas: how each frame kind's payload is laid out.
//!
//! All integers are little-endian ([`codec`](super::codec)); tenant ids are
//! `str16` (u16 length + UTF-8 bytes). Route payloads are decoded
//! **zero-copy**: [`RouteView`] borrows the cell bytes straight from the
//! frame payload, so a client can inspect a route (length, individual
//! cells) without materializing a `Vec<Cell>`; [`RouteView::to_route`]
//! materializes on demand.
//!
//! ```text
//! Submit        str16 tenant · u64 id · u32 t · u16 o.row · u16 o.col
//!               · u16 d.row · u16 d.col · u8 kind (0 pickup, 1 transmission, 2 return)
//! SubmitAck     u64 id · u8 status (0 accepted; 1 backpressure:
//!               u64 retry_after_µs · u32 queue_depth; 2 shutting-down;
//!               3 unknown-tenant)
//! PlanReply     u64 id · u8 verdict (0 planned: route; 1 infeasible;
//!               2 shed; 3 overrun; 4 died)
//! route         u32 start · u32 ncells · ncells × (u16 row · u16 col)
//! Advance       str16 tenant · u32 now
//! AdvanceReply  u32 count · count × (u64 id · route)
//! Cancel        str16 tenant · u64 id
//! CancelReply   u8 ok
//! MetricsQuery  str16 tenant
//! MetricsReply  service metrics · wire counters (see encode_metrics_reply)
//! ErrorReply    u8 code (1 unknown-tenant, 2 unexpected-frame) · str16 msg
//! TailLog       u64 from_seq
//! LogChunk      u64 epoch · u32 count · count × raw changeset record
//!               (each in its on-disk `len · crc32 · payload` framing, so
//!               CRC protection survives the hop and a standby can verify
//!               end-to-end)
//! ```

use super::codec::{Reader, Writer};
use super::frame::WireError;
use crate::histogram::LatencySummary;
use crate::service::{PlanResponse, ServiceMetrics};
use crate::tenant::WireCounters;
use crate::wal::record::{decode_records, encode_record, ChangeRecord, LogTail};
use carp_warehouse::planner::EngineMetrics;
use carp_warehouse::request::{QueryKind, Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::types::{Cell, Time};
use std::time::Duration;

/// Bytes per cell on the wire (`u16 row` + `u16 col`).
const CELL_BYTES: usize = 4;

// ---------------------------------------------------------------- Submit

/// Encode a [`FrameKind::Submit`](super::FrameKind::Submit) payload.
pub fn encode_submit(tenant: &str, req: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str16(tenant);
    w.put_u64(req.id);
    w.put_u32(req.t);
    w.put_u16(req.origin.row);
    w.put_u16(req.origin.col);
    w.put_u16(req.destination.row);
    w.put_u16(req.destination.col);
    w.put_u8(match req.kind {
        QueryKind::Pickup => 0,
        QueryKind::Transmission => 1,
        QueryKind::Return => 2,
    });
    w.into_inner()
}

/// Decode a submit payload; the tenant id borrows from the payload.
pub fn decode_submit(payload: &[u8]) -> Result<(&str, Request), WireError> {
    let mut r = Reader::new(payload);
    let tenant = r.str16()?;
    let id = r.u64()?;
    let t = r.u32()?;
    let origin = Cell::new(r.u16()?, r.u16()?);
    let destination = Cell::new(r.u16()?, r.u16()?);
    let kind = match r.u8()? {
        0 => QueryKind::Pickup,
        1 => QueryKind::Transmission,
        2 => QueryKind::Return,
        _ => return Err(WireError::Malformed("unknown query kind")),
    };
    r.done()?;
    Ok((tenant, Request::new(id, t, origin, destination, kind)))
}

// ------------------------------------------------------------- SubmitAck

/// Admission verdict carried by a `SubmitAck` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckStatus {
    /// The request entered the tenant's queue; a `PlanReply` will follow.
    Accepted,
    /// The tenant's bounded queue is full; retry after the hinted delay.
    Backpressure {
        /// Suggested client-side wait before re-submitting.
        retry_after: Duration,
        /// Tenant queue depth observed at rejection.
        queue_depth: usize,
    },
    /// The tenant is shutting down and accepts no new work.
    ShuttingDown,
    /// No tenant by that id is registered.
    UnknownTenant,
    /// The connection exceeded its per-connection rate limit; retry after
    /// the hinted delay. Unlike [`AckStatus::Backpressure`] this is a
    /// *connection* verdict — the tenant queue was never consulted.
    Throttled {
        /// Suggested client-side wait before re-submitting.
        retry_after: Duration,
    },
}

/// Encode a `SubmitAck` payload.
pub fn encode_submit_ack(id: RequestId, status: AckStatus) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(id);
    match status {
        AckStatus::Accepted => w.put_u8(0),
        AckStatus::Backpressure {
            retry_after,
            queue_depth,
        } => {
            w.put_u8(1);
            w.put_u64(retry_after.as_micros().min(u128::from(u64::MAX)) as u64);
            w.put_u32(queue_depth.min(u32::MAX as usize) as u32);
        }
        AckStatus::ShuttingDown => w.put_u8(2),
        AckStatus::UnknownTenant => w.put_u8(3),
        AckStatus::Throttled { retry_after } => {
            w.put_u8(4);
            w.put_u64(retry_after.as_micros().min(u128::from(u64::MAX)) as u64);
        }
    }
    w.into_inner()
}

/// Decode a `SubmitAck` payload.
pub fn decode_submit_ack(payload: &[u8]) -> Result<(RequestId, AckStatus), WireError> {
    let mut r = Reader::new(payload);
    let id = r.u64()?;
    let status = match r.u8()? {
        0 => AckStatus::Accepted,
        1 => AckStatus::Backpressure {
            retry_after: Duration::from_micros(r.u64()?),
            queue_depth: r.u32()? as usize,
        },
        2 => AckStatus::ShuttingDown,
        3 => AckStatus::UnknownTenant,
        4 => AckStatus::Throttled {
            retry_after: Duration::from_micros(r.u64()?),
        },
        _ => return Err(WireError::Malformed("unknown ack status")),
    };
    r.done()?;
    Ok((id, status))
}

// ------------------------------------------------------------- PlanReply

/// Zero-copy view over an encoded route: `start` is decoded eagerly, the
/// cell array stays borrowed wire bytes until [`RouteView::to_route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteView<'a> {
    start: Time,
    cells: &'a [u8],
}

impl<'a> RouteView<'a> {
    /// The route's start time.
    pub fn start(&self) -> Time {
        self.start
    }

    /// Number of cells in the route.
    pub fn len(&self) -> usize {
        self.cells.len() / CELL_BYTES
    }

    /// Whether the route has no cells (never true for a valid route).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The `i`-th cell, decoded from the borrowed bytes.
    ///
    /// # Panics
    /// When `i >= len()`.
    pub fn cell(&self, i: usize) -> Cell {
        let at = i * CELL_BYTES;
        let b = &self.cells[at..at + CELL_BYTES];
        Cell::new(
            u16::from_le_bytes([b[0], b[1]]),
            u16::from_le_bytes([b[2], b[3]]),
        )
    }

    /// Iterate the cells without materializing them.
    pub fn iter(&self) -> impl Iterator<Item = Cell> + 'a {
        let cells = self.cells;
        (0..cells.len() / CELL_BYTES).map(move |i| {
            let b = &cells[i * CELL_BYTES..(i + 1) * CELL_BYTES];
            Cell::new(
                u16::from_le_bytes([b[0], b[1]]),
                u16::from_le_bytes([b[2], b[3]]),
            )
        })
    }

    /// Materialize an owned [`Route`].
    pub fn to_route(&self) -> Route {
        Route {
            start: self.start,
            grids: self.iter().collect(),
        }
    }
}

fn put_route(w: &mut Writer, route: &Route) {
    w.put_u32(route.start);
    w.put_u32(route.grids.len().min(u32::MAX as usize) as u32);
    for c in &route.grids {
        w.put_u16(c.row);
        w.put_u16(c.col);
    }
}

fn get_route_view<'a>(r: &mut Reader<'a>) -> Result<RouteView<'a>, WireError> {
    let start = r.u32()?;
    let ncells = r.u32()? as usize;
    let bytes = ncells
        .checked_mul(CELL_BYTES)
        .ok_or(WireError::Malformed("route cell count overflows"))?;
    let cells = r.bytes(bytes)?;
    Ok(RouteView { start, cells })
}

/// A decoded plan verdict; `Planned` borrows its route from the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanVerdict<'a> {
    /// A collision-free route was committed.
    Planned(RouteView<'a>),
    /// No route under the planner's search limits.
    Infeasible,
    /// Shed in the queue past its deadline.
    DeadlineShed,
    /// Planned over budget; the route was cancelled.
    DeadlineOverrun,
    /// The tenant's service died before answering.
    ServiceDied,
}

impl PlanVerdict<'_> {
    /// Materialize the owned [`PlanResponse`] the in-process API returns.
    pub fn into_response(self) -> PlanResponse {
        match self {
            PlanVerdict::Planned(v) => PlanResponse::Planned(v.to_route()),
            PlanVerdict::Infeasible => PlanResponse::Infeasible,
            PlanVerdict::DeadlineShed => PlanResponse::DeadlineShed,
            PlanVerdict::DeadlineOverrun => PlanResponse::DeadlineOverrun,
            PlanVerdict::ServiceDied => PlanResponse::ServiceDied,
        }
    }
}

/// Encode a `PlanReply` payload from a terminal response.
pub fn encode_plan_reply(id: RequestId, response: &PlanResponse) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(id);
    match response {
        PlanResponse::Planned(route) => {
            w.put_u8(0);
            put_route(&mut w, route);
        }
        PlanResponse::Infeasible => w.put_u8(1),
        PlanResponse::DeadlineShed => w.put_u8(2),
        PlanResponse::DeadlineOverrun => w.put_u8(3),
        PlanResponse::ServiceDied => w.put_u8(4),
    }
    w.into_inner()
}

/// Decode a `PlanReply` payload; a planned route stays zero-copy.
pub fn decode_plan_reply(payload: &[u8]) -> Result<(RequestId, PlanVerdict<'_>), WireError> {
    let mut r = Reader::new(payload);
    let id = r.u64()?;
    let verdict = match r.u8()? {
        0 => PlanVerdict::Planned(get_route_view(&mut r)?),
        1 => PlanVerdict::Infeasible,
        2 => PlanVerdict::DeadlineShed,
        3 => PlanVerdict::DeadlineOverrun,
        4 => PlanVerdict::ServiceDied,
        _ => return Err(WireError::Malformed("unknown plan verdict")),
    };
    r.done()?;
    Ok((id, verdict))
}

// --------------------------------------------------------------- Advance

/// Encode an `Advance` payload.
pub fn encode_advance(tenant: &str, now: Time) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str16(tenant);
    w.put_u32(now);
    w.into_inner()
}

/// Decode an `Advance` payload.
pub fn decode_advance(payload: &[u8]) -> Result<(&str, Time), WireError> {
    let mut r = Reader::new(payload);
    let tenant = r.str16()?;
    let now = r.u32()?;
    r.done()?;
    Ok((tenant, now))
}

/// Encode an `AdvanceReply` payload (route revisions, usually empty).
pub fn encode_advance_reply(revisions: &[(RequestId, Route)]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(revisions.len().min(u32::MAX as usize) as u32);
    for (id, route) in revisions {
        w.put_u64(*id);
        put_route(&mut w, route);
    }
    w.into_inner()
}

/// Decode an `AdvanceReply` payload into owned revisions.
pub fn decode_advance_reply(payload: &[u8]) -> Result<Vec<(RequestId, Route)>, WireError> {
    let mut r = Reader::new(payload);
    let count = r.u32()? as usize;
    let mut out = Vec::new();
    for _ in 0..count {
        let id = r.u64()?;
        let route = get_route_view(&mut r)?.to_route();
        out.push((id, route));
    }
    r.done()?;
    Ok(out)
}

// ---------------------------------------------------------------- Cancel

/// Encode a `Cancel` payload.
pub fn encode_cancel(tenant: &str, id: RequestId) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str16(tenant);
    w.put_u64(id);
    w.into_inner()
}

/// Decode a `Cancel` payload.
pub fn decode_cancel(payload: &[u8]) -> Result<(&str, RequestId), WireError> {
    let mut r = Reader::new(payload);
    let tenant = r.str16()?;
    let id = r.u64()?;
    r.done()?;
    Ok((tenant, id))
}

/// Encode a `CancelReply` payload.
pub fn encode_cancel_reply(ok: bool) -> Vec<u8> {
    vec![u8::from(ok)]
}

/// Decode a `CancelReply` payload.
pub fn decode_cancel_reply(payload: &[u8]) -> Result<bool, WireError> {
    let mut r = Reader::new(payload);
    let ok = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(WireError::Malformed("non-boolean cancel reply")),
    };
    r.done()?;
    Ok(ok)
}

// --------------------------------------------------------------- Metrics

/// Encode a `MetricsQuery` payload.
pub fn encode_metrics_query(tenant: &str) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str16(tenant);
    w.into_inner()
}

/// Decode a `MetricsQuery` payload.
pub fn decode_metrics_query(payload: &[u8]) -> Result<&str, WireError> {
    let mut r = Reader::new(payload);
    let tenant = r.str16()?;
    r.done()?;
    Ok(tenant)
}

fn put_latency(w: &mut Writer, s: &LatencySummary) {
    w.put_u64(s.count);
    w.put_f64(s.mean_us);
    w.put_u64(s.p50_us);
    w.put_u64(s.p95_us);
    w.put_u64(s.p99_us);
    w.put_u64(s.max_us);
}

fn get_latency(r: &mut Reader<'_>) -> Result<LatencySummary, WireError> {
    Ok(LatencySummary {
        count: r.u64()?,
        mean_us: r.f64()?,
        p50_us: r.u64()?,
        p95_us: r.u64()?,
        p99_us: r.u64()?,
        max_us: r.u64()?,
    })
}

/// Encode a `MetricsReply` payload: the full [`ServiceMetrics`] snapshot
/// followed by the tenant's [`WireCounters`].
pub fn encode_metrics_reply(metrics: &ServiceMetrics, wire: &WireCounters) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(metrics.workers.min(u32::MAX as usize) as u32);
    w.put_u32(metrics.queue_depth.min(u32::MAX as usize) as u32);
    w.put_u64(metrics.in_flight);
    w.put_u64(metrics.submitted);
    w.put_u64(metrics.rejected_backpressure);
    w.put_u64(metrics.planned);
    w.put_u64(metrics.infeasible);
    w.put_u64(metrics.shed_deadline);
    w.put_u64(metrics.cancelled_deadline);
    w.put_u64(metrics.speculation_wins);
    w.put_u64(metrics.speculation_retries);
    w.put_u64(metrics.speculation_aborts);
    put_latency(&mut w, &metrics.queue_latency);
    put_latency(&mut w, &metrics.planning_latency);
    put_latency(&mut w, &metrics.commit_latency);
    put_latency(&mut w, &metrics.turnaround_latency);
    match &metrics.engine {
        None => w.put_u8(0),
        Some(e) => {
            w.put_u8(1);
            w.put_u64(e.probe_batches);
            w.put_u64(e.probe_queries);
            w.put_f64(e.probe_parallelism);
            w.put_f64(e.probe_parallel_share);
            w.put_f64(e.retire_batch_size);
            w.put_u64(e.eval_batches);
            w.put_u64(e.eval_jobs);
            w.put_f64(e.eval_parallel_share);
            w.put_u64(e.soft_bookings);
            w.put_u64(e.window_debt);
        }
    }
    w.put_u64(wire.frames_received);
    w.put_u64(wire.frames_sent);
    w.put_u64(wire.bytes_received);
    w.put_u64(wire.bytes_sent);
    w.put_u64(wire.protocol_errors);
    w.into_inner()
}

/// Decode a `MetricsReply` payload.
pub fn decode_metrics_reply(payload: &[u8]) -> Result<(ServiceMetrics, WireCounters), WireError> {
    let mut r = Reader::new(payload);
    let workers = r.u32()? as usize;
    let queue_depth = r.u32()? as usize;
    let in_flight = r.u64()?;
    let submitted = r.u64()?;
    let rejected_backpressure = r.u64()?;
    let planned = r.u64()?;
    let infeasible = r.u64()?;
    let shed_deadline = r.u64()?;
    let cancelled_deadline = r.u64()?;
    let speculation_wins = r.u64()?;
    let speculation_retries = r.u64()?;
    let speculation_aborts = r.u64()?;
    let queue_latency = get_latency(&mut r)?;
    let planning_latency = get_latency(&mut r)?;
    let commit_latency = get_latency(&mut r)?;
    let turnaround_latency = get_latency(&mut r)?;
    let engine = match r.u8()? {
        0 => None,
        1 => Some(EngineMetrics {
            probe_batches: r.u64()?,
            probe_queries: r.u64()?,
            probe_parallelism: r.f64()?,
            probe_parallel_share: r.f64()?,
            retire_batch_size: r.f64()?,
            eval_batches: r.u64()?,
            eval_jobs: r.u64()?,
            eval_parallel_share: r.f64()?,
            soft_bookings: r.u64()?,
            window_debt: r.u64()?,
        }),
        _ => return Err(WireError::Malformed("non-boolean engine flag")),
    };
    let wire = WireCounters {
        frames_received: r.u64()?,
        frames_sent: r.u64()?,
        bytes_received: r.u64()?,
        bytes_sent: r.u64()?,
        protocol_errors: r.u64()?,
    };
    r.done()?;
    let metrics = ServiceMetrics {
        workers,
        queue_depth,
        in_flight,
        submitted,
        rejected_backpressure,
        planned,
        infeasible,
        shed_deadline,
        cancelled_deadline,
        speculation_wins,
        speculation_retries,
        speculation_aborts,
        queue_latency,
        planning_latency,
        commit_latency,
        turnaround_latency,
        engine,
    };
    Ok((metrics, wire))
}

// -------------------------------------------------- TailLog · LogChunk

/// Encode a `TailLog` payload: subscribe from this sequence number.
pub fn encode_tail_log(from_seq: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(from_seq);
    w.into_inner()
}

/// Decode a `TailLog` payload.
pub fn decode_tail_log(payload: &[u8]) -> Result<u64, WireError> {
    let mut r = Reader::new(payload);
    let from_seq = r.u64()?;
    r.done()?;
    Ok(from_seq)
}

/// Encode a `LogChunk` payload from already-encoded record frames
/// (`raw` is a concatenation of `count` on-disk record encodings). The
/// shipping path keeps records in their durable framing, CRC and all.
pub fn encode_log_chunk_raw(epoch: u64, count: u32, raw: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(epoch);
    w.put_u32(count);
    w.put_bytes(raw);
    w.into_inner()
}

/// Encode a `LogChunk` payload from decoded records.
pub fn encode_log_chunk(epoch: u64, records: &[ChangeRecord]) -> Vec<u8> {
    let mut raw = Vec::new();
    for rec in records {
        raw.extend_from_slice(&encode_record(rec));
    }
    encode_log_chunk_raw(epoch, records.len().min(u32::MAX as usize) as u32, &raw)
}

/// Zero-copy view over a `LogChunk` payload: the epoch and record count
/// are decoded eagerly, the record bytes stay borrowed wire bytes (still
/// in their on-disk framing) until [`LogChunkView::records`] materializes
/// them — a relay can forward or append the raw bytes without ever
/// decoding a route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogChunkView<'a> {
    epoch: u64,
    count: u32,
    raw: &'a [u8],
}

impl<'a> LogChunkView<'a> {
    /// The journal epoch in force when the chunk was shipped.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of records the chunk declares.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// The records' raw bytes — each in its on-disk
    /// `len · crc32 · payload` framing, concatenated.
    pub fn raw(&self) -> &'a [u8] {
        self.raw
    }

    /// Decode and CRC-check every record. Unlike a log *file* read, a
    /// torn or corrupt record inside a chunk is a protocol error, not a
    /// tolerated tail — the transport delivered the payload whole, so any
    /// defect is corruption, and so is a count mismatch.
    pub fn records(&self) -> Result<Vec<ChangeRecord>, WireError> {
        let (records, tail) = decode_records(self.raw);
        if tail != LogTail::Clean {
            return Err(WireError::Malformed("corrupt record in log chunk"));
        }
        if records.len() != self.count as usize {
            return Err(WireError::Malformed("log chunk count mismatch"));
        }
        Ok(records)
    }
}

/// Decode a `LogChunk` payload into its zero-copy view.
pub fn decode_log_chunk(payload: &[u8]) -> Result<LogChunkView<'_>, WireError> {
    let mut r = Reader::new(payload);
    let epoch = r.u64()?;
    if epoch == 0 {
        return Err(WireError::Malformed("log chunk epoch zero"));
    }
    let count = r.u32()?;
    let raw = r.bytes(r.remaining())?;
    Ok(LogChunkView { epoch, count, raw })
}

// ------------------------------------------------------------ ErrorReply

/// Request-level error codes carried by `ErrorReply` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// A control frame named a tenant that is not registered.
    UnknownTenant,
    /// The daemon received a frame kind it does not serve (e.g. a reply
    /// kind sent client → daemon).
    UnexpectedFrame,
    /// The connection exceeded its per-connection rate limit on a control
    /// frame (submissions get [`AckStatus::Throttled`] instead).
    Throttled,
    /// A `TailLog` subscription was refused because the daemon has no
    /// changeset journal attached — nothing to ship.
    NoJournal,
}

/// Encode an `ErrorReply` payload.
pub fn encode_error_reply(code: ErrorCode, msg: &str) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(match code {
        ErrorCode::UnknownTenant => 1,
        ErrorCode::UnexpectedFrame => 2,
        ErrorCode::Throttled => 3,
        ErrorCode::NoJournal => 4,
    });
    w.put_str16(msg);
    w.into_inner()
}

/// Decode an `ErrorReply` payload; the message borrows from the payload.
pub fn decode_error_reply(payload: &[u8]) -> Result<(ErrorCode, &str), WireError> {
    let mut r = Reader::new(payload);
    let code = match r.u8()? {
        1 => ErrorCode::UnknownTenant,
        2 => ErrorCode::UnexpectedFrame,
        3 => ErrorCode::Throttled,
        4 => ErrorCode::NoJournal,
        _ => return Err(WireError::Malformed("unknown error code")),
    };
    let msg = r.str16()?;
    r.done()?;
    Ok((code, msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(start: Time, cols: core::ops::Range<u16>) -> Route {
        Route {
            start,
            grids: cols.map(|c| Cell::new(3, c)).collect(),
        }
    }

    #[test]
    fn submit_round_trip() {
        let req = Request::new(
            42,
            7,
            Cell::new(1, 2),
            Cell::new(3, 4),
            QueryKind::Transmission,
        );
        let payload = encode_submit("W-2", &req);
        let (tenant, decoded) = decode_submit(&payload).unwrap();
        assert_eq!(tenant, "W-2");
        assert_eq!(decoded, req);
    }

    #[test]
    fn plan_reply_route_is_zero_copy_and_exact() {
        let r = route(5, 0..6);
        let payload = encode_plan_reply(9, &PlanResponse::Planned(r.clone()));
        let (id, verdict) = decode_plan_reply(&payload).unwrap();
        assert_eq!(id, 9);
        let PlanVerdict::Planned(view) = verdict else {
            panic!("expected planned");
        };
        assert_eq!(view.start(), 5);
        assert_eq!(view.len(), 6);
        assert_eq!(view.cell(2), Cell::new(3, 2));
        assert_eq!(view.to_route(), r);
        assert_eq!(view.iter().collect::<Vec<_>>(), r.grids);
    }

    #[test]
    fn ack_and_error_round_trips() {
        for status in [
            AckStatus::Accepted,
            AckStatus::Backpressure {
                retry_after: Duration::from_micros(1234),
                queue_depth: 17,
            },
            AckStatus::ShuttingDown,
            AckStatus::UnknownTenant,
            AckStatus::Throttled {
                retry_after: Duration::from_micros(777),
            },
        ] {
            let payload = encode_submit_ack(5, status);
            assert_eq!(decode_submit_ack(&payload).unwrap(), (5, status));
        }
        for code in [
            ErrorCode::UnknownTenant,
            ErrorCode::UnexpectedFrame,
            ErrorCode::Throttled,
        ] {
            let payload = encode_error_reply(code, "no such tenant: X");
            assert_eq!(
                decode_error_reply(&payload).unwrap(),
                (code, "no such tenant: X")
            );
        }
    }

    #[test]
    fn tail_log_and_chunk_round_trip() {
        use crate::wal::record::ChangeOp;
        assert_eq!(decode_tail_log(&encode_tail_log(42)).unwrap(), 42);

        let recs = vec![
            ChangeRecord {
                seq: 5,
                tenant: "W-1".into(),
                op: ChangeOp::TenantOpen,
            },
            ChangeRecord {
                seq: 6,
                tenant: "W-1".into(),
                op: ChangeOp::Advance { now: 9 },
            },
        ];
        let payload = encode_log_chunk(3, &recs);
        let view = decode_log_chunk(&payload).unwrap();
        assert_eq!(view.epoch(), 3);
        assert_eq!(view.count(), 2);
        assert_eq!(view.records().unwrap(), recs);

        // A flipped payload bit inside a record is a protocol error, not
        // a tolerated torn tail.
        let mut bad = payload.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        let view = decode_log_chunk(&bad).unwrap();
        assert_eq!(
            view.records(),
            Err(WireError::Malformed("corrupt record in log chunk"))
        );

        // A count mismatch is a protocol error too.
        let short = encode_log_chunk_raw(3, 3, view.raw());
        assert!(decode_log_chunk(&short).unwrap().records().is_err());
    }

    #[test]
    fn advance_reply_round_trip() {
        let revs = vec![(1u64, route(0, 0..3)), (9u64, route(4, 2..9))];
        let payload = encode_advance_reply(&revs);
        assert_eq!(decode_advance_reply(&payload).unwrap(), revs);
    }

    fn zero_latency() -> LatencySummary {
        LatencySummary {
            count: 0,
            mean_us: 0.0,
            p50_us: 0,
            p95_us: 0,
            p99_us: 0,
            max_us: 0,
        }
    }

    #[test]
    fn metrics_reply_round_trip() {
        let metrics = ServiceMetrics {
            workers: 4,
            queue_depth: 3,
            in_flight: 2,
            submitted: 100,
            rejected_backpressure: 5,
            planned: 90,
            infeasible: 5,
            shed_deadline: 0,
            cancelled_deadline: 0,
            speculation_wins: 80,
            speculation_retries: 7,
            speculation_aborts: 3,
            queue_latency: LatencySummary {
                count: 100,
                mean_us: 12.5,
                p50_us: 10,
                p95_us: 50,
                p99_us: 100,
                max_us: 200,
            },
            planning_latency: zero_latency(),
            commit_latency: zero_latency(),
            turnaround_latency: zero_latency(),
            engine: Some(EngineMetrics {
                probe_batches: 10,
                probe_queries: 100,
                probe_parallelism: 3.5,
                probe_parallel_share: 0.75,
                retire_batch_size: 8.0,
                eval_batches: 4,
                eval_jobs: 64,
                eval_parallel_share: 1.0,
                soft_bookings: 0,
                window_debt: 0,
            }),
        };
        let wire = WireCounters {
            frames_received: 11,
            frames_sent: 12,
            bytes_received: 1300,
            bytes_sent: 1400,
            protocol_errors: 1,
        };
        let payload = encode_metrics_reply(&metrics, &wire);
        let (m2, w2) = decode_metrics_reply(&payload).unwrap();
        assert_eq!(w2, wire);
        assert_eq!(m2.workers, 4);
        assert_eq!(m2.submitted, 100);
        assert_eq!(m2.queue_latency.mean_us, 12.5);
        assert_eq!(m2.engine.unwrap().probe_parallelism, 3.5);
    }
}
