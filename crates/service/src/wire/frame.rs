//! Frame layer: the versioned 12-byte header and blocking frame I/O.
//!
//! ```text
//!  offset  size  field
//!       0     4  magic  b"CARP"
//!       4     2  version (LE u16) — currently 1
//!       6     2  kind    (LE u16) — see FrameKind
//!       8     4  payload length (LE u32), ≤ MAX_PAYLOAD
//!      12     …  payload (schema depends on kind)
//! ```
//!
//! All header validation happens before the payload is read, so a corrupt
//! header never triggers an oversized allocation; all decode failures are
//! typed [`WireError`]s, never panics (pinned by the codec fuzz tests).

use std::io::{Read, Write};

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"CARP";
/// Protocol version spoken by this build.
pub const VERSION: u16 = 1;
/// Bytes in the fixed frame header.
pub const HEADER_LEN: usize = 12;
/// Upper bound on a payload (16 MiB) — a route over the largest layout is
/// orders of magnitude smaller; anything bigger is a corrupt length field.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Frame kinds (the header's `kind` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum FrameKind {
    /// Client → daemon: submit one planning request to a tenant.
    Submit = 1,
    /// Daemon → client: admission verdict for one submission.
    SubmitAck = 2,
    /// Daemon → client: terminal planning answer for one request.
    PlanReply = 3,
    /// Client → daemon: advance a tenant's simulation clock.
    Advance = 4,
    /// Daemon → client: route revisions delivered by the advance.
    AdvanceReply = 5,
    /// Client → daemon: cancel a committed route.
    Cancel = 6,
    /// Daemon → client: whether the cancel found its route.
    CancelReply = 7,
    /// Client → daemon: snapshot a tenant's metrics.
    MetricsQuery = 8,
    /// Daemon → client: the metrics snapshot.
    MetricsReply = 9,
    /// Daemon → client: a request-level protocol error (unknown tenant on
    /// a control frame, unexpected kind); the connection stays up.
    ErrorReply = 10,
    /// Client → daemon: subscribe to the changeset log from a sequence
    /// number; the daemon streams `LogChunk` frames for the rest of the
    /// connection's life (live WAL shipping).
    TailLog = 11,
    /// Daemon → client: a batch of raw changeset records pushed to a
    /// `TailLog` subscriber, stamped with the journal's current epoch.
    LogChunk = 12,
}

impl FrameKind {
    fn from_u16(v: u16) -> Option<FrameKind> {
        Some(match v {
            1 => FrameKind::Submit,
            2 => FrameKind::SubmitAck,
            3 => FrameKind::PlanReply,
            4 => FrameKind::Advance,
            5 => FrameKind::AdvanceReply,
            6 => FrameKind::Cancel,
            7 => FrameKind::CancelReply,
            8 => FrameKind::MetricsQuery,
            9 => FrameKind::MetricsReply,
            10 => FrameKind::ErrorReply,
            11 => FrameKind::TailLog,
            12 => FrameKind::LogChunk,
            _ => return None,
        })
    }
}

/// Everything that can go wrong on the wire. Malformed *input* maps to a
/// variant here — never a panic; I/O failures carry the error kind so the
/// type stays `PartialEq` (handy in tests and retry logic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame does not start with `b"CARP"`.
    BadMagic,
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u16),
    /// The header names a frame kind this build does not know.
    UnknownKind(u16),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversize(u32),
    /// The stream ended mid-frame (clean EOF *between* frames is not an
    /// error — [`read_frame`] returns `Ok(None)` for that).
    Truncated,
    /// A payload failed schema validation; the message says where.
    Malformed(&'static str),
    /// The daemon refused the frame because this connection exceeded its
    /// rate limit; back off and retry.
    Throttled,
    /// An append was stamped with a leadership epoch older than the
    /// journal's current one — the writer was fenced off by a standby
    /// takeover and must not touch the journal again.
    Fenced {
        /// The stale epoch the writer appended under.
        stale: u64,
        /// The journal's current epoch.
        current: u64,
    },
    /// An underlying transport error.
    Io(std::io::ErrorKind),
    /// The peer closed the connection while a reply was still owed.
    Closed,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversize(n) => write!(f, "payload length {n} exceeds limit"),
            WireError::Truncated => write!(f, "stream truncated mid-frame"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::Throttled => write!(f, "connection rate limit exceeded"),
            WireError::Fenced { stale, current } => write!(
                f,
                "append fenced: epoch {stale} is stale (journal is at epoch {current})"
            ),
            WireError::Io(kind) => write!(f, "transport error: {kind:?}"),
            WireError::Closed => write!(f, "connection closed while awaiting a reply"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e.kind())
        }
    }
}

/// Write one frame (header + payload) and flush.
pub fn write_frame<W: Write>(w: &mut W, kind: FrameKind, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_PAYLOAD)
        .ok_or(WireError::Oversize(
            payload.len().min(u32::MAX as usize) as u32
        ))?;
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&VERSION.to_le_bytes());
    header[6..8].copy_from_slice(&(kind as u16).to_le_bytes());
    header[8..12].copy_from_slice(&len.to_le_bytes());
    // One write for header + payload: two small writes over a real TCP
    // socket tear the frame into two segments, and Nagle holds the second
    // until the first is ACKed — a delayed-ACK peer turns every frame into
    // a ~40 ms stall. A single segment also reaches the reactor's decoder
    // whole, instead of as a guaranteed partial read.
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&header);
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Size on the wire of a frame carrying `payload_len` payload bytes.
pub fn frame_len(payload_len: usize) -> u64 {
    (HEADER_LEN + payload_len) as u64
}

/// Read one frame. `Ok(None)` is a clean end-of-stream (EOF exactly at a
/// frame boundary); EOF anywhere inside a frame is [`WireError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<(FrameKind, Vec<u8>)>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0usize;
    while got < HEADER_LEN {
        let n = r.read(&mut header[got..])?;
        if n == 0 {
            return if got == 0 {
                Ok(None)
            } else {
                Err(WireError::Truncated)
            };
        }
        got += n;
    }
    if header[0..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("len 2"));
    if version != VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind_raw = u16::from_le_bytes(header[6..8].try_into().expect("len 2"));
    let kind = FrameKind::from_u16(kind_raw).ok_or(WireError::UnknownKind(kind_raw))?;
    let len = u32::from_le_bytes(header[8..12].try_into().expect("len 4"));
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversize(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((kind, payload)))
}

/// Incremental frame reassembler for nonblocking transports.
///
/// The blocking [`read_frame`] owns its stream and can simply block until a
/// whole frame is present; a readiness-driven reactor instead receives
/// arbitrary byte chunks as the kernel delivers them. `FrameDecoder` buffers
/// those chunks ([`push`](FrameDecoder::push)) and yields complete frames
/// ([`next_frame`](FrameDecoder::next_frame)) with semantics bit-identical
/// to the blocking path, pinned by the segmentation proptests in
/// `tests/wire_codec.rs`:
///
/// - header fields are validated only once all [`HEADER_LEN`] bytes are
///   buffered (exactly like the blocking read loop, which reads the full
///   header before inspecting it), and *before* any payload arrives — so a
///   corrupt length field is rejected without an oversized allocation;
/// - errors are sticky: after the first [`WireError`] the stream is garbage
///   and every later call returns the same error, mirroring a caller that
///   abandons a blocking stream on its first decode failure;
/// - end-of-stream is judged by [`finish`](FrameDecoder::finish): EOF
///   exactly at a frame boundary is clean, EOF with buffered bytes is
///   [`WireError::Truncated`].
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// First error seen, replayed forever after (a corrupt stream cannot
    /// resynchronise — there is no framing to hunt for).
    poisoned: Option<WireError>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Buffer `bytes` as the next chunk of the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.poisoned.is_none() {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to decode the next complete frame from the buffered bytes.
    ///
    /// `Ok(None)` means "need more bytes" — push another chunk and retry.
    /// Errors match what [`read_frame`] would have returned at the same
    /// position in the stream, and are sticky.
    pub fn next_frame(&mut self) -> Result<Option<(FrameKind, Vec<u8>)>, WireError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        if self.buf[0..4] != MAGIC {
            return Err(self.poison(WireError::BadMagic));
        }
        let version = u16::from_le_bytes(self.buf[4..6].try_into().expect("len 2"));
        if version != VERSION {
            return Err(self.poison(WireError::UnsupportedVersion(version)));
        }
        let kind_raw = u16::from_le_bytes(self.buf[6..8].try_into().expect("len 2"));
        let Some(kind) = FrameKind::from_u16(kind_raw) else {
            return Err(self.poison(WireError::UnknownKind(kind_raw)));
        };
        let len = u32::from_le_bytes(self.buf[8..12].try_into().expect("len 4"));
        if len > MAX_PAYLOAD {
            return Err(self.poison(WireError::Oversize(len)));
        }
        let total = HEADER_LEN + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[HEADER_LEN..total].to_vec();
        self.buf.drain(..total);
        Ok(Some((kind, payload)))
    }

    /// Judge end-of-stream: `Ok(())` if the peer closed exactly at a frame
    /// boundary, [`WireError::Truncated`] if bytes of an unfinished frame
    /// remain buffered (the blocking path's EOF-mid-frame error).
    pub fn finish(&self) -> Result<(), WireError> {
        match &self.poisoned {
            Some(err) => Err(err.clone()),
            None if self.buf.is_empty() => Ok(()),
            None => Err(WireError::Truncated),
        }
    }

    fn poison(&mut self, err: WireError) -> WireError {
        self.buf.clear();
        self.poisoned = Some(err.clone());
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_one_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Submit, b"hello").unwrap();
        assert_eq!(buf.len() as u64, frame_len(5));
        let mut cur = &buf[..];
        let (kind, payload) = read_frame(&mut cur).unwrap().unwrap();
        assert_eq!(kind, FrameKind::Submit);
        assert_eq!(payload, b"hello");
        assert!(read_frame(&mut cur).unwrap().is_none()); // clean EOF
    }

    #[test]
    fn header_validation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Advance, b"x").unwrap();

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert_eq!(read_frame(&mut &bad[..]), Err(WireError::BadMagic));

        let mut bad = buf.clone();
        bad[4] = 99;
        assert_eq!(
            read_frame(&mut &bad[..]),
            Err(WireError::UnsupportedVersion(99))
        );

        let mut bad = buf.clone();
        bad[6] = 0xAB;
        assert_eq!(read_frame(&mut &bad[..]), Err(WireError::UnknownKind(0xAB)));

        let mut bad = buf.clone();
        bad[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert_eq!(
            read_frame(&mut &bad[..]),
            Err(WireError::Oversize(MAX_PAYLOAD + 1))
        );
    }

    #[test]
    fn truncation_mid_header_and_mid_payload() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Cancel, b"abcdef").unwrap();
        for cut in 1..buf.len() {
            assert_eq!(
                read_frame(&mut &buf[..cut]),
                Err(WireError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn decoder_reassembles_byte_by_byte() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Submit, b"hello").unwrap();
        write_frame(&mut buf, FrameKind::Advance, b"").unwrap();
        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        for b in &buf {
            dec.push(std::slice::from_ref(b));
            while let Some(frame) = dec.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(
            frames,
            vec![
                (FrameKind::Submit, b"hello".to_vec()),
                (FrameKind::Advance, Vec::new()),
            ]
        );
        dec.finish().unwrap();
    }

    #[test]
    fn decoder_truncation_and_sticky_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Cancel, b"abcdef").unwrap();
        // EOF anywhere mid-frame is Truncated via finish().
        for cut in 1..buf.len() {
            let mut dec = FrameDecoder::new();
            dec.push(&buf[..cut]);
            assert_eq!(dec.next_frame(), Ok(None), "cut at {cut}");
            assert_eq!(dec.finish(), Err(WireError::Truncated), "cut at {cut}");
        }
        // A corrupt oversize header is rejected before its payload exists,
        // and the error is sticky even if more bytes arrive.
        let mut bad = buf.clone();
        bad[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&bad[..HEADER_LEN]);
        assert_eq!(dec.next_frame(), Err(WireError::Oversize(MAX_PAYLOAD + 1)));
        dec.push(&buf);
        assert_eq!(dec.next_frame(), Err(WireError::Oversize(MAX_PAYLOAD + 1)));
        assert_eq!(dec.finish(), Err(WireError::Oversize(MAX_PAYLOAD + 1)));
    }
}
