//! Frame layer: the versioned 12-byte header and blocking frame I/O.
//!
//! ```text
//!  offset  size  field
//!       0     4  magic  b"CARP"
//!       4     2  version (LE u16) — currently 1
//!       6     2  kind    (LE u16) — see FrameKind
//!       8     4  payload length (LE u32), ≤ MAX_PAYLOAD
//!      12     …  payload (schema depends on kind)
//! ```
//!
//! All header validation happens before the payload is read, so a corrupt
//! header never triggers an oversized allocation; all decode failures are
//! typed [`WireError`]s, never panics (pinned by the codec fuzz tests).

use std::io::{Read, Write};

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"CARP";
/// Protocol version spoken by this build.
pub const VERSION: u16 = 1;
/// Bytes in the fixed frame header.
pub const HEADER_LEN: usize = 12;
/// Upper bound on a payload (16 MiB) — a route over the largest layout is
/// orders of magnitude smaller; anything bigger is a corrupt length field.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Frame kinds (the header's `kind` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum FrameKind {
    /// Client → daemon: submit one planning request to a tenant.
    Submit = 1,
    /// Daemon → client: admission verdict for one submission.
    SubmitAck = 2,
    /// Daemon → client: terminal planning answer for one request.
    PlanReply = 3,
    /// Client → daemon: advance a tenant's simulation clock.
    Advance = 4,
    /// Daemon → client: route revisions delivered by the advance.
    AdvanceReply = 5,
    /// Client → daemon: cancel a committed route.
    Cancel = 6,
    /// Daemon → client: whether the cancel found its route.
    CancelReply = 7,
    /// Client → daemon: snapshot a tenant's metrics.
    MetricsQuery = 8,
    /// Daemon → client: the metrics snapshot.
    MetricsReply = 9,
    /// Daemon → client: a request-level protocol error (unknown tenant on
    /// a control frame, unexpected kind); the connection stays up.
    ErrorReply = 10,
}

impl FrameKind {
    fn from_u16(v: u16) -> Option<FrameKind> {
        Some(match v {
            1 => FrameKind::Submit,
            2 => FrameKind::SubmitAck,
            3 => FrameKind::PlanReply,
            4 => FrameKind::Advance,
            5 => FrameKind::AdvanceReply,
            6 => FrameKind::Cancel,
            7 => FrameKind::CancelReply,
            8 => FrameKind::MetricsQuery,
            9 => FrameKind::MetricsReply,
            10 => FrameKind::ErrorReply,
            _ => return None,
        })
    }
}

/// Everything that can go wrong on the wire. Malformed *input* maps to a
/// variant here — never a panic; I/O failures carry the error kind so the
/// type stays `PartialEq` (handy in tests and retry logic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame does not start with `b"CARP"`.
    BadMagic,
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u16),
    /// The header names a frame kind this build does not know.
    UnknownKind(u16),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversize(u32),
    /// The stream ended mid-frame (clean EOF *between* frames is not an
    /// error — [`read_frame`] returns `Ok(None)` for that).
    Truncated,
    /// A payload failed schema validation; the message says where.
    Malformed(&'static str),
    /// The daemon refused the frame because this connection exceeded its
    /// rate limit; back off and retry.
    Throttled,
    /// An underlying transport error.
    Io(std::io::ErrorKind),
    /// The peer closed the connection while a reply was still owed.
    Closed,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversize(n) => write!(f, "payload length {n} exceeds limit"),
            WireError::Truncated => write!(f, "stream truncated mid-frame"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::Throttled => write!(f, "connection rate limit exceeded"),
            WireError::Io(kind) => write!(f, "transport error: {kind:?}"),
            WireError::Closed => write!(f, "connection closed while awaiting a reply"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e.kind())
        }
    }
}

/// Write one frame (header + payload) and flush.
pub fn write_frame<W: Write>(w: &mut W, kind: FrameKind, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_PAYLOAD)
        .ok_or(WireError::Oversize(
            payload.len().min(u32::MAX as usize) as u32
        ))?;
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&VERSION.to_le_bytes());
    header[6..8].copy_from_slice(&(kind as u16).to_le_bytes());
    header[8..12].copy_from_slice(&len.to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Size on the wire of a frame carrying `payload_len` payload bytes.
pub fn frame_len(payload_len: usize) -> u64 {
    (HEADER_LEN + payload_len) as u64
}

/// Read one frame. `Ok(None)` is a clean end-of-stream (EOF exactly at a
/// frame boundary); EOF anywhere inside a frame is [`WireError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<(FrameKind, Vec<u8>)>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0usize;
    while got < HEADER_LEN {
        let n = r.read(&mut header[got..])?;
        if n == 0 {
            return if got == 0 {
                Ok(None)
            } else {
                Err(WireError::Truncated)
            };
        }
        got += n;
    }
    if header[0..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("len 2"));
    if version != VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind_raw = u16::from_le_bytes(header[6..8].try_into().expect("len 2"));
    let kind = FrameKind::from_u16(kind_raw).ok_or(WireError::UnknownKind(kind_raw))?;
    let len = u32::from_le_bytes(header[8..12].try_into().expect("len 4"));
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversize(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((kind, payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_one_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Submit, b"hello").unwrap();
        assert_eq!(buf.len() as u64, frame_len(5));
        let mut cur = &buf[..];
        let (kind, payload) = read_frame(&mut cur).unwrap().unwrap();
        assert_eq!(kind, FrameKind::Submit);
        assert_eq!(payload, b"hello");
        assert!(read_frame(&mut cur).unwrap().is_none()); // clean EOF
    }

    #[test]
    fn header_validation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Advance, b"x").unwrap();

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert_eq!(read_frame(&mut &bad[..]), Err(WireError::BadMagic));

        let mut bad = buf.clone();
        bad[4] = 99;
        assert_eq!(
            read_frame(&mut &bad[..]),
            Err(WireError::UnsupportedVersion(99))
        );

        let mut bad = buf.clone();
        bad[6] = 0xAB;
        assert_eq!(read_frame(&mut &bad[..]), Err(WireError::UnknownKind(0xAB)));

        let mut bad = buf.clone();
        bad[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert_eq!(
            read_frame(&mut &bad[..]),
            Err(WireError::Oversize(MAX_PAYLOAD + 1))
        );
    }

    #[test]
    fn truncation_mid_header_and_mid_payload() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Cancel, b"abcdef").unwrap();
        for cut in 1..buf.len() {
            assert_eq!(
                read_frame(&mut &buf[..cut]),
                Err(WireError::Truncated),
                "cut at {cut}"
            );
        }
    }
}
