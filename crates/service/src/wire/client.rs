//! [`WireClient`]: a blocking protocol client over any `Read + Write`.
//!
//! One client owns one connection. Submissions are acknowledged
//! synchronously (the daemon acks in frame order — that is the admission
//! contract), while `PlanReply` frames stream back in each tenant's commit
//! order; since the client may be awaiting an ack or a control reply when
//! a plan reply arrives, replies for other requests are buffered by id and
//! handed out when [`WireClient::wait_plan`] asks for them.

use super::frame::{read_frame, write_frame, FrameKind, WireError};
use super::schema::{self, AckStatus, ErrorCode};
use crate::service::{PlanResponse, ServiceMetrics};
use crate::tenant::WireCounters;
use crate::wal::record::ChangeRecord;
use carp_warehouse::request::{Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::types::Time;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::time::Duration;

/// Why a wire submission did not enter a tenant's queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireSubmitError {
    /// The tenant's bounded queue is full; retry after the hinted delay.
    Backpressure {
        /// Suggested client-side wait before re-submitting.
        retry_after: Duration,
        /// Tenant queue depth observed at rejection.
        queue_depth: usize,
    },
    /// The tenant is shutting down.
    ShuttingDown,
    /// No tenant by that id is registered on the daemon.
    UnknownTenant,
    /// This connection exceeded its rate limit; retry after the hint.
    Throttled {
        /// Suggested client-side wait before re-submitting.
        retry_after: Duration,
    },
    /// The connection itself failed.
    Wire(WireError),
}

impl core::fmt::Display for WireSubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireSubmitError::Backpressure {
                retry_after,
                queue_depth,
            } => write!(
                f,
                "tenant queue full ({queue_depth} pending); retry after {retry_after:?}"
            ),
            WireSubmitError::ShuttingDown => write!(f, "tenant is shutting down"),
            WireSubmitError::UnknownTenant => write!(f, "unknown tenant"),
            WireSubmitError::Throttled { retry_after } => write!(
                f,
                "connection rate limit exceeded; retry after {retry_after:?}"
            ),
            WireSubmitError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for WireSubmitError {}

/// Blocking wire-protocol client over a `Read`/`Write` connection pair.
pub struct WireClient<R: Read, W: Write> {
    reader: R,
    writer: W,
    /// Plan replies that arrived while awaiting something else, by id.
    pending: HashMap<RequestId, PlanResponse>,
}

impl<R: Read, W: Write> WireClient<R, W> {
    /// Wrap a connection.
    pub fn new(reader: R, writer: W) -> Self {
        WireClient {
            reader,
            writer,
            pending: HashMap::new(),
        }
    }

    /// Submit `request` to `tenant`. `Ok` means the request entered the
    /// tenant's queue and [`WireClient::wait_plan`] will resolve it.
    pub fn submit(&mut self, tenant: &str, request: &Request) -> Result<(), WireSubmitError> {
        let payload = schema::encode_submit(tenant, request);
        write_frame(&mut self.writer, FrameKind::Submit, &payload)
            .map_err(WireSubmitError::Wire)?;
        loop {
            let (kind, payload) = self.next_frame().map_err(WireSubmitError::Wire)?;
            match kind {
                FrameKind::SubmitAck => {
                    let (id, status) =
                        schema::decode_submit_ack(&payload).map_err(WireSubmitError::Wire)?;
                    if id != request.id {
                        return Err(WireSubmitError::Wire(WireError::Malformed(
                            "ack for a different request",
                        )));
                    }
                    return match status {
                        AckStatus::Accepted => Ok(()),
                        AckStatus::Backpressure {
                            retry_after,
                            queue_depth,
                        } => Err(WireSubmitError::Backpressure {
                            retry_after,
                            queue_depth,
                        }),
                        AckStatus::ShuttingDown => Err(WireSubmitError::ShuttingDown),
                        AckStatus::UnknownTenant => Err(WireSubmitError::UnknownTenant),
                        AckStatus::Throttled { retry_after } => {
                            Err(WireSubmitError::Throttled { retry_after })
                        }
                    };
                }
                FrameKind::PlanReply => {
                    self.buffer_plan_reply(&payload)
                        .map_err(WireSubmitError::Wire)?;
                }
                _ => {
                    return Err(WireSubmitError::Wire(WireError::Malformed(
                        "unexpected frame while awaiting submit ack",
                    )))
                }
            }
        }
    }

    /// Block until the plan reply for `id` arrives (or was already
    /// buffered) and return it.
    pub fn wait_plan(&mut self, id: RequestId) -> Result<PlanResponse, WireError> {
        if let Some(resp) = self.pending.remove(&id) {
            return Ok(resp);
        }
        loop {
            let (kind, payload) = self.next_frame()?;
            match kind {
                FrameKind::PlanReply => {
                    let (got, verdict) = schema::decode_plan_reply(&payload)?;
                    let response = verdict.into_response();
                    if got == id {
                        return Ok(response);
                    }
                    self.pending.insert(got, response);
                }
                _ => {
                    return Err(WireError::Malformed(
                        "unexpected frame while awaiting plan reply",
                    ))
                }
            }
        }
    }

    /// Advance `tenant`'s simulation clock; returns its route revisions.
    pub fn advance(
        &mut self,
        tenant: &str,
        now: Time,
    ) -> Result<Vec<(RequestId, Route)>, WireError> {
        let payload = schema::encode_advance(tenant, now);
        write_frame(&mut self.writer, FrameKind::Advance, &payload)?;
        let payload = self.await_control(FrameKind::AdvanceReply)?;
        schema::decode_advance_reply(&payload)
    }

    /// Cancel a committed route on `tenant`; `false` when unknown.
    pub fn cancel(&mut self, tenant: &str, id: RequestId) -> Result<bool, WireError> {
        let payload = schema::encode_cancel(tenant, id);
        write_frame(&mut self.writer, FrameKind::Cancel, &payload)?;
        let payload = self.await_control(FrameKind::CancelReply)?;
        schema::decode_cancel_reply(&payload)
    }

    /// Snapshot `tenant`'s service metrics and wire counters.
    pub fn metrics(&mut self, tenant: &str) -> Result<(ServiceMetrics, WireCounters), WireError> {
        let payload = schema::encode_metrics_query(tenant);
        write_frame(&mut self.writer, FrameKind::MetricsQuery, &payload)?;
        let payload = self.await_control(FrameKind::MetricsReply)?;
        schema::decode_metrics_reply(&payload)
    }

    /// Subscribe this connection to the daemon's changeset log from
    /// `from_seq` (live WAL shipping). After this returns, the daemon
    /// pushes [`FrameKind::LogChunk`] frames for the rest of the
    /// connection's life; read them with
    /// [`WireClient::next_log_chunk`]. The subscription request itself is
    /// fire-and-forget — a refusal (no journal attached, throttled)
    /// arrives as the first reply and surfaces from `next_log_chunk`.
    pub fn tail_log(&mut self, from_seq: u64) -> Result<(), WireError> {
        let payload = schema::encode_tail_log(from_seq);
        write_frame(&mut self.writer, FrameKind::TailLog, &payload)
    }

    /// Block for the next shipped log chunk: `Ok(Some((epoch, records)))`
    /// per chunk, `Ok(None)` when the primary closed the stream cleanly
    /// (its shutdown — the takeover trigger), a typed error on refusal or
    /// corruption.
    pub fn next_log_chunk(&mut self) -> Result<Option<(u64, Vec<ChangeRecord>)>, WireError> {
        let Some((kind, payload)) = read_frame(&mut self.reader)? else {
            return Ok(None);
        };
        match kind {
            FrameKind::LogChunk => {
                let view = schema::decode_log_chunk(&payload)?;
                Ok(Some((view.epoch(), view.records()?)))
            }
            FrameKind::ErrorReply => {
                let (code, _msg) = schema::decode_error_reply(&payload)?;
                Err(Self::error_reply(code))
            }
            _ => Err(WireError::Malformed(
                "unexpected frame on a log-tail subscription",
            )),
        }
    }

    fn error_reply(code: ErrorCode) -> WireError {
        match code {
            ErrorCode::UnknownTenant => WireError::Malformed("daemon knows no such tenant"),
            ErrorCode::UnexpectedFrame => WireError::Malformed("daemon rejected the frame kind"),
            ErrorCode::Throttled => WireError::Throttled,
            ErrorCode::NoJournal => WireError::Malformed("daemon has no journal attached"),
        }
    }

    /// Read frames until one of kind `want` arrives, buffering plan
    /// replies; `ErrorReply` surfaces as a typed error.
    fn await_control(&mut self, want: FrameKind) -> Result<Vec<u8>, WireError> {
        loop {
            let (kind, payload) = self.next_frame()?;
            if kind == want {
                return Ok(payload);
            }
            match kind {
                FrameKind::PlanReply => self.buffer_plan_reply(&payload)?,
                FrameKind::ErrorReply => {
                    let (code, _msg) = schema::decode_error_reply(&payload)?;
                    return Err(Self::error_reply(code));
                }
                _ => {
                    return Err(WireError::Malformed(
                        "unexpected frame while awaiting control reply",
                    ))
                }
            }
        }
    }

    fn buffer_plan_reply(&mut self, payload: &[u8]) -> Result<(), WireError> {
        let (id, verdict) = schema::decode_plan_reply(payload)?;
        self.pending.insert(id, verdict.into_response());
        Ok(())
    }

    fn next_frame(&mut self) -> Result<(FrameKind, Vec<u8>), WireError> {
        read_frame(&mut self.reader)?.ok_or(WireError::Closed)
    }
}
