//! `carp-service`: a multi-tenant online planning daemon around any
//! [`Planner`].
//!
//! The simulator in `carp-simenv` drives planners in a closed single-thread
//! loop; this crate turns planners into a *daemon*: a [`TenantRegistry`]
//! of per-warehouse [`Tenant`]s (each one a [`service::PlanningService`] —
//! bounded ingest queue with backpressure, per-request planning deadlines,
//! a serial or speculative commit pipeline, fixed-bucket latency
//! percentiles), fronted by a shared ingest layer ([`ingest`]) that routes
//! framed requests to tenant queues over a length-prefixed binary wire
//! protocol ([`wire`]) — the canonical surface, spoken identically over an
//! in-process duplex transport and TCP (`carp-service --listen`). A
//! deterministic load generator ([`loadgen`]) replays the paper's
//! W-1/W-2/W-3 day profiles through the wire path — one tenant or several
//! concurrently — and emits the per-tenant `BENCH_service.json` report
//! consumed by the CI perf job.
//!
//! Commitment of a route is a linearization point in the online CARP model
//! (Definition 3): routes are committed one at a time against the state left
//! by all earlier commits. The default service mode runs a single worker
//! thread that owns the planner; the speculative pipeline
//! ([`PlanningService::spawn_speculative`]) instead lets N workers plan
//! candidates against replicas while a single validate-and-commit stage
//! preserves the serial contract — and the exact serial output — at any
//! worker count (DESIGN.md §13).
//!
//! [`Planner`]: carp_warehouse::planner::Planner
//! [`PlanningService::spawn_speculative`]: service::PlanningService::spawn_speculative

// `deny`, not `forbid`: the mux reactor's `poll(2)` FFI shim ([`mux::sys`])
// is the single, explicitly allowed unsafe island in the crate — everything
// else still refuses `unsafe` at compile time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod ingest;
pub mod loadgen;
#[cfg(unix)]
pub mod mux;
mod pipeline;
pub mod report;
pub mod service;
pub mod tenant;
pub mod wal;
pub mod wire;

pub use histogram::{LatencyHistogram, LatencySummary};
pub use ingest::{
    duplex, serve_connection, serve_connection_limited, serve_tcp, serve_tcp_graceful, RateLimit,
};
#[cfg(unix)]
pub use loadgen::{run_connection_ladder, run_load_replication};
pub use loadgen::{
    run_load, run_load_journaled, run_load_multi, run_load_recovery, run_load_speculative,
    LoadScenario, RecoveryRun, TenantLoad,
};
#[cfg(unix)]
pub use mux::{serve_tcp_mux, MuxConfig, MuxMetrics};
pub use report::{
    routes_digest, ConnLadderRung, LoadReport, MuxBenchReport, MuxCounters, RecoveryBenchReport,
    ReplicationBenchReport, ServiceBenchReport, BENCH_VERSION,
};
pub use service::{
    ControlReply, PlanResponse, PlanningService, ServiceClient, ServiceConfig, ServiceMetrics,
    SubmitError, Ticket, WakeFn,
};
pub use tenant::{Tenant, TenantRegistry, WarehouseId, WireCounters, WireTally};
pub use wal::{TenantJournal, WalJournal};
pub use wire::{WireClient, WireError, WireSubmitError};
