//! `carp-service`: an online planning service around any [`Planner`].
//!
//! The simulator in `carp-simenv` drives planners in a closed single-thread
//! loop; this crate turns a planner into a *service*: a bounded ingest queue
//! with backpressure, per-request planning deadlines, a commit pipeline that
//! keeps the engine's batched `collide_many` / `remove_batch` paths hot, and
//! a metrics snapshot with fixed-bucket latency percentiles. A deterministic
//! load generator ([`loadgen`]) replays the paper's W-1/W-2/W-3 day profiles
//! against the service at configurable arrival-rate multipliers and emits
//! the `BENCH_service.json` report consumed by the CI perf job.
//!
//! Commitment of a route is a linearization point in the online CARP model
//! (Definition 3): routes are committed one at a time against the state left
//! by all earlier commits. The default service mode runs a single worker
//! thread that owns the planner; the speculative pipeline
//! ([`PlanningService::spawn_speculative`]) instead lets N workers plan
//! candidates against replicas while a single validate-and-commit stage
//! preserves the serial contract — and the exact serial output — at any
//! worker count (DESIGN.md §13).
//!
//! [`Planner`]: carp_warehouse::planner::Planner
//! [`PlanningService::spawn_speculative`]: service::PlanningService::spawn_speculative

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod loadgen;
mod pipeline;
pub mod report;
pub mod service;

pub use histogram::{LatencyHistogram, LatencySummary};
pub use loadgen::{run_load, run_load_speculative, LoadScenario};
pub use report::{routes_digest, LoadReport, ServiceBenchReport, BENCH_VERSION};
pub use service::{
    PlanResponse, PlanningService, ServiceClient, ServiceConfig, ServiceMetrics, SubmitError,
    Ticket,
};
