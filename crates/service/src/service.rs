//! The online planning service: a bounded ingest queue in front of a
//! dedicated planner thread.
//!
//! ```text
//!  submitters ──▶ bounded queue ──▶ worker thread ──▶ reply tickets
//!   (many)        (backpressure:     deadline check,
//!                  reject + retry-   planner.plan(),
//!                  after when full)  over-budget cancel,
//!                                    batched advance/retire
//! ```
//!
//! Planning must stay **serial**: the online contract (Definition 3)
//! requires every route to be collision-checked against *all previously
//! committed* routes, so commits are a linearization point. The service
//! therefore runs one worker thread that owns the planner, and gets its
//! parallelism from (a) many submitters enqueueing concurrently, (b) the
//! planner's own engine fanning probe batches out across partitions
//! ([`StoreEngine`](../../carp_geometry/engine/struct.StoreEngine.html)),
//! and (c) metrics readers never touching the planner.
//!
//! Admission control and degradation:
//!
//! * **Backpressure** — the ingest queue is bounded; a submit against a
//!   full queue is rejected immediately with a retry-after hint instead of
//!   growing the queue without bound (the paper's planning-time budget has
//!   no slack for unbounded waiting).
//! * **Deadlines** — each request carries the service's end-to-end budget.
//!   A request that already exceeded it while queued is *shed* unplanned;
//!   a plan that completes over budget is *cancelled* (the planner's
//!   `cancel` path retires its segments) and converted into a refusal, so
//!   an over-budget plan never stalls the robot fleet on a stale answer.

use crate::histogram::{LatencyHistogram, LatencySummary};
use carp_warehouse::planner::{EngineMetrics, PlanOutcome, Planner};
use carp_warehouse::request::{Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::types::Time;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Capacity of the bounded ingest queue; submissions against a full
    /// queue are rejected with [`SubmitError::Backpressure`].
    pub queue_capacity: usize,
    /// End-to-end budget per request (queue wait + planning). `None`
    /// disables deadline enforcement — required for bit-deterministic
    /// replays, where refusals must not depend on wall-clock speed.
    pub deadline: Option<Duration>,
    /// Retry-after hint handed to rejected submitters.
    pub retry_after: Duration,
    /// Requests drained from the queue per worker cycle. Larger batches
    /// amortize lock traffic; the worker still answers strictly in FIFO
    /// order so admission order fully determines commit order.
    pub batch_limit: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 256,
            deadline: Some(Duration::from_millis(250)),
            retry_after: Duration::from_millis(5),
            batch_limit: 32,
        }
    }
}

/// Terminal answer for one submitted request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanResponse {
    /// A collision-free route was committed.
    Planned(Route),
    /// The planner found no route under its search limits.
    Infeasible,
    /// The request sat in the queue past its deadline and was shed without
    /// ever reaching the planner.
    DeadlineShed,
    /// The planner produced a route but blew the budget; the route was
    /// cancelled (uncommitted) and the requester must re-submit.
    DeadlineOverrun,
}

impl PlanResponse {
    /// The committed route, if any.
    pub fn route(&self) -> Option<&Route> {
        match self {
            PlanResponse::Planned(r) => Some(r),
            _ => None,
        }
    }

    /// Whether this response is a refusal (shed or overrun) rather than a
    /// planning verdict.
    pub fn is_refusal(&self) -> bool {
        matches!(
            self,
            PlanResponse::DeadlineShed | PlanResponse::DeadlineOverrun
        )
    }
}

/// Submission rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded ingest queue is full; retry after the hinted delay.
    Backpressure {
        /// Suggested client-side wait before re-submitting.
        retry_after: Duration,
        /// Queue depth observed at rejection (== capacity).
        queue_depth: usize,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
}

impl core::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SubmitError::Backpressure {
                retry_after,
                queue_depth,
            } => write!(
                f,
                "queue full ({queue_depth} pending); retry after {retry_after:?}"
            ),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Handle for one submitted request; resolves to its [`PlanResponse`].
#[derive(Debug)]
pub struct Ticket {
    id: RequestId,
    rx: mpsc::Receiver<PlanResponse>,
}

impl Ticket {
    /// The request id this ticket tracks.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Block until the worker answers. Panics if the service died without
    /// answering (worker panic) — a bug, not an operational state.
    pub fn wait(self) -> PlanResponse {
        self.rx.recv().expect("service dropped a ticket")
    }
}

/// One queued unit of work.
struct Envelope {
    request: Request,
    enqueued_at: Instant,
    reply: mpsc::Sender<PlanResponse>,
}

/// Control-plane commands; these bypass admission control (they carry the
/// simulation clock and lifecycle, not load).
enum Control {
    /// Drive `Planner::advance(now)`: batched retirement plus any route
    /// revisions, which are sent back to the caller.
    Advance {
        now: Time,
        reply: mpsc::Sender<Vec<(RequestId, Route)>>,
    },
    /// Cancel a committed route.
    Cancel {
        id: RequestId,
        reply: mpsc::Sender<bool>,
    },
}

/// Monotone event counters, readable without locking the queue.
#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    rejected_backpressure: AtomicU64,
    planned: AtomicU64,
    infeasible: AtomicU64,
    shed_deadline: AtomicU64,
    cancelled_deadline: AtomicU64,
    in_flight: AtomicU64,
}

/// Queue state behind the mutex.
struct QueueState {
    plan: VecDeque<Envelope>,
    control: VecDeque<Control>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    wakeup: Condvar,
    counters: Counters,
    config: ServiceConfig,
    /// Wall-clock time spent inside `Planner::plan` per request.
    planning_hist: Mutex<LatencyHistogram>,
    /// End-to-end submit → reply latency per answered request.
    turnaround_hist: Mutex<LatencyHistogram>,
    /// Last engine metrics published by the worker (updated per cycle).
    engine: Mutex<Option<EngineMetrics>>,
}

/// Point-in-time, serializable view of the service's operational state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceMetrics {
    /// Requests currently waiting in the ingest queue.
    pub queue_depth: usize,
    /// Requests dequeued but not yet answered.
    pub in_flight: u64,
    /// Total submissions accepted into the queue.
    pub submitted: u64,
    /// Submissions rejected by backpressure (never enqueued).
    pub rejected_backpressure: u64,
    /// Requests answered with a committed route.
    pub planned: u64,
    /// Requests answered `Infeasible` by the planner.
    pub infeasible: u64,
    /// Requests shed in the queue past their deadline (never planned).
    pub shed_deadline: u64,
    /// Plans cancelled for finishing over budget.
    pub cancelled_deadline: u64,
    /// Wall-clock planning latency (inside `Planner::plan`).
    pub planning_latency: LatencySummary,
    /// End-to-end submit → reply latency.
    pub turnaround_latency: LatencySummary,
    /// Engine counters from the planner's collision backend, when it has
    /// one (refreshed once per worker cycle).
    pub engine: Option<EngineMetrics>,
}

impl ServiceMetrics {
    /// Refusals (shed + cancelled + backpressure) over all submission
    /// attempts; 0.0 when nothing was submitted.
    pub fn refusal_rate(&self) -> f64 {
        let attempts = self.submitted + self.rejected_backpressure;
        if attempts == 0 {
            return 0.0;
        }
        let refused = self.rejected_backpressure + self.shed_deadline + self.cancelled_deadline;
        refused as f64 / attempts as f64
    }
}

/// Cloneable submission/observation handle; safe to share across threads.
#[derive(Clone)]
pub struct ServiceClient {
    shared: Arc<Shared>,
}

impl ServiceClient {
    /// Submit a planning request. Non-blocking: a full queue rejects with
    /// [`SubmitError::Backpressure`] immediately (the retry-after hint is
    /// the admission-control contract — callers back off, the queue never
    /// grows past its bound).
    pub fn submit(&self, request: Request) -> Result<Ticket, SubmitError> {
        let (tx, rx) = mpsc::channel();
        let id = request.id;
        {
            let mut st = self.shared.state.lock().expect("service lock");
            if st.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if st.plan.len() >= self.shared.config.queue_capacity {
                self.shared
                    .counters
                    .rejected_backpressure
                    .fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Backpressure {
                    retry_after: self.shared.config.retry_after,
                    queue_depth: st.plan.len(),
                });
            }
            st.plan.push_back(Envelope {
                request,
                enqueued_at: Instant::now(),
                reply: tx,
            });
        }
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        self.shared.wakeup.notify_one();
        Ok(Ticket { id, rx })
    }

    /// Advance the planner's clock to `now` (batched retirement through the
    /// engine's `remove_batch` path) and return any route revisions.
    /// Blocks until the worker has processed the command.
    pub fn advance(&self, now: Time) -> Vec<(RequestId, Route)> {
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.shared.state.lock().expect("service lock");
            if st.shutdown {
                return Vec::new();
            }
            st.control.push_back(Control::Advance { now, reply: tx });
        }
        self.shared.wakeup.notify_one();
        rx.recv().unwrap_or_default()
    }

    /// Cancel a committed route (task aborted); `false` when unknown.
    pub fn cancel(&self, id: RequestId) -> bool {
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.shared.state.lock().expect("service lock");
            if st.shutdown {
                return false;
            }
            st.control.push_back(Control::Cancel { id, reply: tx });
        }
        self.shared.wakeup.notify_one();
        rx.recv().unwrap_or(false)
    }

    /// Snapshot the service metrics. Never touches the planner thread.
    pub fn metrics(&self) -> ServiceMetrics {
        let queue_depth = self.shared.state.lock().expect("service lock").plan.len();
        let c = &self.shared.counters;
        ServiceMetrics {
            queue_depth,
            in_flight: c.in_flight.load(Ordering::Relaxed),
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected_backpressure: c.rejected_backpressure.load(Ordering::Relaxed),
            planned: c.planned.load(Ordering::Relaxed),
            infeasible: c.infeasible.load(Ordering::Relaxed),
            shed_deadline: c.shed_deadline.load(Ordering::Relaxed),
            cancelled_deadline: c.cancelled_deadline.load(Ordering::Relaxed),
            planning_latency: self
                .shared
                .planning_hist
                .lock()
                .expect("hist lock")
                .summary(),
            turnaround_latency: self
                .shared
                .turnaround_hist
                .lock()
                .expect("hist lock")
                .summary(),
            engine: *self.shared.engine.lock().expect("engine lock"),
        }
    }
}

/// The running service: owns the worker thread and the planner inside it.
pub struct PlanningService<P: Planner + Send + 'static> {
    shared: Arc<Shared>,
    worker: std::thread::JoinHandle<P>,
}

impl<P: Planner + Send + 'static> PlanningService<P> {
    /// Spawn the worker thread around `planner`.
    pub fn spawn(planner: P, config: ServiceConfig) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(config.batch_limit > 0, "batch limit must be positive");
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                plan: VecDeque::with_capacity(config.queue_capacity),
                control: VecDeque::new(),
                shutdown: false,
            }),
            wakeup: Condvar::new(),
            counters: Counters::default(),
            config,
            planning_hist: Mutex::new(LatencyHistogram::new()),
            turnaround_hist: Mutex::new(LatencyHistogram::new()),
            engine: Mutex::new(None),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("carp-service-worker".into())
            .spawn(move || worker_loop(planner, worker_shared))
            .expect("spawn service worker");
        PlanningService { shared, worker }
    }

    /// A cloneable client handle for submitters and metrics readers.
    pub fn client(&self) -> ServiceClient {
        ServiceClient {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Drain the queue, stop the worker, and return the planner for
    /// inspection (engine metrics, provenance, memory accounting).
    pub fn shutdown(self) -> P {
        {
            let mut st = self.shared.state.lock().expect("service lock");
            st.shutdown = true;
        }
        self.shared.wakeup.notify_all();
        self.worker.join().expect("service worker panicked")
    }
}

fn worker_loop<P: Planner>(mut planner: P, shared: Arc<Shared>) -> P {
    loop {
        let (controls, batch, stop) = {
            let mut st = shared.state.lock().expect("service lock");
            while st.control.is_empty() && st.plan.is_empty() && !st.shutdown {
                st = shared.wakeup.wait(st).expect("service lock");
            }
            let controls: Vec<Control> = st.control.drain(..).collect();
            let take = st.plan.len().min(shared.config.batch_limit);
            let batch: Vec<Envelope> = st.plan.drain(..take).collect();
            let stop = st.shutdown && st.plan.is_empty() && st.control.is_empty();
            (controls, batch, stop)
        };
        shared
            .counters
            .in_flight
            .store(batch.len() as u64, Ordering::Relaxed);

        for control in controls {
            match control {
                Control::Advance { now, reply } => {
                    let _ = reply.send(planner.advance(now));
                }
                Control::Cancel { id, reply } => {
                    let _ = reply.send(planner.cancel(id));
                }
            }
        }

        for env in batch {
            process_one(&mut planner, &shared, env);
            shared.counters.in_flight.fetch_sub(1, Ordering::Relaxed);
        }

        if let Some(m) = planner.engine_metrics() {
            *shared.engine.lock().expect("engine lock") = Some(m);
        }

        if stop {
            return planner;
        }
    }
}

fn process_one<P: Planner>(planner: &mut P, shared: &Shared, env: Envelope) {
    let deadline = shared.config.deadline;
    // Shed before planning: a request that already blew its budget queueing
    // would waste planner time producing an answer nobody can use.
    if let Some(d) = deadline {
        if env.enqueued_at.elapsed() > d {
            shared
                .counters
                .shed_deadline
                .fetch_add(1, Ordering::Relaxed);
            record_turnaround(shared, env.enqueued_at);
            let _ = env.reply.send(PlanResponse::DeadlineShed);
            return;
        }
    }
    let started = Instant::now();
    let outcome = planner.plan(&env.request);
    shared
        .planning_hist
        .lock()
        .expect("hist lock")
        .record(started.elapsed());
    let response = match outcome {
        PlanOutcome::Planned(route) => {
            // Over-budget plans are *uncommitted*: the cancel path releases
            // the route's segments/reservations, so the refusal leaves no
            // trace in the collision state and the robot is free to retry.
            if deadline.is_some_and(|d| env.enqueued_at.elapsed() > d) {
                planner.cancel(env.request.id);
                shared
                    .counters
                    .cancelled_deadline
                    .fetch_add(1, Ordering::Relaxed);
                PlanResponse::DeadlineOverrun
            } else {
                shared.counters.planned.fetch_add(1, Ordering::Relaxed);
                PlanResponse::Planned(route)
            }
        }
        PlanOutcome::Infeasible => {
            shared.counters.infeasible.fetch_add(1, Ordering::Relaxed);
            PlanResponse::Infeasible
        }
    };
    record_turnaround(shared, env.enqueued_at);
    let _ = env.reply.send(response);
}

fn record_turnaround(shared: &Shared, enqueued_at: Instant) {
    shared
        .turnaround_hist
        .lock()
        .expect("hist lock")
        .record(enqueued_at.elapsed());
}

#[cfg(test)]
mod tests {
    use super::*;
    use carp_warehouse::request::QueryKind;
    use carp_warehouse::types::Cell;

    /// Test double: plans a stationary route after an optional artificial
    /// delay, and records cancels.
    struct StubPlanner {
        delay: Duration,
        cancelled: Vec<RequestId>,
        planned: usize,
    }

    impl StubPlanner {
        fn new(delay: Duration) -> Self {
            StubPlanner {
                delay,
                cancelled: Vec::new(),
                planned: 0,
            }
        }
    }

    impl Planner for StubPlanner {
        fn name(&self) -> &'static str {
            "stub"
        }
        fn plan(&mut self, req: &Request) -> PlanOutcome {
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            self.planned += 1;
            PlanOutcome::Planned(Route::stationary(req.t, req.origin))
        }
        fn cancel(&mut self, id: RequestId) -> bool {
            self.cancelled.push(id);
            true
        }
        fn memory_bytes(&self) -> usize {
            0
        }
    }

    fn req(id: RequestId) -> Request {
        Request::new(id, 0, Cell::new(0, 0), Cell::new(0, 1), QueryKind::Pickup)
    }

    #[test]
    fn plans_flow_through_and_shutdown_returns_planner() {
        let svc =
            PlanningService::spawn(StubPlanner::new(Duration::ZERO), ServiceConfig::default());
        let client = svc.client();
        let tickets: Vec<Ticket> = (0..10).map(|i| client.submit(req(i)).unwrap()).collect();
        for t in tickets {
            assert!(matches!(t.wait(), PlanResponse::Planned(_)));
        }
        let m = client.metrics();
        assert_eq!(m.planned, 10);
        assert_eq!(m.submitted, 10);
        assert_eq!(m.planning_latency.count, 10);
        let planner = svc.shutdown();
        assert_eq!(planner.planned, 10);
    }

    #[test]
    fn backpressure_rejects_instead_of_growing() {
        // Worker is slow (10 ms per plan), queue holds 4: flooding 50
        // submissions must reject most of them, and the queue never exceeds
        // its bound.
        let svc = PlanningService::spawn(
            StubPlanner::new(Duration::from_millis(10)),
            ServiceConfig {
                queue_capacity: 4,
                deadline: None,
                batch_limit: 1,
                ..Default::default()
            },
        );
        let client = svc.client();
        let mut accepted = Vec::new();
        let mut rejected = 0usize;
        for i in 0..50 {
            match client.submit(req(i)) {
                Ok(t) => accepted.push(t),
                Err(SubmitError::Backpressure {
                    retry_after,
                    queue_depth,
                }) => {
                    rejected += 1;
                    assert!(queue_depth <= 4);
                    assert!(!retry_after.is_zero());
                }
                Err(e) => panic!("unexpected {e}"),
            }
            assert!(client.metrics().queue_depth <= 4, "queue grew past bound");
        }
        assert!(rejected > 0, "flood never hit backpressure");
        let m = client.metrics();
        assert_eq!(m.rejected_backpressure as usize, rejected);
        assert_eq!(m.submitted as usize, accepted.len());
        // Every accepted request still gets answered.
        for t in accepted {
            assert!(matches!(t.wait(), PlanResponse::Planned(_)));
        }
        svc.shutdown();
    }

    #[test]
    fn over_budget_plans_are_cancelled_not_committed() {
        let svc = PlanningService::spawn(
            StubPlanner::new(Duration::from_millis(25)),
            ServiceConfig {
                deadline: Some(Duration::from_millis(1)),
                ..Default::default()
            },
        );
        let client = svc.client();
        let t = client.submit(req(0)).unwrap();
        assert_eq!(t.wait(), PlanResponse::DeadlineOverrun);
        let m = client.metrics();
        assert_eq!(m.cancelled_deadline, 1);
        assert_eq!(m.planned, 0);
        let planner = svc.shutdown();
        assert_eq!(planner.cancelled, vec![0], "route must be uncommitted");
    }

    #[test]
    fn queue_wait_past_deadline_sheds_without_planning() {
        // First request holds the worker for 50 ms; the second's 5 ms
        // deadline expires while queued, so it is shed unplanned.
        let svc = PlanningService::spawn(
            StubPlanner::new(Duration::from_millis(50)),
            ServiceConfig {
                deadline: Some(Duration::from_millis(5)),
                batch_limit: 1,
                ..Default::default()
            },
        );
        let client = svc.client();
        let t0 = client.submit(req(0)).unwrap();
        let t1 = client.submit(req(1)).unwrap();
        // Request 0 itself overruns (50 ms > 5 ms) — that's fine, we only
        // care that request 1 never reached the planner.
        let _ = t0.wait();
        assert_eq!(t1.wait(), PlanResponse::DeadlineShed);
        let planner = svc.shutdown();
        assert_eq!(planner.planned, 1, "shed request must not be planned");
        let _ = client.metrics();
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let svc =
            PlanningService::spawn(StubPlanner::new(Duration::ZERO), ServiceConfig::default());
        let client = svc.client();
        svc.shutdown();
        assert!(matches!(
            client.submit(req(0)),
            Err(SubmitError::ShuttingDown)
        ));
    }

    #[test]
    fn refusal_rate_accounts_all_refusal_paths() {
        let m = ServiceMetrics {
            queue_depth: 0,
            in_flight: 0,
            submitted: 90,
            rejected_backpressure: 10,
            planned: 80,
            infeasible: 2,
            shed_deadline: 5,
            cancelled_deadline: 3,
            planning_latency: LatencyHistogram::new().summary(),
            turnaround_latency: LatencyHistogram::new().summary(),
            engine: None,
        };
        assert!((m.refusal_rate() - 0.18).abs() < 1e-12);
    }
}
