//! The online planning service: a bounded ingest queue in front of a
//! planner worker pool.
//!
//! ```text
//!  submitters ──▶ bounded queue ──▶ worker thread ──▶ reply tickets
//!   (many)        (backpressure:     deadline check,
//!                  reject + retry-   planner.plan(),
//!                  after when full)  over-budget cancel,
//!                                    batched advance/retire
//! ```
//!
//! **Commits stay serial**: the online contract (Definition 3) requires
//! every route to be collision-checked against *all previously committed*
//! routes, so commits are a linearization point. The default mode
//! ([`PlanningService::spawn`]) satisfies it the blunt way — one worker
//! thread owns the planner and both plans and commits — and gets its
//! parallelism from (a) many submitters enqueueing concurrently, (b) the
//! planner's own engine fanning probe batches out across partitions
//! ([`StoreEngine`](../../carp_geometry/engine/struct.StoreEngine.html)),
//! and (c) metrics readers never touching the planner.
//!
//! [`PlanningService::spawn_speculative`] decouples planning latency from
//! the commit point: `workers` threads plan candidates against replicas of
//! the committed state while a single validate-and-commit stage re-checks
//! each candidate and adopts winners in strict admission order, so the
//! serial contract — and the exact serial output — is preserved at any
//! worker count. See the `pipeline` module and DESIGN.md §13.
//!
//! Admission control and degradation:
//!
//! * **Backpressure** — the ingest queue is bounded; a submit against a
//!   full queue is rejected immediately with a retry-after hint instead of
//!   growing the queue without bound (the paper's planning-time budget has
//!   no slack for unbounded waiting).
//! * **Deadlines** — each request carries the service's end-to-end budget.
//!   A request that already exceeded it while queued is *shed* unplanned;
//!   a plan that completes over budget is *cancelled* (the planner's
//!   `cancel` path retires its segments) and converted into a refusal, so
//!   an over-budget plan never stalls the robot fleet on a stale answer.

use crate::histogram::{LatencyHistogram, LatencySummary};
use carp_warehouse::planner::{
    CancelToken, EngineMetrics, PlanOutcome, Planner, SpeculativePlanner,
};
use carp_warehouse::request::{Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::types::Time;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Capacity of the bounded ingest queue; submissions against a full
    /// queue are rejected with [`SubmitError::Backpressure`].
    pub queue_capacity: usize,
    /// End-to-end budget per request (queue wait + planning). `None`
    /// disables deadline enforcement — required for bit-deterministic
    /// replays, where refusals must not depend on wall-clock speed.
    pub deadline: Option<Duration>,
    /// Retry-after hint handed to rejected submitters.
    pub retry_after: Duration,
    /// Requests drained from the queue per worker cycle. Larger batches
    /// amortize lock traffic; the worker still answers strictly in FIFO
    /// order so admission order fully determines commit order.
    pub batch_limit: usize,
    /// Planner worker threads. `1` (the default) runs the classic serial
    /// worker that both plans and commits; `> 1` enables the speculative
    /// plan/validate/commit pipeline under
    /// [`PlanningService::spawn_speculative`].
    pub workers: usize,
    /// Replan attempts granted to a speculative candidate that a newer
    /// commit invalidated, before the commit stage gives up on speculation
    /// and replans the request inline on the authoritative planner.
    pub speculation_retries: u32,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 256,
            deadline: Some(Duration::from_millis(250)),
            retry_after: Duration::from_millis(5),
            batch_limit: 32,
            workers: 1,
            speculation_retries: 2,
        }
    }
}

/// Terminal answer for one submitted request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanResponse {
    /// A collision-free route was committed.
    Planned(Route),
    /// The planner found no route under its search limits.
    Infeasible,
    /// The request sat in the queue past its deadline and was shed without
    /// ever reaching the planner.
    DeadlineShed,
    /// The planner produced a route but blew the budget; the route was
    /// cancelled (uncommitted) and the requester must re-submit.
    DeadlineOverrun,
    /// The service died (worker panic) before answering; the request was
    /// never committed. Surfaced as a value so one crashed plan does not
    /// cascade panics through every outstanding ticket.
    ServiceDied,
}

impl PlanResponse {
    /// The committed route, if any.
    pub fn route(&self) -> Option<&Route> {
        match self {
            PlanResponse::Planned(r) => Some(r),
            _ => None,
        }
    }

    /// Whether this response is a refusal (shed or overrun) rather than a
    /// planning verdict.
    pub fn is_refusal(&self) -> bool {
        matches!(
            self,
            PlanResponse::DeadlineShed | PlanResponse::DeadlineOverrun
        )
    }
}

/// Submission rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded ingest queue is full; retry after the hinted delay.
    Backpressure {
        /// Suggested client-side wait before re-submitting.
        retry_after: Duration,
        /// Queue depth observed at rejection (== capacity).
        queue_depth: usize,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
}

impl core::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SubmitError::Backpressure {
                retry_after,
                queue_depth,
            } => write!(
                f,
                "queue full ({queue_depth} pending); retry after {retry_after:?}"
            ),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Handle for one submitted request; resolves to its [`PlanResponse`].
#[derive(Debug)]
pub struct Ticket {
    id: RequestId,
    rx: mpsc::Receiver<PlanResponse>,
}

impl Ticket {
    /// The request id this ticket tracks.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Block until the worker answers. A service that died without
    /// answering (worker panic dropped the reply channel) resolves to
    /// [`PlanResponse::ServiceDied`] instead of panicking the waiter.
    pub fn wait(self) -> PlanResponse {
        self.rx.recv().unwrap_or(PlanResponse::ServiceDied)
    }

    /// Non-blocking probe: `Some(response)` once the worker has answered
    /// (a dead worker resolves to [`PlanResponse::ServiceDied`], as in
    /// [`Ticket::wait`]), `None` while the answer is still pending. The
    /// event-loop front-end ([`crate::mux`]) polls tickets this way so a
    /// slow plan never blocks the reactor thread.
    pub fn poll_response(&self) -> Option<PlanResponse> {
        match self.rx.try_recv() {
            Ok(resp) => Some(resp),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(PlanResponse::ServiceDied),
        }
    }
}

/// Completion callback a nonblocking submitter can attach to a request:
/// invoked by the worker *after* the reply has been sent, so a reactor can
/// sleep in `poll(2)` and be nudged the instant a ticket is resolvable.
pub type WakeFn = Arc<dyn Fn() + Send + Sync>;

/// Reply channel plus the optional completion waker. `send` delivers the
/// value first and fires the waker second — a woken poller is guaranteed to
/// observe the value.
pub(crate) struct ReplySender<T> {
    pub(crate) tx: mpsc::Sender<T>,
    pub(crate) waker: Option<WakeFn>,
}

impl<T> ReplySender<T> {
    pub(crate) fn new(tx: mpsc::Sender<T>, waker: Option<WakeFn>) -> Self {
        ReplySender { tx, waker }
    }

    pub(crate) fn send(&self, value: T) -> Result<(), mpsc::SendError<T>> {
        let out = self.tx.send(value);
        if let Some(wake) = &self.waker {
            wake();
        }
        out
    }
}

impl<T> Clone for ReplySender<T> {
    fn clone(&self) -> Self {
        ReplySender {
            tx: self.tx.clone(),
            waker: self.waker.clone(),
        }
    }
}

/// Deferred handle for a control command ([`ServiceClient::advance_deferred`]
/// / [`ServiceClient::cancel_deferred`]): resolves to the command's reply
/// without ever blocking the poller. `default` is the value surfaced when
/// the service shut down before answering (mirroring the blocking paths'
/// `unwrap_or` fallbacks).
pub struct ControlReply<T> {
    rx: Option<mpsc::Receiver<T>>,
    default: fn() -> T,
}

impl<T> ControlReply<T> {
    fn pending(rx: mpsc::Receiver<T>, default: fn() -> T) -> Self {
        ControlReply {
            rx: Some(rx),
            default,
        }
    }

    /// A reply that is already resolved to the fallback value (the service
    /// was shutting down; the command was never enqueued).
    fn resolved(default: fn() -> T) -> Self {
        ControlReply { rx: None, default }
    }

    /// Non-blocking probe: `Some(value)` once answered (or immediately for
    /// a shutdown-resolved reply), `None` while pending.
    pub fn poll_response(&self) -> Option<T> {
        match &self.rx {
            None => Some((self.default)()),
            Some(rx) => match rx.try_recv() {
                Ok(v) => Some(v),
                Err(mpsc::TryRecvError::Empty) => None,
                Err(mpsc::TryRecvError::Disconnected) => Some((self.default)()),
            },
        }
    }

    /// Block until the command is answered.
    pub fn wait(self) -> T {
        match self.rx {
            None => (self.default)(),
            Some(rx) => rx.recv().unwrap_or_else(|_| (self.default)()),
        }
    }
}

/// One queued unit of work.
pub(crate) struct Envelope {
    /// Admission sequence number: the position in the total admission order
    /// (plan submissions and control commands share one counter). The
    /// speculative commit stage commits strictly in `seq` order, which is
    /// what makes its output independent of worker count.
    pub(crate) seq: u64,
    /// Speculative replan attempts already spent on this request.
    pub(crate) attempt: u32,
    pub(crate) request: Request,
    pub(crate) enqueued_at: Instant,
    pub(crate) reply: ReplySender<PlanResponse>,
}

/// Control-plane commands; these bypass admission control (they carry the
/// simulation clock and lifecycle, not load).
pub(crate) enum Control {
    /// Drive `Planner::advance(now)`: batched retirement plus any route
    /// revisions, which are sent back to the caller.
    Advance {
        now: Time,
        reply: ReplySender<Vec<(RequestId, Route)>>,
    },
    /// Cancel a committed route.
    Cancel {
        id: RequestId,
        reply: ReplySender<bool>,
    },
}

/// Monotone event counters, readable without locking the queue.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected_backpressure: AtomicU64,
    pub(crate) planned: AtomicU64,
    pub(crate) infeasible: AtomicU64,
    pub(crate) shed_deadline: AtomicU64,
    pub(crate) cancelled_deadline: AtomicU64,
    pub(crate) in_flight: AtomicU64,
    /// Speculative candidates that validated clean and committed as-is.
    pub(crate) speculation_wins: AtomicU64,
    /// Candidates invalidated by a newer commit and requeued for replan.
    pub(crate) speculation_retries: AtomicU64,
    /// Candidates that exhausted their retry budget and fell back to an
    /// inline authoritative replan at the commit stage.
    pub(crate) speculation_aborts: AtomicU64,
}

/// Queue state behind the mutex.
pub(crate) struct QueueState {
    pub(crate) plan: VecDeque<Envelope>,
    pub(crate) control: VecDeque<(u64, Control)>,
    /// Speculative planning results, keyed by admission sequence. The
    /// commit stage consumes entry `next`; workers insert out of order.
    pub(crate) results: BTreeMap<u64, crate::pipeline::SpecResult>,
    /// Next admission sequence number to hand out.
    pub(crate) admitted: u64,
    pub(crate) shutdown: bool,
}

pub(crate) struct Shared {
    pub(crate) state: Mutex<QueueState>,
    /// Wakes planner workers (serial or speculative) on new plan work.
    pub(crate) wakeup: Condvar,
    /// Wakes the speculative commit stage on new results / controls.
    pub(crate) commit_cv: Condvar,
    pub(crate) counters: Counters,
    pub(crate) config: ServiceConfig,
    /// Queue wait per request that reached a planner (dequeue − submit).
    pub(crate) queue_hist: Mutex<LatencyHistogram>,
    /// Wall-clock time spent inside `Planner::plan` per request.
    pub(crate) planning_hist: Mutex<LatencyHistogram>,
    /// Commit-point time per committed route: validate+commit in
    /// speculative mode, journal+accept in serial mode (so WAL overhead
    /// shows up here in both modes).
    pub(crate) commit_hist: Mutex<LatencyHistogram>,
    /// End-to-end submit → reply latency per answered request.
    pub(crate) turnaround_hist: Mutex<LatencyHistogram>,
    /// Last engine metrics published by the worker (updated per cycle).
    pub(crate) engine: Mutex<Option<EngineMetrics>>,
    /// Durable changeset journal, written at the validate-and-commit
    /// point (`None` = durability off). Lives here rather than in
    /// [`ServiceConfig`] so the config stays `Copy`.
    pub(crate) journal: Option<crate::wal::TenantJournal>,
}

/// Point-in-time, serializable view of the service's operational state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceMetrics {
    /// Planner worker threads serving the queue (1 = serial mode).
    pub workers: usize,
    /// Requests currently waiting in the ingest queue.
    pub queue_depth: usize,
    /// Requests dequeued but not yet answered.
    pub in_flight: u64,
    /// Total submissions accepted into the queue.
    pub submitted: u64,
    /// Submissions rejected by backpressure (never enqueued).
    pub rejected_backpressure: u64,
    /// Requests answered with a committed route.
    pub planned: u64,
    /// Requests answered `Infeasible` by the planner.
    pub infeasible: u64,
    /// Requests shed in the queue past their deadline (never planned).
    pub shed_deadline: u64,
    /// Plans cancelled for finishing over budget.
    pub cancelled_deadline: u64,
    /// Speculative candidates that validated clean and committed as-is
    /// (zero in serial mode).
    pub speculation_wins: u64,
    /// Speculative candidates invalidated by a newer commit and requeued.
    pub speculation_retries: u64,
    /// Speculative candidates that exhausted their retry budget and fell
    /// back to an inline authoritative replan.
    pub speculation_aborts: u64,
    /// Queue wait (submit → dequeue) for requests that reached a planner.
    pub queue_latency: LatencySummary,
    /// Wall-clock planning latency (inside `Planner::plan`).
    pub planning_latency: LatencySummary,
    /// Commit-point latency per committed route: validate+commit in
    /// speculative mode, journal+accept in serial mode.
    pub commit_latency: LatencySummary,
    /// End-to-end submit → reply latency.
    pub turnaround_latency: LatencySummary,
    /// Engine counters from the planner's collision backend, when it has
    /// one (refreshed once per worker cycle).
    pub engine: Option<EngineMetrics>,
}

impl ServiceMetrics {
    /// Refusals (shed + cancelled + backpressure) over all submission
    /// attempts; 0.0 when nothing was submitted.
    pub fn refusal_rate(&self) -> f64 {
        let attempts = self.submitted + self.rejected_backpressure;
        if attempts == 0 {
            return 0.0;
        }
        let refused = self.rejected_backpressure + self.shed_deadline + self.cancelled_deadline;
        refused as f64 / attempts as f64
    }
}

/// Cloneable submission/observation handle; safe to share across threads.
#[derive(Clone)]
pub struct ServiceClient {
    shared: Arc<Shared>,
}

impl ServiceClient {
    /// Submit a planning request. Non-blocking: a full queue rejects with
    /// [`SubmitError::Backpressure`] immediately (the retry-after hint is
    /// the admission-control contract — callers back off, the queue never
    /// grows past its bound).
    pub fn submit(&self, request: Request) -> Result<Ticket, SubmitError> {
        self.submit_with_waker(request, None)
    }

    /// [`ServiceClient::submit`] with an optional completion waker, fired
    /// by the worker right after the reply is sent. A nonblocking poller
    /// (the [`crate::mux`] reactor) passes its self-pipe nudge here so
    /// resolved tickets are flushed without a busy poll-timeout wait.
    pub fn submit_with_waker(
        &self,
        request: Request,
        waker: Option<WakeFn>,
    ) -> Result<Ticket, SubmitError> {
        let (tx, rx) = mpsc::channel();
        let id = request.id;
        {
            let mut st = self.shared.state.lock().expect("service lock");
            if st.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if st.plan.len() >= self.shared.config.queue_capacity {
                self.shared
                    .counters
                    .rejected_backpressure
                    .fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Backpressure {
                    retry_after: self.shared.config.retry_after,
                    queue_depth: st.plan.len(),
                });
            }
            let seq = st.admitted;
            st.admitted += 1;
            st.plan.push_back(Envelope {
                seq,
                attempt: 0,
                request,
                enqueued_at: Instant::now(),
                reply: ReplySender::new(tx, waker),
            });
            // Incremented under the lock: a concurrent `metrics()` snapshot
            // must never observe `queue_depth > submitted`.
            self.shared
                .counters
                .submitted
                .fetch_add(1, Ordering::Relaxed);
        }
        self.shared.wakeup.notify_one();
        Ok(Ticket { id, rx })
    }

    /// Advance the planner's clock to `now` (batched retirement through the
    /// engine's `remove_batch` path) and return any route revisions.
    /// Blocks until the worker has processed the command.
    pub fn advance(&self, now: Time) -> Vec<(RequestId, Route)> {
        self.advance_deferred(now, None).wait()
    }

    /// Enqueue a clock advance without waiting for it: the returned handle
    /// resolves (via [`ControlReply::poll_response`]) once the worker has
    /// processed the command. The mux reactor uses this so one tenant's
    /// slow advance never stalls the other connections on its thread;
    /// per-connection reply order is preserved by the reactor's FIFO
    /// pending queue, exactly as a blocking reader preserved it.
    pub fn advance_deferred(
        &self,
        now: Time,
        waker: Option<WakeFn>,
    ) -> ControlReply<Vec<(RequestId, Route)>> {
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.shared.state.lock().expect("service lock");
            if st.shutdown {
                return ControlReply::resolved(Vec::new);
            }
            let seq = st.admitted;
            st.admitted += 1;
            st.control.push_back((
                seq,
                Control::Advance {
                    now,
                    reply: ReplySender::new(tx, waker),
                },
            ));
        }
        self.shared.wakeup.notify_one();
        self.shared.commit_cv.notify_all();
        ControlReply::pending(rx, Vec::new)
    }

    /// Cancel a committed route (task aborted); `false` when unknown.
    pub fn cancel(&self, id: RequestId) -> bool {
        self.cancel_deferred(id, None).wait()
    }

    /// Nonblocking counterpart of [`ServiceClient::cancel`]; see
    /// [`ServiceClient::advance_deferred`] for the contract.
    pub fn cancel_deferred(&self, id: RequestId, waker: Option<WakeFn>) -> ControlReply<bool> {
        fn no() -> bool {
            false
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.shared.state.lock().expect("service lock");
            if st.shutdown {
                return ControlReply::resolved(no);
            }
            let seq = st.admitted;
            st.admitted += 1;
            st.control.push_back((
                seq,
                Control::Cancel {
                    id,
                    reply: ReplySender::new(tx, waker),
                },
            ));
        }
        self.shared.wakeup.notify_one();
        self.shared.commit_cv.notify_all();
        ControlReply::pending(rx, no)
    }

    /// Snapshot the service metrics. Never touches the planner thread.
    pub fn metrics(&self) -> ServiceMetrics {
        // queue_depth is read *before* the relaxed counters: `submitted` is
        // incremented under the same lock, so depth ≤ submitted always.
        let queue_depth = self.shared.state.lock().expect("service lock").plan.len();
        let c = &self.shared.counters;
        ServiceMetrics {
            workers: self.shared.config.workers,
            queue_depth,
            in_flight: c.in_flight.load(Ordering::Relaxed),
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected_backpressure: c.rejected_backpressure.load(Ordering::Relaxed),
            planned: c.planned.load(Ordering::Relaxed),
            infeasible: c.infeasible.load(Ordering::Relaxed),
            shed_deadline: c.shed_deadline.load(Ordering::Relaxed),
            cancelled_deadline: c.cancelled_deadline.load(Ordering::Relaxed),
            speculation_wins: c.speculation_wins.load(Ordering::Relaxed),
            speculation_retries: c.speculation_retries.load(Ordering::Relaxed),
            speculation_aborts: c.speculation_aborts.load(Ordering::Relaxed),
            queue_latency: self.shared.queue_hist.lock().expect("hist lock").summary(),
            commit_latency: self.shared.commit_hist.lock().expect("hist lock").summary(),
            planning_latency: self
                .shared
                .planning_hist
                .lock()
                .expect("hist lock")
                .summary(),
            turnaround_latency: self
                .shared
                .turnaround_hist
                .lock()
                .expect("hist lock")
                .summary(),
            engine: *self.shared.engine.lock().expect("engine lock"),
        }
    }
}

/// The running service: owns the worker threads and the planner inside.
pub struct PlanningService<P: Planner + Send + 'static> {
    shared: Arc<Shared>,
    /// Speculative planner workers (empty in serial mode). They own only
    /// replicas, so they return nothing.
    planners: Vec<std::thread::JoinHandle<()>>,
    /// The thread that owns the authoritative planner: the serial worker,
    /// or the speculative commit stage.
    worker: std::thread::JoinHandle<P>,
}

fn make_shared(config: ServiceConfig, journal: Option<crate::wal::TenantJournal>) -> Arc<Shared> {
    assert!(config.queue_capacity > 0, "queue capacity must be positive");
    assert!(config.batch_limit > 0, "batch limit must be positive");
    Arc::new(Shared {
        state: Mutex::new(QueueState {
            plan: VecDeque::with_capacity(config.queue_capacity),
            control: VecDeque::new(),
            results: BTreeMap::new(),
            admitted: 0,
            shutdown: false,
        }),
        wakeup: Condvar::new(),
        commit_cv: Condvar::new(),
        counters: Counters::default(),
        config,
        queue_hist: Mutex::new(LatencyHistogram::new()),
        planning_hist: Mutex::new(LatencyHistogram::new()),
        commit_hist: Mutex::new(LatencyHistogram::new()),
        turnaround_hist: Mutex::new(LatencyHistogram::new()),
        engine: Mutex::new(None),
        journal,
    })
}

impl<P: Planner + Send + 'static> PlanningService<P> {
    /// Spawn the serial worker thread around `planner` (one thread plans
    /// *and* commits; `config.workers` is normalized to 1).
    pub fn spawn(planner: P, config: ServiceConfig) -> Self {
        Self::spawn_journaled(planner, config, None)
    }

    /// [`PlanningService::spawn`] with an optional durable changeset
    /// journal: every commit, cancel and clock advance the worker
    /// performs is appended at its linearization point.
    pub fn spawn_journaled(
        planner: P,
        config: ServiceConfig,
        journal: Option<crate::wal::TenantJournal>,
    ) -> Self {
        let config = ServiceConfig {
            workers: 1,
            ..config
        };
        let shared = make_shared(config, journal);
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("carp-service-worker".into())
            .spawn(move || worker_loop(planner, worker_shared))
            .expect("spawn service worker");
        PlanningService {
            shared,
            planners: Vec::new(),
            worker,
        }
    }

    /// A cloneable client handle for submitters and metrics readers.
    pub fn client(&self) -> ServiceClient {
        ServiceClient {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Drain the queue, stop the workers, and return the planner for
    /// inspection (engine metrics, provenance, memory accounting).
    pub fn shutdown(self) -> P {
        {
            let mut st = self.shared.state.lock().expect("service lock");
            st.shutdown = true;
        }
        self.shared.wakeup.notify_all();
        self.shared.commit_cv.notify_all();
        for h in self.planners {
            // A replica worker that panicked already surfaced its failure
            // through `PlanResponse::ServiceDied`; don't re-panic the
            // caller for it.
            let _ = h.join();
        }
        self.worker.join().expect("service worker panicked")
    }
}

impl<P: SpeculativePlanner + Send + 'static> PlanningService<P> {
    /// Spawn the speculative plan/validate/commit pipeline:
    /// `config.workers` planner threads, each owning a forked replica of
    /// `planner`, plus one commit-stage thread owning the authoritative
    /// planner. With `workers <= 1` this delegates to the serial
    /// [`PlanningService::spawn`] — the pipeline only pays for itself when
    /// there is real planning concurrency.
    pub fn spawn_speculative(planner: P, config: ServiceConfig) -> Self {
        Self::spawn_speculative_journaled(planner, config, None)
    }

    /// [`PlanningService::spawn_speculative`] with an optional durable
    /// changeset journal, written by the single validate-and-commit
    /// stage (workers never touch it — replicas are not authoritative).
    pub fn spawn_speculative_journaled(
        planner: P,
        config: ServiceConfig,
        journal: Option<crate::wal::TenantJournal>,
    ) -> Self {
        if config.workers <= 1 {
            return Self::spawn_journaled(planner, config, journal);
        }
        let shared = make_shared(config, journal);
        let oplog = Arc::new(crate::pipeline::OpLog::default());
        let planners = (0..config.workers)
            .map(|i| {
                let replica = planner.fork();
                let shared = Arc::clone(&shared);
                let oplog = Arc::clone(&oplog);
                std::thread::Builder::new()
                    .name(format!("carp-spec-plan-{i}"))
                    .spawn(move || crate::pipeline::worker_loop(replica, shared, oplog))
                    .expect("spawn speculative planner worker")
            })
            .collect();
        let commit_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("carp-spec-commit".into())
            .spawn(move || crate::pipeline::committer_loop(planner, commit_shared, oplog))
            .expect("spawn speculative commit stage");
        PlanningService {
            shared,
            planners,
            worker,
        }
    }
}

fn worker_loop<P: Planner>(mut planner: P, shared: Arc<Shared>) -> P {
    loop {
        let (controls, batch, stop) = {
            let mut st = shared.state.lock().expect("service lock");
            while st.control.is_empty() && st.plan.is_empty() && !st.shutdown {
                st = shared.wakeup.wait(st).expect("service lock");
            }
            let controls: Vec<(u64, Control)> = st.control.drain(..).collect();
            let take = st.plan.len().min(shared.config.batch_limit);
            let batch: Vec<Envelope> = st.plan.drain(..take).collect();
            let stop = st.shutdown && st.plan.is_empty() && st.control.is_empty();
            (controls, batch, stop)
        };
        // Paired add/sub (never `store`): the gauge tracks *outstanding*
        // dequeued work — including control-plane commands — and survives
        // interleaved readers without snapping to a stale cycle count.
        shared
            .counters
            .in_flight
            .fetch_add((controls.len() + batch.len()) as u64, Ordering::Relaxed);

        for (_seq, control) in controls {
            match control {
                Control::Advance { now, reply } => {
                    let revisions = planner.advance(now);
                    if let Some(j) = &shared.journal {
                        j.advance(now, &revisions);
                    }
                    let _ = reply.send(revisions);
                }
                Control::Cancel { id, reply } => {
                    let ok = planner.cancel(id);
                    if ok {
                        if let Some(j) = &shared.journal {
                            j.cancel(id);
                        }
                    }
                    let _ = reply.send(ok);
                }
            }
            shared.counters.in_flight.fetch_sub(1, Ordering::Relaxed);
        }

        for env in batch {
            process_one(&mut planner, &shared, env);
            shared.counters.in_flight.fetch_sub(1, Ordering::Relaxed);
        }

        if let Some(m) = planner.engine_metrics() {
            *shared.engine.lock().expect("engine lock") = Some(m);
        }

        if stop {
            debug_assert_eq!(
                shared.counters.in_flight.load(Ordering::Relaxed),
                0,
                "in_flight gauge must drain to zero at shutdown"
            );
            return planner;
        }
    }
}

fn process_one<P: Planner>(planner: &mut P, shared: &Shared, env: Envelope) {
    let deadline = shared.config.deadline;
    // Shed before planning: a request that already blew its budget queueing
    // would waste planner time producing an answer nobody can use.
    if let Some(d) = deadline {
        if env.enqueued_at.elapsed() > d {
            shared
                .counters
                .shed_deadline
                .fetch_add(1, Ordering::Relaxed);
            record_turnaround(shared, env.enqueued_at);
            let _ = env.reply.send(PlanResponse::DeadlineShed);
            return;
        }
    }
    shared
        .queue_hist
        .lock()
        .expect("hist lock")
        .record(env.enqueued_at.elapsed());
    // Arm the planner with the request's remaining budget so a search that
    // cannot finish in time abandons itself instead of running to
    // completion and being cancelled post-commit.
    let token = deadline.map(|d| CancelToken::with_deadline(env.enqueued_at + d));
    planner.arm_cancel(token.clone());
    let started = Instant::now();
    let outcome = planner.plan(&env.request);
    planner.arm_cancel(None);
    shared
        .planning_hist
        .lock()
        .expect("hist lock")
        .record(started.elapsed());
    let response = match outcome {
        PlanOutcome::Planned(route) => {
            // Over-budget plans are *uncommitted*: the cancel path releases
            // the route's segments/reservations, so the refusal leaves no
            // trace in the collision state and the robot is free to retry.
            if deadline.is_some_and(|d| env.enqueued_at.elapsed() > d) {
                planner.cancel(env.request.id);
                shared
                    .counters
                    .cancelled_deadline
                    .fetch_add(1, Ordering::Relaxed);
                PlanResponse::DeadlineOverrun
            } else {
                // In serial mode `plan` already committed, so the accept
                // path *is* the commit point: the journal append is timed
                // into `commit_hist`, making WAL-on vs WAL-off commit
                // latency directly comparable with the speculative stage.
                let committed = Instant::now();
                if let Some(j) = &shared.journal {
                    j.commit(&env.request, &route);
                }
                shared
                    .commit_hist
                    .lock()
                    .expect("hist lock")
                    .record(committed.elapsed());
                shared.counters.planned.fetch_add(1, Ordering::Relaxed);
                PlanResponse::Planned(route)
            }
        }
        PlanOutcome::Infeasible => {
            // Distinguish a genuine "no route exists" verdict from a search
            // the token aborted mid-way: the latter is a deadline refusal,
            // not evidence of infeasibility.
            if token.is_some_and(|t| t.fired()) {
                shared
                    .counters
                    .cancelled_deadline
                    .fetch_add(1, Ordering::Relaxed);
                PlanResponse::DeadlineOverrun
            } else {
                shared.counters.infeasible.fetch_add(1, Ordering::Relaxed);
                PlanResponse::Infeasible
            }
        }
    };
    record_turnaround(shared, env.enqueued_at);
    let _ = env.reply.send(response);
}

pub(crate) fn record_turnaround(shared: &Shared, enqueued_at: Instant) {
    shared
        .turnaround_hist
        .lock()
        .expect("hist lock")
        .record(enqueued_at.elapsed());
}

#[cfg(test)]
mod tests {
    use super::*;
    use carp_warehouse::request::QueryKind;
    use carp_warehouse::types::Cell;

    /// Test double: plans a stationary route after an optional artificial
    /// delay, and records cancels.
    struct StubPlanner {
        delay: Duration,
        cancelled: Vec<RequestId>,
        planned: usize,
    }

    impl StubPlanner {
        fn new(delay: Duration) -> Self {
            StubPlanner {
                delay,
                cancelled: Vec::new(),
                planned: 0,
            }
        }
    }

    impl Planner for StubPlanner {
        fn name(&self) -> &'static str {
            "stub"
        }
        fn plan(&mut self, req: &Request) -> PlanOutcome {
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            self.planned += 1;
            PlanOutcome::Planned(Route::stationary(req.t, req.origin))
        }
        fn cancel(&mut self, id: RequestId) -> bool {
            self.cancelled.push(id);
            true
        }
        fn memory_bytes(&self) -> usize {
            0
        }
    }

    /// Rendezvous point between a test and the worker thread: the worker
    /// announces that it *entered* planning and then blocks until the test
    /// grants a permit. Replaces wall-clock sleep calibration — assertions
    /// sequence on events, not on how fast the CI runner happens to be.
    struct Gate {
        state: Mutex<(usize, usize)>, // (entered, permits)
        cv: Condvar,
    }

    impl Gate {
        fn new() -> Arc<Gate> {
            Arc::new(Gate {
                state: Mutex::new((0, 0)),
                cv: Condvar::new(),
            })
        }
        /// Worker side: announce entry, then consume one permit.
        fn enter(&self) {
            let mut st = self.state.lock().unwrap();
            st.0 += 1;
            self.cv.notify_all();
            while st.1 == 0 {
                st = self.cv.wait(st).unwrap();
            }
            st.1 -= 1;
        }
        /// Test side: grant `n` planning permits.
        fn permit(&self, n: usize) {
            self.state.lock().unwrap().1 += n;
            self.cv.notify_all();
        }
        /// Test side: block until `n` workers have entered planning.
        fn wait_entered(&self, n: usize) {
            let mut st = self.state.lock().unwrap();
            while st.0 < n {
                st = self.cv.wait(st).unwrap();
            }
        }
    }

    /// Test double whose `plan` blocks on a [`Gate`] permit.
    struct GateStub {
        gate: Arc<Gate>,
        cancelled: Vec<RequestId>,
        planned: usize,
    }

    impl Planner for GateStub {
        fn name(&self) -> &'static str {
            "gate-stub"
        }
        fn plan(&mut self, req: &Request) -> PlanOutcome {
            self.gate.enter();
            self.planned += 1;
            PlanOutcome::Planned(Route::stationary(req.t, req.origin))
        }
        fn cancel(&mut self, id: RequestId) -> bool {
            self.cancelled.push(id);
            true
        }
        fn memory_bytes(&self) -> usize {
            0
        }
    }

    fn req(id: RequestId) -> Request {
        Request::new(id, 0, Cell::new(0, 0), Cell::new(0, 1), QueryKind::Pickup)
    }

    #[test]
    fn plans_flow_through_and_shutdown_returns_planner() {
        let svc =
            PlanningService::spawn(StubPlanner::new(Duration::ZERO), ServiceConfig::default());
        let client = svc.client();
        let tickets: Vec<Ticket> = (0..10).map(|i| client.submit(req(i)).unwrap()).collect();
        for t in tickets {
            assert!(matches!(t.wait(), PlanResponse::Planned(_)));
        }
        let m = client.metrics();
        assert_eq!(m.planned, 10);
        assert_eq!(m.submitted, 10);
        assert_eq!(m.planning_latency.count, 10);
        let planner = svc.shutdown();
        assert_eq!(planner.planned, 10);
    }

    #[test]
    fn backpressure_rejects_instead_of_growing() {
        // The worker verifiably holds the first request inside `plan`
        // (gate entry), so flooding 50 more against a 4-slot queue must
        // accept exactly 4 and reject 46 — deterministically, however slow
        // or fast the runner is.
        let gate = Gate::new();
        let svc = PlanningService::spawn(
            GateStub {
                gate: Arc::clone(&gate),
                cancelled: Vec::new(),
                planned: 0,
            },
            ServiceConfig {
                queue_capacity: 4,
                deadline: None,
                batch_limit: 1,
                ..Default::default()
            },
        );
        let client = svc.client();
        let mut accepted = vec![client.submit(req(0)).unwrap()];
        gate.wait_entered(1); // worker is now blocked inside plan(req 0)

        // Concurrent sampler: `submitted` is incremented under the queue
        // lock, so no snapshot may ever observe more queued than admitted.
        let sampler_client = client.clone();
        let sampler = std::thread::spawn(move || {
            for _ in 0..2000 {
                let m = sampler_client.metrics();
                assert!(
                    m.submitted >= m.queue_depth as u64,
                    "metrics raced: queue_depth {} > submitted {}",
                    m.queue_depth,
                    m.submitted
                );
            }
        });

        let mut rejected = 0usize;
        for i in 1..=50 {
            match client.submit(req(i)) {
                Ok(t) => accepted.push(t),
                Err(SubmitError::Backpressure {
                    retry_after,
                    queue_depth,
                }) => {
                    rejected += 1;
                    assert_eq!(queue_depth, 4);
                    assert!(!retry_after.is_zero());
                }
                Err(e) => panic!("unexpected {e}"),
            }
            assert!(client.metrics().queue_depth <= 4, "queue grew past bound");
        }
        assert_eq!(rejected, 46, "queue holds 4 while the worker is gated");
        assert_eq!(accepted.len(), 5);
        sampler.join().unwrap();
        let m = client.metrics();
        assert_eq!(m.rejected_backpressure as usize, rejected);
        assert_eq!(m.submitted as usize, accepted.len());
        // Release the worker: every accepted request still gets answered.
        gate.permit(accepted.len());
        for t in accepted {
            assert!(matches!(t.wait(), PlanResponse::Planned(_)));
        }
        let planner = svc.shutdown();
        assert_eq!(planner.planned, 5);
        assert_eq!(client.metrics().in_flight, 0, "gauge drains at shutdown");
    }

    #[test]
    fn over_budget_plans_are_cancelled_not_committed() {
        let svc = PlanningService::spawn(
            StubPlanner::new(Duration::from_millis(25)),
            ServiceConfig {
                deadline: Some(Duration::from_millis(1)),
                ..Default::default()
            },
        );
        let client = svc.client();
        let t = client.submit(req(0)).unwrap();
        assert_eq!(t.wait(), PlanResponse::DeadlineOverrun);
        let m = client.metrics();
        assert_eq!(m.cancelled_deadline, 1);
        assert_eq!(m.planned, 0);
        let planner = svc.shutdown();
        assert_eq!(planner.cancelled, vec![0], "route must be uncommitted");
    }

    #[test]
    fn queue_wait_past_deadline_sheds_without_planning() {
        // The gate holds request 0 inside the planner until request 1's
        // deadline has *verifiably* passed, so the shed is guaranteed by
        // observed elapsed time, not by a calibrated worker delay.
        let deadline = Duration::from_millis(5);
        let gate = Gate::new();
        let svc = PlanningService::spawn(
            GateStub {
                gate: Arc::clone(&gate),
                cancelled: Vec::new(),
                planned: 0,
            },
            ServiceConfig {
                deadline: Some(deadline),
                batch_limit: 1,
                ..Default::default()
            },
        );
        let client = svc.client();
        let t0 = client.submit(req(0)).unwrap();
        gate.wait_entered(1); // request 0 passed its shed check, now gated
        let queued = Instant::now();
        let t1 = client.submit(req(1)).unwrap();
        while queued.elapsed() <= deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        gate.permit(2); // request 1 never consumes a permit: it is shed
                        // Request 0 itself overruns (it was gated past its own deadline) —
                        // that's fine, we only care that request 1 never reached the
                        // planner.
        assert_eq!(t0.wait(), PlanResponse::DeadlineOverrun);
        assert_eq!(t1.wait(), PlanResponse::DeadlineShed);
        let planner = svc.shutdown();
        assert_eq!(planner.planned, 1, "shed request must not be planned");
        assert_eq!(planner.cancelled, vec![0], "overrun route is uncommitted");
        let m = client.metrics();
        assert_eq!(m.shed_deadline, 1);
        assert_eq!(m.in_flight, 0);
    }

    #[test]
    fn dead_worker_resolves_tickets_with_service_died() {
        struct PanicStub;
        impl Planner for PanicStub {
            fn name(&self) -> &'static str {
                "panic-stub"
            }
            fn plan(&mut self, _req: &Request) -> PlanOutcome {
                panic!("injected planner crash");
            }
            fn memory_bytes(&self) -> usize {
                0
            }
        }
        let svc = PlanningService::spawn(
            PanicStub,
            ServiceConfig {
                deadline: None,
                ..Default::default()
            },
        );
        let client = svc.client();
        let t = client.submit(req(0)).unwrap();
        // The worker panic drops the reply channel; the ticket resolves to
        // an error value instead of cascading the panic into the waiter.
        assert_eq!(t.wait(), PlanResponse::ServiceDied);
        drop(svc); // the worker is dead; joining it would re-panic
        let _ = client.metrics();
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let svc =
            PlanningService::spawn(StubPlanner::new(Duration::ZERO), ServiceConfig::default());
        let client = svc.client();
        svc.shutdown();
        assert!(matches!(
            client.submit(req(0)),
            Err(SubmitError::ShuttingDown)
        ));
    }

    #[test]
    fn refusal_rate_accounts_all_refusal_paths() {
        let m = ServiceMetrics {
            workers: 1,
            queue_depth: 0,
            in_flight: 0,
            submitted: 90,
            rejected_backpressure: 10,
            planned: 80,
            infeasible: 2,
            shed_deadline: 5,
            cancelled_deadline: 3,
            speculation_wins: 0,
            speculation_retries: 0,
            speculation_aborts: 0,
            queue_latency: LatencyHistogram::new().summary(),
            planning_latency: LatencyHistogram::new().summary(),
            commit_latency: LatencyHistogram::new().summary(),
            turnaround_latency: LatencyHistogram::new().summary(),
            engine: None,
        };
        assert!((m.refusal_rate() - 0.18).abs() < 1e-12);
    }

    /// Speculative test double: candidates occupy the cell indexed by how
    /// many routes the replica has adopted, so two workers planning at the
    /// same epoch produce *colliding* stationary routes, and a replan after
    /// syncing the winner's adopt op resolves to a free cell. The first
    /// `barrier` calls to `plan_candidate` rendezvous, guaranteeing both
    /// workers plan before either result commits — the deterministic
    /// trigger for the requeue path.
    #[derive(Clone)]
    struct ConflictStub {
        rendezvous: Arc<(Mutex<usize>, Condvar)>,
        barrier: usize,
        adopted: u16,
    }

    impl ConflictStub {
        fn new(barrier: usize) -> Self {
            ConflictStub {
                rendezvous: Arc::new((Mutex::new(0), Condvar::new())),
                barrier,
                adopted: 0,
            }
        }
        fn route_for(&self, req: &Request) -> Route {
            Route::stationary(req.t, Cell::new(self.adopted, 0))
        }
    }

    impl Planner for ConflictStub {
        fn name(&self) -> &'static str {
            "conflict-stub"
        }
        fn plan(&mut self, req: &Request) -> PlanOutcome {
            let route = self.route_for(req);
            self.adopted += 1;
            PlanOutcome::Planned(route)
        }
        fn cancel(&mut self, _id: RequestId) -> bool {
            true
        }
        fn memory_bytes(&self) -> usize {
            0
        }
    }

    impl SpeculativePlanner for ConflictStub {
        fn fork(&self) -> Self {
            self.clone()
        }
        fn plan_candidate(&mut self, req: &Request) -> Option<Route> {
            {
                let (count, cv) = &*self.rendezvous;
                let mut n = count.lock().unwrap();
                *n += 1;
                cv.notify_all();
                while *n < self.barrier {
                    n = cv.wait(n).unwrap();
                }
            }
            Some(self.route_for(req))
        }
        fn adopt(&mut self, _id: RequestId, _route: &Route) {
            self.adopted += 1;
        }
    }

    #[test]
    fn speculation_losers_requeue_and_win_on_retry() {
        let svc = PlanningService::spawn_speculative(
            ConflictStub::new(2),
            ServiceConfig {
                deadline: None,
                workers: 2,
                speculation_retries: 2,
                ..Default::default()
            },
        );
        let client = svc.client();
        let t0 = client.submit(req(0)).unwrap();
        let t1 = client.submit(req(1)).unwrap();
        let r0 = t0.wait().route().cloned().expect("seq 0 planned");
        let r1 = t1.wait().route().cloned().expect("seq 1 planned");
        // Both candidates were planned at epoch 0 on cell (0,0); the seq-0
        // winner committed, the seq-1 loser was requeued and re-planned
        // against the synced replica, landing on cell (1,0).
        assert_eq!(r0.origin(), Cell::new(0, 0));
        assert_eq!(r1.origin(), Cell::new(1, 0));
        let m = client.metrics();
        assert_eq!(m.planned, 2, "no double commit, no lost request");
        assert_eq!(m.speculation_wins, 2, "the retry wins speculatively");
        assert_eq!(m.speculation_retries, 1, "exactly one requeue");
        assert_eq!(m.speculation_aborts, 0, "budget never exhausted");
        assert_eq!(m.workers, 2);
        svc.shutdown();
        assert_eq!(client.metrics().in_flight, 0);
    }

    #[test]
    fn speculative_worker_panic_answers_service_died_once() {
        #[derive(Clone)]
        struct PanicOnZero;
        impl Planner for PanicOnZero {
            fn name(&self) -> &'static str {
                "panic-on-zero"
            }
            fn plan(&mut self, req: &Request) -> PlanOutcome {
                PlanOutcome::Planned(Route::stationary(req.t, req.origin))
            }
            fn memory_bytes(&self) -> usize {
                0
            }
        }
        impl SpeculativePlanner for PanicOnZero {
            fn fork(&self) -> Self {
                self.clone()
            }
            fn plan_candidate(&mut self, req: &Request) -> Option<Route> {
                if req.id == 0 {
                    panic!("injected replica crash");
                }
                Some(Route::stationary(req.t, req.origin))
            }
            fn adopt(&mut self, _id: RequestId, _route: &Route) {}
        }
        let svc = PlanningService::spawn_speculative(
            PanicOnZero,
            ServiceConfig {
                deadline: None,
                workers: 2,
                ..Default::default()
            },
        );
        let client = svc.client();
        let t0 = client.submit(req(0)).unwrap();
        // The crashed request surfaces as a value; the pipeline keeps
        // serving later requests on the surviving worker.
        assert_eq!(t0.wait(), PlanResponse::ServiceDied);
        let t1 = client.submit(req(1)).unwrap();
        assert!(matches!(t1.wait(), PlanResponse::Planned(_)));
        svc.shutdown();
    }
}
