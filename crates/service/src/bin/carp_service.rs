//! `carp-service` — the multi-tenant planning daemon and its load driver.
//!
//! Three modes:
//!
//! * **Load run** (default): replay generated warehouse days through the
//!   daemon's wire protocol over the in-process transport and emit a
//!   `BENCH_service.json` report. One run per `--rates` multiplier.
//!
//!   ```sh
//!   cargo run --release -p carp-service -- \
//!       --preset W-2 --tasks 400 --rates 1,4 --seed 7 --out BENCH_service.json
//!   ```
//!
//! * **Multi-tenant load run** (`--tenants W-1,W-2`): serve several
//!   warehouses from one daemon concurrently, each tenant driving its own
//!   day over its own connection; the report carries one per-tenant run.
//!   `--conformance` additionally replays every tenant's day single-tenant
//!   on a serial worker and fails unless each tenant's route digest is
//!   bit-identical to its isolated run — the multi-tenant determinism gate.
//!
//! * **Daemon** (`--listen ADDR`): bind a TCP listener and serve the
//!   configured tenants over the same framed protocol until killed.
//!
//! The process exits non-zero if any run reports an audited collision or a
//! conformance digest diverges, which is the CI perf job's gate.

use carp_service::ingest::{serve_tcp_graceful, RateLimit};
#[cfg(unix)]
use carp_service::loadgen::{run_connection_ladder, run_load_replication};
use carp_service::loadgen::{
    run_load, run_load_journaled, run_load_multi, run_load_recovery, run_load_speculative,
    LoadScenario, TenantLoad,
};
#[cfg(unix)]
use carp_service::mux::{serve_tcp_mux, MuxConfig, MuxMetrics};
use carp_service::report::{LoadReport, RecoveryBenchReport, ServiceBenchReport, BENCH_VERSION};
use carp_service::service::ServiceConfig;
use carp_service::tenant::TenantRegistry;
use carp_service::wal::{self, LogTail, WalJournal};
use carp_service::wire::WireClient;
use carp_simenv::{SimConfig, TenantDayProfile};
use carp_srp::{SrpConfig, SrpPlanner};
use carp_warehouse::layout::{Layout, LayoutConfig, WarehousePreset};
use carp_warehouse::types::Time;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// SIGTERM/SIGINT → a process-wide flag the graceful accept loop polls.
/// Lives only in the binary: the library stays `forbid(unsafe_code)`; the
/// single `signal(2)` registration below is the binary's one unsafe block.
#[cfg(unix)]
mod shutdown_signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static FLAG: AtomicBool = AtomicBool::new(false);
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        FLAG.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

const USAGE: &str = "usage: carp-service [options]
  --preset P          warehouse preset: small | W-1 | W-2 | W-3 (default small)
  --tasks N           tasks in the stream (default 200)
  --horizon T         day span in sim-seconds before compression (default 2000)
  --rates R1,R2,...   arrival-rate multipliers, one run each (default 1,4)
  --seed S            task-stream RNG seed (default 7)
  --queue-capacity N  ingest queue bound (default 256)
  --deadline-ms MS    per-request planning deadline; 0 disables it and makes
                      the committed route set bit-deterministic (default 0)
  --workers N         planner worker threads per tenant; > 1 runs the
                      speculative plan/validate/commit pipeline (default 1)
  --expect-speculation fail unless speculative wins are recorded (used by
                      the CI smoke to prove the pipeline actually engaged)
  --tenants A,B,...   serve several warehouse presets as tenants of one
                      daemon, one concurrent day each (rate = first --rates
                      entry); tenant day-profiles in --sim-config `tenants`
                      override this list
  --conformance       with --tenants: also replay each tenant single-tenant
                      on a serial worker and require bit-identical digests
  --listen ADDR       daemon mode: serve the configured tenants over TCP on
                      ADDR (e.g. 127.0.0.1:7300) until SIGTERM/SIGINT, then
                      drain every tenant, seal the changeset log, and exit 0;
                      port 0 binds an ephemeral port (the chosen address is
                      printed on stderr as `listening on ...`)
  --mux-threads N     reactor threads for the event-loop front-end serving
                      --listen and --connections (default 2)
  --legacy-threads    with --listen: serve each connection on its own thread
                      (the pre-reactor path) instead of the event loop
  --connections N,... open-socket ladder over the event-loop front-end: one
                      rung per N, holding N connections open (1 driving the
                      measured day, N-1 churning a second tenant); writes
                      BENCH_service_mux.json and fails unless every rung's
                      route digest is bit-identical to the blocking path's
  --wal PATH          journal every commit/cancel/advance into a changeset
                      log at PATH (created fresh; daemon and load-run modes)
  --standby PATH      with --listen: warm-standby takeover — replay the
                      changeset log at PATH (truncating any torn tail),
                      rebuild each tenant's planner, then serve and keep
                      journaling to the same log
  --follow ADDR       with --listen and --wal: network standby — connect to
                      the primary daemon at ADDR, subscribe to its changeset
                      log over the wire (TailLog), and mirror every shipped
                      record into the --wal journal; when the primary's
                      stream ends, strict-audit the shipped copy, bump the
                      leadership epoch (fencing the old primary), rebuild
                      each tenant's planner, and serve on --listen
  --rate-limit N      per-connection token bucket: burst N frames, refill
                      N frames/s; excess gets a typed Throttled refusal
  --recovery PATH     crash-recovery bench: drive the day three ways (WAL
                      off, WAL on at PATH, kill-primary + standby takeover)
                      and write BENCH_service_recovery.json; fails unless
                      all three route digests are bit-identical
  --replication PATH  failover bench over TCP: primary journals to PATH and
                      ships the log live to a network standby; the primary
                      is killed at --kill-frac and the standby (rebuilt from
                      its shipped copy alone, fenced to a new epoch) serves
                      the rest of the day; writes
                      BENCH_service_replication.json and fails unless the
                      route digest is bit-identical to an unkilled run and
                      a stale-epoch append was refused
  --kill-frac F       with --recovery/--replication: kill the primary at F
                      of the way through the day's arrivals, 0 < F < 1
                      (default 0.5)
  --torn-tail         with --recovery: append a half-written record to the
                      log after the kill; the standby must truncate it
  --sim-config PATH   JSON file overriding SimConfig fields (service_time,
                      retry_delay, max_retries, tenants, ...)
  --out PATH          write BENCH_service.json here (default: print to stdout)

exit status: 0 on success, 1 if any run audited a collision (or
--expect-speculation saw none, or --conformance / --recovery digests
diverged), 2 on bad usage";

fn usage_error(msg: &str) -> ! {
    eprintln!("carp-service: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Opts {
    preset: String,
    tasks: u32,
    horizon: u32,
    rates: Vec<f64>,
    seed: u64,
    queue_capacity: usize,
    deadline_ms: u64,
    workers: usize,
    expect_speculation: bool,
    tenants: Vec<String>,
    conformance: bool,
    listen: Option<String>,
    mux_threads: usize,
    legacy_threads: bool,
    connections: Option<Vec<usize>>,
    wal: Option<String>,
    standby: Option<String>,
    follow: Option<String>,
    rate_limit: Option<u32>,
    recovery: Option<String>,
    replication: Option<String>,
    kill_frac: f64,
    torn_tail: bool,
    sim: SimConfig,
    out: Option<String>,
}

fn parse_opts() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        std::process::exit(0);
    }
    let mut opts = Opts {
        preset: "small".to_string(),
        tasks: 200,
        horizon: 2000,
        rates: vec![1.0, 4.0],
        seed: 7,
        queue_capacity: 256,
        deadline_ms: 0,
        workers: 1,
        expect_speculation: false,
        tenants: Vec::new(),
        conformance: false,
        listen: None,
        mux_threads: 2,
        legacy_threads: false,
        connections: None,
        wal: None,
        standby: None,
        follow: None,
        rate_limit: None,
        recovery: None,
        replication: None,
        kill_frac: 0.5,
        torn_tail: false,
        sim: SimConfig::default(),
        out: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> &str {
            match it.next() {
                Some(v) => v,
                None => usage_error(&format!("{flag} expects a value")),
            }
        };
        match a.as_str() {
            "--preset" => opts.preset = value("--preset").to_string(),
            "--tasks" => match value("--tasks").parse() {
                Ok(n) => opts.tasks = n,
                Err(_) => usage_error("--tasks expects an integer"),
            },
            "--horizon" => match value("--horizon").parse() {
                Ok(t) => opts.horizon = t,
                Err(_) => usage_error("--horizon expects an integer"),
            },
            "--rates" => {
                let raw = value("--rates");
                let rates: Result<Vec<f64>, _> = raw.split(',').map(str::parse).collect();
                match rates {
                    Ok(r) if !r.is_empty() && r.iter().all(|&x| x > 0.0) => opts.rates = r,
                    _ => usage_error("--rates expects positive numbers like 1,4"),
                }
            }
            "--seed" => match value("--seed").parse() {
                Ok(s) => opts.seed = s,
                Err(_) => usage_error("--seed expects an integer"),
            },
            "--queue-capacity" => match value("--queue-capacity").parse() {
                Ok(n) if n > 0 => opts.queue_capacity = n,
                _ => usage_error("--queue-capacity expects a positive integer"),
            },
            "--deadline-ms" => match value("--deadline-ms").parse() {
                Ok(ms) => opts.deadline_ms = ms,
                Err(_) => usage_error("--deadline-ms expects an integer"),
            },
            "--workers" => match value("--workers").parse() {
                Ok(n) if n > 0 => opts.workers = n,
                _ => usage_error("--workers expects a positive integer"),
            },
            "--expect-speculation" => opts.expect_speculation = true,
            "--tenants" => {
                opts.tenants = value("--tenants")
                    .split(',')
                    .map(str::to_string)
                    .filter(|s| !s.is_empty())
                    .collect();
                if opts.tenants.is_empty() {
                    usage_error("--tenants expects preset names like W-1,W-2");
                }
            }
            "--conformance" => opts.conformance = true,
            "--listen" => opts.listen = Some(value("--listen").to_string()),
            "--mux-threads" => match value("--mux-threads").parse() {
                Ok(n) if n > 0 => opts.mux_threads = n,
                _ => usage_error("--mux-threads expects a positive integer"),
            },
            "--legacy-threads" => opts.legacy_threads = true,
            "--connections" => {
                let raw = value("--connections");
                let conns: Result<Vec<usize>, _> = raw.split(',').map(str::parse).collect();
                match conns {
                    Ok(c) if !c.is_empty() && c.iter().all(|&n| n >= 1) => {
                        opts.connections = Some(c)
                    }
                    _ => usage_error("--connections expects positive integers like 64,256"),
                }
            }
            "--wal" => opts.wal = Some(value("--wal").to_string()),
            "--standby" => opts.standby = Some(value("--standby").to_string()),
            "--follow" => opts.follow = Some(value("--follow").to_string()),
            "--rate-limit" => match value("--rate-limit").parse() {
                Ok(n) if n > 0 => opts.rate_limit = Some(n),
                _ => usage_error("--rate-limit expects a positive integer"),
            },
            "--recovery" => opts.recovery = Some(value("--recovery").to_string()),
            "--replication" => opts.replication = Some(value("--replication").to_string()),
            "--kill-frac" => match value("--kill-frac").parse::<f64>() {
                Ok(f) if f > 0.0 && f < 1.0 => opts.kill_frac = f,
                _ => usage_error("--kill-frac expects a fraction in (0, 1)"),
            },
            "--torn-tail" => opts.torn_tail = true,
            "--sim-config" => {
                let path = value("--sim-config");
                let json = match std::fs::read_to_string(path) {
                    Ok(j) => j,
                    Err(e) => usage_error(&format!("cannot read {path}: {e}")),
                };
                match SimConfig::from_json(&json) {
                    Ok(cfg) => opts.sim = cfg,
                    Err(e) => usage_error(&format!("bad sim config {path}: {e}")),
                }
            }
            "--out" => opts.out = Some(value("--out").to_string()),
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    opts
}

fn layout_for(preset: &str) -> Layout {
    match preset {
        "small" => LayoutConfig::small().generate(),
        "W-1" | "w-1" | "W1" | "w1" => WarehousePreset::W1.generate(),
        "W-2" | "w-2" | "W2" | "w2" => WarehousePreset::W2.generate(),
        "W-3" | "w-3" | "W3" | "w3" => WarehousePreset::W3.generate(),
        other => usage_error(&format!("unknown preset {other}")),
    }
}

fn srp(layout: &Layout) -> SrpPlanner {
    SrpPlanner::new(layout.matrix.clone(), SrpConfig::default())
}

/// The tenant day-profiles this invocation serves: the sim config's
/// `tenants` array when present, otherwise one profile per `--tenants`
/// preset (day shape from the common flags, rate from the first `--rates`).
fn tenant_profiles(opts: &Opts) -> Vec<TenantDayProfile> {
    if !opts.sim.tenants.is_empty() {
        return opts.sim.tenants.clone();
    }
    opts.tenants
        .iter()
        .map(|preset| TenantDayProfile {
            tenant: String::new(),
            preset: preset.clone(),
            tasks: opts.tasks,
            horizon: opts.horizon,
            rate: opts.rates[0],
            seed: opts.seed,
        })
        .collect()
}

fn scenario_for(p: &TenantDayProfile, layout: &Layout) -> LoadScenario {
    LoadScenario::new(p.id(), layout.clone(), p.tasks, p.horizon, p.rate, p.seed)
}

fn print_run(report: &LoadReport) {
    eprintln!(
        "carp-service: {} done: {} planned, p95 {} us, {} conflicts, {:.1} plans/s, \
         speculation {}w/{}r/{}a, wire {} frames / {} B in, {} frames / {} B out",
        report.scenario,
        report.service.planned,
        report.service.planning_latency.p95_us,
        report.audit_conflicts,
        report.throughput_rps,
        report.service.speculation_wins,
        report.service.speculation_retries,
        report.service.speculation_aborts,
        report.wire.frames_received,
        report.wire.bytes_received,
        report.wire.frames_sent,
        report.wire.bytes_sent,
    );
}

/// Daemon mode: register every configured tenant (rebuilt from the
/// changeset log in `--standby` mode) and serve TCP until SIGTERM/SIGINT,
/// then drain every tenant, seal the log, and exit 0.
fn run_daemon(addr: &str, profiles: &[TenantDayProfile], cfg: ServiceConfig, opts: &Opts) -> ! {
    let registry = Arc::new(TenantRegistry::new());
    let layouts: HashMap<String, Layout> = profiles
        .iter()
        .map(|p| (p.id().to_string(), layout_for(&p.preset)))
        .collect();

    // Warm standby: replay the primary's changeset log into fresh
    // planners before serving — the takeover path of DESIGN.md §15.
    let mut recovered: HashMap<String, SrpPlanner> = HashMap::new();
    if let Some(primary) = &opts.follow {
        // Network standby (DESIGN.md §17): mirror the primary's changeset
        // log over the wire into our own journal, then take over when the
        // primary's stream ends.
        let Some(wal_path) = &opts.wal else {
            usage_error("--follow requires --wal (the standby's own journal path)");
        };
        let journal = match WalJournal::create(wal_path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("carp-service: cannot create changeset log {wal_path}: {e}");
                std::process::exit(2);
            }
        };
        eprintln!("carp-service: standby: following {primary}, mirroring to {wal_path}");
        let mut records = Vec::new();
        match std::net::TcpStream::connect(primary) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let reader = stream.try_clone().unwrap_or_else(|e| {
                    eprintln!("carp-service: cannot clone primary socket: {e}");
                    std::process::exit(2);
                });
                let mut client = WireClient::new(reader, stream);
                if let Err(e) = client.tail_log(1) {
                    eprintln!("carp-service: cannot subscribe to {primary}: {e}");
                    std::process::exit(2);
                }
                loop {
                    match client.next_log_chunk() {
                        Ok(Some((_epoch, recs))) => {
                            for rec in recs {
                                if journal.append_record(&rec) {
                                    records.push(rec);
                                }
                            }
                        }
                        Ok(None) => {
                            eprintln!("carp-service: standby: primary closed the stream");
                            break;
                        }
                        Err(e) => {
                            eprintln!("carp-service: standby: log tail failed: {e}");
                            break;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("carp-service: standby: cannot reach primary {primary}: {e}");
            }
        }
        // Takeover: the shipped copy must audit clean before we serve on
        // top of it, and the epoch bump fences the old primary's handles.
        if let Err((tenant, conflict)) = wal::audit_log(&records) {
            eprintln!("carp-service: standby: shipped log fails audit for {tenant}: {conflict:?}");
            std::process::exit(1);
        }
        let epoch = journal.bump_epoch();
        let (planners, state) = wal::recover_planners(&records, |id| {
            let Some(layout) = layouts.get(id) else {
                eprintln!("carp-service: standby: log names tenant {id} not in --tenants");
                std::process::exit(2);
            };
            srp(layout)
        });
        eprintln!(
            "carp-service: standby: taking over at epoch {epoch} — {} shipped records \
             (seq {}) for {} tenant(s)",
            records.len(),
            state.last_seq,
            planners.len()
        );
        recovered = planners.into_iter().collect();
        registry.attach_journal(journal);
    } else if let Some(path) = &opts.standby {
        let (journal, records, tail) = match WalJournal::open_append(path) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("carp-service: cannot open changeset log {path}: {e}");
                std::process::exit(2);
            }
        };
        if let LogTail::Torn {
            valid_bytes,
            dropped_bytes,
        } = tail
        {
            eprintln!(
                "carp-service: standby: torn tail — kept {valid_bytes} bytes, \
                 truncated {dropped_bytes}"
            );
        }
        if let Err((tenant, conflict)) = wal::audit_log(&records) {
            eprintln!("carp-service: standby: log fails audit for {tenant}: {conflict:?}");
            std::process::exit(1);
        }
        let (planners, state) = wal::recover_planners(&records, |id| {
            let Some(layout) = layouts.get(id) else {
                eprintln!("carp-service: standby: log names tenant {id} not in --tenants");
                std::process::exit(2);
            };
            srp(layout)
        });
        eprintln!(
            "carp-service: standby: replayed {} records (seq {}) for {} tenant(s) from {path}",
            records.len(),
            state.last_seq,
            planners.len()
        );
        recovered = planners.into_iter().collect();
        registry.attach_journal(journal);
    } else if let Some(path) = &opts.wal {
        match WalJournal::create(path) {
            Ok(journal) => registry.attach_journal(journal),
            Err(e) => {
                eprintln!("carp-service: cannot create changeset log {path}: {e}");
                std::process::exit(2);
            }
        }
        eprintln!("carp-service: journaling changesets to {path}");
    }

    for p in profiles {
        let planner = recovered
            .remove(p.id())
            .unwrap_or_else(|| srp(&layouts[p.id()]));
        if cfg.workers > 1 {
            registry.register_speculative(p.id(), planner, cfg);
        } else {
            registry.register(p.id(), planner, cfg);
        }
        eprintln!(
            "carp-service: tenant {} ({}, {} workers)",
            p.id(),
            p.preset,
            cfg.workers
        );
    }
    let listener = match std::net::TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("carp-service: cannot bind {addr}: {e}");
            std::process::exit(2);
        }
    };
    let shutdown = Arc::new(AtomicBool::new(false));
    #[cfg(unix)]
    {
        shutdown_signal::install();
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("carp-signal-bridge".into())
            .spawn(move || loop {
                if shutdown_signal::FLAG.load(Ordering::SeqCst) {
                    shutdown.store(true, Ordering::SeqCst);
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            })
            .expect("spawn signal bridge");
    }
    let limit = opts.rate_limit.map(|n| RateLimit {
        burst: n,
        per_sec: f64::from(n),
    });
    // Print the *bound* address, not the requested one: with `:0` the
    // kernel picks the port, and whoever spawned us needs to know it.
    let bound = listener
        .local_addr()
        .map_or_else(|_| addr.to_string(), |a| a.to_string());
    eprintln!("carp-service: listening on {bound}");
    #[cfg(unix)]
    let served = if opts.legacy_threads {
        eprintln!("carp-service: legacy thread-per-connection front-end");
        serve_tcp_graceful(listener, Arc::clone(&registry), shutdown, limit)
    } else {
        eprintln!(
            "carp-service: event-loop front-end, {} reactor thread(s)",
            opts.mux_threads
        );
        let config = MuxConfig {
            threads: opts.mux_threads,
            rate_limit: limit,
            ..MuxConfig::default()
        };
        let metrics = Arc::new(MuxMetrics::default());
        serve_tcp_mux(listener, Arc::clone(&registry), shutdown, config, metrics)
    };
    #[cfg(not(unix))]
    let served = serve_tcp_graceful(listener, Arc::clone(&registry), shutdown, limit);
    match served {
        Ok(()) => {
            // Graceful drain: stop accepting happened above; now shut each
            // tenant down in order (every queued request resolves, every
            // commit is journaled) and seal the log with a final fsync.
            let drained = registry.drain_all();
            eprintln!("carp-service: drained {drained} tenant(s), log sealed; bye");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("carp-service: listener failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Crash-recovery bench (`--recovery`): the same day driven WAL-off,
/// WAL-on, and killed-then-recovered; emits `BENCH_service_recovery.json`
/// and fails unless the three digests are bit-identical and collision-free.
fn run_recovery(opts: &Opts, cfg: ServiceConfig, wal_path: &str) -> ! {
    if opts.deadline_ms != 0 {
        usage_error("--recovery requires --deadline-ms 0 (digests must be deterministic)");
    }
    let layout = layout_for(&opts.preset);
    let rate = opts.rates[0];
    let scenario = LoadScenario::new(
        format!("{}@{}x", opts.preset, rate),
        layout.clone(),
        opts.tasks,
        opts.horizon,
        rate,
        opts.seed,
    );
    let last_arrival = scenario.tasks.last().map_or(0, |t| t.arrival);
    let kill_at = (f64::from(last_arrival) * opts.kill_frac) as Time;

    eprintln!(
        "carp-service: recovery bench {} — leg 1: WAL off",
        scenario.name
    );
    let (wal_off, _) = run_load_speculative(&scenario, srp(&layout), opts.sim.clone(), cfg);
    print_run(&wal_off);

    eprintln!("carp-service: leg 2: WAL on ({wal_path}), uninterrupted");
    let journal = match WalJournal::create(wal_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("carp-service: cannot create changeset log {wal_path}: {e}");
            std::process::exit(2);
        }
    };
    let (wal_on, _) = run_load_journaled(&scenario, srp(&layout), opts.sim.clone(), cfg, journal);
    print_run(&wal_on);

    eprintln!(
        "carp-service: leg 3: kill primary at t={kill_at} ({}% of arrivals){}",
        (opts.kill_frac * 100.0) as u32,
        if opts.torn_tail { ", torn tail" } else { "" }
    );
    let (rec, _) = run_load_recovery(
        &scenario,
        || srp(&layout),
        opts.sim.clone(),
        cfg,
        Path::new(wal_path),
        kill_at,
        opts.torn_tail,
    );
    print_run(&rec.report);
    eprintln!(
        "carp-service: standby replayed {} records at t={} (torn tail dropped {} B); \
         commit latency p50/p95/p99 us — off {}/{}/{}, on {}/{}/{}",
        rec.records_replayed,
        rec.killed_at,
        rec.torn_tail_dropped,
        wal_off.service.commit_latency.p50_us,
        wal_off.service.commit_latency.p95_us,
        wal_off.service.commit_latency.p99_us,
        wal_on.service.commit_latency.p50_us,
        wal_on.service.commit_latency.p95_us,
        wal_on.service.commit_latency.p99_us,
    );

    let digests_match = wal_off.routes_digest == wal_on.routes_digest
        && wal_on.routes_digest == rec.report.routes_digest;
    let report = RecoveryBenchReport {
        version: BENCH_VERSION,
        scenario: scenario.name.clone(),
        killed_at: rec.killed_at,
        records_replayed: rec.records_replayed,
        torn_tail_dropped: rec.torn_tail_dropped,
        wal_stats: rec.wal_stats,
        digests_match,
        wal_off,
        wal_on,
        recovered: rec.report,
        primary: rec.primary_metrics,
    };
    let conflicts = report.total_audit_conflicts();
    let json = report.to_json();
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("carp-service: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("carp-service: wrote {path}");
        }
        None => println!("{json}"),
    }
    if conflicts > 0 {
        eprintln!("carp-service: FAIL — {conflicts} audited collision(s)");
        std::process::exit(1);
    }
    if !digests_match {
        eprintln!(
            "carp-service: FAIL — digests diverged: off {:#018x}, on {:#018x}, recovered {:#018x}",
            report.wal_off.routes_digest,
            report.wal_on.routes_digest,
            report.recovered.routes_digest,
        );
        std::process::exit(1);
    }
    eprintln!("carp-service: recovery bench ok — three identical digests, no collisions");
    std::process::exit(0);
}

/// Live-replication failover bench (`--replication`): the day driven over
/// real TCP with a network standby tailing the changeset log; the primary
/// is killed mid-day and the standby serves the rest. Emits
/// `BENCH_service_replication.json`; fails unless the failover digest is
/// bit-identical to the uninterrupted baseline's, collision-free, and the
/// post-takeover fence refused at least one stale-epoch append.
#[cfg(unix)]
fn run_replication(opts: &Opts, cfg: ServiceConfig, wal_path: &str) -> ! {
    if opts.deadline_ms != 0 {
        usage_error("--replication requires --deadline-ms 0 (digests must be deterministic)");
    }
    let layout = layout_for(&opts.preset);
    let rate = opts.rates[0];
    let scenario = LoadScenario::new(
        format!("{}@{}x", opts.preset, rate),
        layout.clone(),
        opts.tasks,
        opts.horizon,
        rate,
        opts.seed,
    );
    let last_arrival = scenario.tasks.last().map_or(0, |t| t.arrival);
    let kill_at = (f64::from(last_arrival) * opts.kill_frac) as Time;
    eprintln!(
        "carp-service: replication bench {} — kill primary over TCP at t={kill_at} \
         ({}% of arrivals), {} mux thread(s)",
        scenario.name,
        (opts.kill_frac * 100.0) as u32,
        opts.mux_threads
    );
    let report = run_load_replication(
        &scenario,
        || srp(&layout),
        opts.sim.clone(),
        cfg,
        opts.mux_threads,
        Path::new(wal_path),
        kill_at,
    );
    print_run(&report.baseline);
    print_run(&report.replicated);
    eprintln!(
        "carp-service: standby: {} records shipped over the wire, {} record(s) stale at \
         the kill signal, takeover in {:.1} ms to epoch {}, {} fenced append(s)",
        report.records_shipped,
        report.staleness_records,
        report.takeover_ms,
        report.takeover_epoch,
        report.fenced_appends,
    );
    let conflicts = report.total_audit_conflicts();
    let json = report.to_json();
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("carp-service: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("carp-service: wrote {path}");
        }
        None => println!("{json}"),
    }
    if conflicts > 0 {
        eprintln!("carp-service: FAIL — {conflicts} audited collision(s)");
        std::process::exit(1);
    }
    if !report.digests_match {
        eprintln!(
            "carp-service: FAIL — failover digest {:#018x} diverged from baseline {:#018x}",
            report.replicated.routes_digest, report.baseline.routes_digest,
        );
        std::process::exit(1);
    }
    if report.fenced_appends == 0 {
        eprintln!("carp-service: FAIL — stale-epoch append was not refused (fence inactive)");
        std::process::exit(1);
    }
    eprintln!(
        "carp-service: replication bench ok — failover digest bit-identical, \
         no collisions, fence active"
    );
    std::process::exit(0);
}

#[cfg(not(unix))]
fn run_replication(_opts: &Opts, _cfg: ServiceConfig, _wal_path: &str) -> ! {
    eprintln!("carp-service: --replication needs the event-loop front-end (unix-only)");
    std::process::exit(2);
}

/// Open-socket ladder (`--connections`): the same day driven through the
/// event-loop front-end under rising connection churn; emits
/// `BENCH_service_mux.json` and fails unless every rung's digest matches
/// the blocking path's and no rung audits a collision.
#[cfg(unix)]
fn run_ladder(opts: &Opts, cfg: ServiceConfig, connections: &[usize]) -> ! {
    if opts.deadline_ms != 0 {
        usage_error("--connections requires --deadline-ms 0 (digests must be deterministic)");
    }
    let layout = layout_for(&opts.preset);
    let rate = opts.rates[0];
    let scenario = LoadScenario::new(
        format!("{}@{}x", opts.preset, rate),
        layout.clone(),
        opts.tasks,
        opts.horizon,
        rate,
        opts.seed,
    );
    eprintln!(
        "carp-service: connection ladder {} — {} mux thread(s), rungs {:?}",
        scenario.name, opts.mux_threads, connections
    );
    let report = run_connection_ladder(
        &scenario,
        || srp(&layout),
        opts.sim.clone(),
        cfg,
        opts.mux_threads,
        connections,
    );
    for r in &report.rungs {
        eprintln!(
            "carp-service: {:>4} conns ({} churn): driver ack p50/p99 {}/{} us, churn \
             {} reqs (ack p99 {} us), digest {:#018x}, {} conflicts, mux peak {} fds, \
             {} polls, {} wakeups, {} partial reads / {} writes",
            r.connections,
            r.churn_connections,
            r.driver_ack.p50_us,
            r.driver_ack.p99_us,
            r.churn_requests,
            r.churn_ack.p99_us,
            r.routes_digest,
            r.audit_conflicts,
            r.mux.peak_registered,
            r.mux.polls,
            r.mux.wakeups,
            r.mux.partial_reads,
            r.mux.partial_writes,
        );
    }
    if let Some(ratio) = report.worst_driver_p99_ratio() {
        eprintln!("carp-service: worst driver ack p99 vs 1-connection baseline: {ratio:.2}x");
    }
    let conflicts = report.total_audit_conflicts();
    let json = report.to_json();
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("carp-service: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("carp-service: wrote {path}");
        }
        None => println!("{json}"),
    }
    if conflicts > 0 {
        eprintln!("carp-service: FAIL — {conflicts} audited collision(s)");
        std::process::exit(1);
    }
    if !report.digests_match {
        eprintln!(
            "carp-service: FAIL — a rung's digest diverged from the blocking path's \
             {:#018x}",
            report.baseline_digest
        );
        std::process::exit(1);
    }
    eprintln!(
        "carp-service: connection ladder ok — every digest bit-identical to the \
         blocking path, no collisions"
    );
    std::process::exit(0);
}

#[cfg(not(unix))]
fn run_ladder(_opts: &Opts, _cfg: ServiceConfig, _connections: &[usize]) -> ! {
    eprintln!("carp-service: --connections needs the event-loop front-end (unix-only)");
    std::process::exit(2);
}

/// Multi-tenant load run, with the optional single-tenant conformance
/// replay. Returns the per-tenant reports (multi runs first, then any
/// serial baselines, labelled by tenant).
fn run_multi(opts: &Opts, profiles: &[TenantDayProfile], cfg: ServiceConfig) -> Vec<LoadReport> {
    let loads: Vec<TenantLoad<SrpPlanner>> = profiles
        .iter()
        .map(|p| {
            let layout = layout_for(&p.preset);
            TenantLoad {
                scenario: scenario_for(p, &layout),
                planner: srp(&layout),
                service_cfg: cfg,
            }
        })
        .collect();
    eprintln!(
        "carp-service: serving {} tenants concurrently ({} workers each)...",
        profiles.len(),
        cfg.workers
    );
    let mut reports: Vec<LoadReport> = run_load_multi(loads, opts.sim.clone())
        .into_iter()
        .map(|(report, _planner)| report)
        .collect();
    for r in &reports {
        print_run(r);
    }

    if opts.conformance {
        // Replay each tenant alone on a serial worker: the multi-tenant
        // digest must match bit-for-bit (tenants share nothing but CPU).
        let serial_cfg = ServiceConfig { workers: 1, ..cfg };
        let mut diverged = false;
        for (p, multi) in profiles.iter().zip(&reports.clone()) {
            let layout = layout_for(&p.preset);
            let (solo, _) = run_load(
                &scenario_for(p, &layout),
                srp(&layout),
                opts.sim.clone(),
                serial_cfg,
            );
            let ok = solo.routes_digest == multi.routes_digest;
            eprintln!(
                "carp-service: conformance {}: multi {:#018x} vs solo {:#018x} — {}",
                p.id(),
                multi.routes_digest,
                solo.routes_digest,
                if ok { "ok" } else { "DIVERGED" }
            );
            diverged |= !ok;
            reports.push(solo);
        }
        if diverged {
            eprintln!("carp-service: FAIL — multi-tenant digest diverged from single-tenant");
            std::process::exit(1);
        }
    }
    reports
}

/// Classic single-tenant sweep: one run per rate multiplier. With `--wal`
/// each run journals into `PATH.<rate>x` (one sealed log per run).
fn run_single(opts: &Opts, cfg: ServiceConfig) -> Vec<LoadReport> {
    let layout = layout_for(&opts.preset);
    let mut runs = Vec::with_capacity(opts.rates.len());
    for &rate in &opts.rates {
        let scenario = LoadScenario::new(
            format!("{}@{}x", opts.preset, rate),
            layout.clone(),
            opts.tasks,
            opts.horizon,
            rate,
            opts.seed,
        );
        let planner = srp(&layout);
        eprintln!(
            "carp-service: running {} ({} tasks, seed {})...",
            scenario.name,
            scenario.tasks.len(),
            opts.seed
        );
        let (report, _planner) = if let Some(path) = &opts.wal {
            let path = format!("{path}.{rate}x");
            let journal = match WalJournal::create(&path) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("carp-service: cannot create changeset log {path}: {e}");
                    std::process::exit(2);
                }
            };
            run_load_journaled(&scenario, planner, opts.sim.clone(), cfg, journal)
        } else if opts.workers > 1 {
            run_load_speculative(&scenario, planner, opts.sim.clone(), cfg)
        } else {
            run_load(&scenario, planner, opts.sim.clone(), cfg)
        };
        print_run(&report);
        runs.push(report);
    }
    runs
}

fn main() {
    let opts = parse_opts();
    let service_cfg = ServiceConfig {
        queue_capacity: opts.queue_capacity,
        deadline: if opts.deadline_ms == 0 {
            None
        } else {
            Some(Duration::from_millis(opts.deadline_ms))
        },
        workers: opts.workers,
        ..ServiceConfig::default()
    };

    let profiles = tenant_profiles(&opts);
    if let Some(addr) = &opts.listen {
        let profiles = if profiles.is_empty() {
            vec![TenantDayProfile {
                preset: opts.preset.clone(),
                ..TenantDayProfile::default()
            }]
        } else {
            profiles
        };
        run_daemon(addr, &profiles, service_cfg, &opts);
    }
    if opts.standby.is_some() {
        usage_error("--standby requires --listen");
    }
    if opts.follow.is_some() {
        usage_error("--follow requires --listen");
    }
    if let Some(wal_path) = &opts.recovery {
        run_recovery(&opts, service_cfg, wal_path);
    }
    if let Some(wal_path) = &opts.replication {
        run_replication(&opts, service_cfg, wal_path);
    }
    if let Some(connections) = opts.connections.clone() {
        run_ladder(&opts, service_cfg, &connections);
    }
    if opts.conformance && profiles.is_empty() {
        usage_error("--conformance requires --tenants (or sim-config tenants)");
    }

    let runs = if profiles.is_empty() {
        run_single(&opts, service_cfg)
    } else {
        run_multi(&opts, &profiles, service_cfg)
    };

    let bench = ServiceBenchReport::new(runs);
    let conflicts = bench.total_audit_conflicts();
    let speculation_wins: u64 = bench.runs.iter().map(|r| r.service.speculation_wins).sum();
    let json = bench.to_json();
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("carp-service: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("carp-service: wrote {path}");
        }
        None => println!("{json}"),
    }

    if conflicts > 0 {
        eprintln!("carp-service: FAIL — {conflicts} audited collision(s)");
        std::process::exit(1);
    }
    if opts.expect_speculation && speculation_wins == 0 {
        eprintln!(
            "carp-service: FAIL — --expect-speculation set but no speculative \
             commit won (pipeline never engaged)"
        );
        std::process::exit(1);
    }
}
