//! `carp-service` — run the online planning service under generated load
//! and emit a `BENCH_service.json` report.
//!
//! ```sh
//! cargo run --release -p carp-service -- \
//!     --preset W-2 --tasks 400 --rates 1,4 --seed 7 --out BENCH_service.json
//! ```
//!
//! One run is executed per rate multiplier; each run replays the same
//! seeded task stream with arrivals compressed by the multiplier, audits
//! every committed route, and records latency percentiles and refusal
//! counters. The process exits non-zero if any run reports an audited
//! collision, which is the CI perf job's gate.

use carp_service::loadgen::{run_load, run_load_speculative, LoadScenario};
use carp_service::report::ServiceBenchReport;
use carp_service::service::ServiceConfig;
use carp_simenv::SimConfig;
use carp_srp::{SrpConfig, SrpPlanner};
use carp_warehouse::layout::{Layout, LayoutConfig, WarehousePreset};
use std::time::Duration;

const USAGE: &str = "usage: carp-service [options]
  --preset P          warehouse preset: small | W-1 | W-2 | W-3 (default small)
  --tasks N           tasks in the stream (default 200)
  --horizon T         day span in sim-seconds before compression (default 2000)
  --rates R1,R2,...   arrival-rate multipliers, one run each (default 1,4)
  --seed S            task-stream RNG seed (default 7)
  --queue-capacity N  ingest queue bound (default 256)
  --deadline-ms MS    per-request planning deadline; 0 disables it and makes
                      the committed route set bit-deterministic (default 0)
  --workers N         planner worker threads; > 1 runs the speculative
                      plan/validate/commit pipeline (default 1)
  --expect-speculation fail unless speculative wins are recorded (used by
                      the CI smoke to prove the pipeline actually engaged)
  --sim-config PATH   JSON file overriding SimConfig fields (service_time,
                      retry_delay, max_retries, ...)
  --out PATH          write BENCH_service.json here (default: print to stdout)

exit status: 0 on success, 1 if any run audited a collision (or
--expect-speculation saw none), 2 on bad usage";

fn usage_error(msg: &str) -> ! {
    eprintln!("carp-service: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Opts {
    preset: String,
    tasks: u32,
    horizon: u32,
    rates: Vec<f64>,
    seed: u64,
    queue_capacity: usize,
    deadline_ms: u64,
    workers: usize,
    expect_speculation: bool,
    sim: SimConfig,
    out: Option<String>,
}

fn parse_opts() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        std::process::exit(0);
    }
    let mut opts = Opts {
        preset: "small".to_string(),
        tasks: 200,
        horizon: 2000,
        rates: vec![1.0, 4.0],
        seed: 7,
        queue_capacity: 256,
        deadline_ms: 0,
        workers: 1,
        expect_speculation: false,
        sim: SimConfig::default(),
        out: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> &str {
            match it.next() {
                Some(v) => v,
                None => usage_error(&format!("{flag} expects a value")),
            }
        };
        match a.as_str() {
            "--preset" => opts.preset = value("--preset").to_string(),
            "--tasks" => match value("--tasks").parse() {
                Ok(n) => opts.tasks = n,
                Err(_) => usage_error("--tasks expects an integer"),
            },
            "--horizon" => match value("--horizon").parse() {
                Ok(t) => opts.horizon = t,
                Err(_) => usage_error("--horizon expects an integer"),
            },
            "--rates" => {
                let raw = value("--rates");
                let rates: Result<Vec<f64>, _> = raw.split(',').map(str::parse).collect();
                match rates {
                    Ok(r) if !r.is_empty() && r.iter().all(|&x| x > 0.0) => opts.rates = r,
                    _ => usage_error("--rates expects positive numbers like 1,4"),
                }
            }
            "--seed" => match value("--seed").parse() {
                Ok(s) => opts.seed = s,
                Err(_) => usage_error("--seed expects an integer"),
            },
            "--queue-capacity" => match value("--queue-capacity").parse() {
                Ok(n) if n > 0 => opts.queue_capacity = n,
                _ => usage_error("--queue-capacity expects a positive integer"),
            },
            "--deadline-ms" => match value("--deadline-ms").parse() {
                Ok(ms) => opts.deadline_ms = ms,
                Err(_) => usage_error("--deadline-ms expects an integer"),
            },
            "--workers" => match value("--workers").parse() {
                Ok(n) if n > 0 => opts.workers = n,
                _ => usage_error("--workers expects a positive integer"),
            },
            "--expect-speculation" => opts.expect_speculation = true,
            "--sim-config" => {
                let path = value("--sim-config");
                let json = match std::fs::read_to_string(path) {
                    Ok(j) => j,
                    Err(e) => usage_error(&format!("cannot read {path}: {e}")),
                };
                match SimConfig::from_json(&json) {
                    Ok(cfg) => opts.sim = cfg,
                    Err(e) => usage_error(&format!("bad sim config {path}: {e}")),
                }
            }
            "--out" => opts.out = Some(value("--out").to_string()),
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    opts
}

fn layout_for(preset: &str) -> Layout {
    match preset {
        "small" => LayoutConfig::small().generate(),
        "W-1" | "w-1" | "W1" | "w1" => WarehousePreset::W1.generate(),
        "W-2" | "w-2" | "W2" | "w2" => WarehousePreset::W2.generate(),
        "W-3" | "w-3" | "W3" | "w3" => WarehousePreset::W3.generate(),
        other => usage_error(&format!("unknown preset {other}")),
    }
}

fn main() {
    let opts = parse_opts();
    let layout = layout_for(&opts.preset);
    let service_cfg = ServiceConfig {
        queue_capacity: opts.queue_capacity,
        deadline: if opts.deadline_ms == 0 {
            None
        } else {
            Some(Duration::from_millis(opts.deadline_ms))
        },
        workers: opts.workers,
        ..ServiceConfig::default()
    };

    let mut runs = Vec::with_capacity(opts.rates.len());
    for &rate in &opts.rates {
        let scenario = LoadScenario::new(
            format!("{}@{}x", opts.preset, rate),
            layout.clone(),
            opts.tasks,
            opts.horizon,
            rate,
            opts.seed,
        );
        let planner = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
        eprintln!(
            "carp-service: running {} ({} tasks, seed {})...",
            scenario.name,
            scenario.tasks.len(),
            opts.seed
        );
        let (report, _planner) = if opts.workers > 1 {
            run_load_speculative(&scenario, planner, opts.sim, service_cfg)
        } else {
            run_load(&scenario, planner, opts.sim, service_cfg)
        };
        eprintln!(
            "carp-service: {} done: {} planned, p95 {} us, {} conflicts, {:.1} plans/s, \
             speculation {}w/{}r/{}a",
            report.scenario,
            report.service.planned,
            report.service.planning_latency.p95_us,
            report.audit_conflicts,
            report.throughput_rps,
            report.service.speculation_wins,
            report.service.speculation_retries,
            report.service.speculation_aborts
        );
        runs.push(report);
    }

    let bench = ServiceBenchReport::new(runs);
    let conflicts = bench.total_audit_conflicts();
    let speculation_wins: u64 = bench.runs.iter().map(|r| r.service.speculation_wins).sum();
    let json = bench.to_json();
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("carp-service: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("carp-service: wrote {path}");
        }
        None => println!("{json}"),
    }

    if conflicts > 0 {
        eprintln!("carp-service: FAIL — {conflicts} audited collision(s)");
        std::process::exit(1);
    }
    if opts.expect_speculation && speculation_wins == 0 {
        eprintln!(
            "carp-service: FAIL — --expect-speculation set but no speculative \
             commit won (pipeline never engaged)"
        );
        std::process::exit(1);
    }
}
