//! Durable changeset log + warm-standby recovery (DESIGN.md §15).
//!
//! Every state transition a tenant's commit pipeline performs at its
//! single validate-and-commit point — commit, cancel, clock advance
//! (batched retirement), windowed route revision, tenant open/close — is
//! appended to one shared, CRC-framed, append-only log. Replaying the log
//! in sequence order reconstructs the daemon's entire planning state:
//! a standby process does exactly that and finishes the day bit-identical
//! to an uninterrupted run.
//!
//! Layer map:
//!
//! * [`record`] — record framing (`u32 len · u32 crc · payload`), the
//!   [`record::ChangeOp`] vocabulary, and the torn-tail-tolerant decoder.
//! * [`log`] — the file-backed [`log::WalJournal`] (append, fsync
//!   discipline, torn-tail repair on open, snapshot compaction) and the
//!   per-tenant [`log::TenantJournal`] handle the pipelines hold.
//! * [`replay`] — pure state folding ([`replay::ReplayState`]), standby
//!   planner recovery ([`replay::recover_planners`]), the log-level
//!   strict audit ([`replay::audit_log`]), and `ReproBundle` derivation
//!   ([`replay::bundle_from_log`]).

pub mod log;
pub mod record;
pub mod replay;

pub use self::log::{read_log, LogSubscription, TenantJournal, WalConfig, WalJournal, WalStats};
pub use self::record::{ChangeOp, ChangeRecord, LogTail, TenantSnapshot, WalSnapshot};
pub use self::replay::{
    audit_log, bundle_from_log, recover_planners, requests_in_log, ReplayState,
};
