//! Replay: folding changeset records back into planning state.
//!
//! Three consumers share the fold:
//!
//! * [`ReplayState`] — the pure, comparable residue of a log (active
//!   routes, counters, clocks per tenant). The journal maintains one
//!   incrementally so compaction can snapshot without re-reading the
//!   file; the compaction proptest pins `replay(snapshot ⊕ tail) ==
//!   live state`.
//! * [`recover_planners`] — the warm standby: rebuilds real
//!   [`SpeculativePlanner`] replicas (committed segments, reservation
//!   layers and all) by replaying adopt/cancel/advance/revise in log
//!   order, exactly the discipline worker replicas use on the in-memory
//!   epoch op-log (DESIGN.md §13) — extended here to cover revision ops.
//! * [`audit_log`] — a strict collision audit of the recovered history:
//!   replays every route into per-tenant [`IncrementalAuditor`]s and
//!   reports the first conflict, proving the log never certified a
//!   colliding day.
//!
//! [`requests_in_log`] extracts the committed request stream, which is
//! what makes the changeset log a strict superset of the `ReproBundle`
//! replay format: a bundle is just a log slice projected onto its
//! requests (see [`bundle_from_log`]).

use super::record::{ChangeOp, ChangeRecord, TenantSnapshot, WalSnapshot};
use carp_simenv::audit::ReproBundle;
use carp_warehouse::collision::{AuditConflict, IncrementalAuditor};
use carp_warehouse::layout::LayoutConfig;
use carp_warehouse::planner::SpeculativePlanner;
use carp_warehouse::request::Request;
use std::collections::BTreeMap;

/// The replay-relevant residue of a record prefix: per-tenant state plus
/// the last sequence number folded in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayState {
    /// Per-tenant state, keyed by tenant id. Closed tenants are removed.
    pub tenants: BTreeMap<String, TenantSnapshot>,
    /// Sequence number of the last record applied (0 = none).
    pub last_seq: u64,
    /// Leadership epoch in force after the last record (1 when the log
    /// predates fencing — an epoch-free log is epoch 1 by definition).
    pub epoch: u64,
}

impl Default for ReplayState {
    fn default() -> Self {
        ReplayState {
            tenants: BTreeMap::new(),
            last_seq: 0,
            epoch: 1,
        }
    }
}

impl ReplayState {
    /// Fold an iterator of records into a fresh state.
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a ChangeRecord>) -> Self {
        let mut state = ReplayState::default();
        for rec in records {
            state.apply(rec);
        }
        state
    }

    /// Apply one record.
    pub fn apply(&mut self, rec: &ChangeRecord) {
        self.last_seq = rec.seq;
        match &rec.op {
            ChangeOp::TenantOpen => {
                // Re-open (standby takeover) keeps accumulated state.
                self.tenants.entry(rec.tenant.clone()).or_default();
            }
            ChangeOp::TenantClose => {
                self.tenants.remove(&rec.tenant);
            }
            ChangeOp::Commit { request, route } => {
                let t = self.tenants.entry(rec.tenant.clone()).or_default();
                t.active.insert(request.id, (*request, route.clone()));
                t.committed += 1;
            }
            ChangeOp::Cancel { id } => {
                if let Some(t) = self.tenants.get_mut(&rec.tenant) {
                    if t.active.remove(id).is_some() {
                        t.cancelled += 1;
                    }
                }
            }
            ChangeOp::Advance { now } => {
                let t = self.tenants.entry(rec.tenant.clone()).or_default();
                let before = t.active.len();
                t.active.retain(|_, (_, route)| route.end_time() >= *now);
                t.retired += (before - t.active.len()) as u64;
                t.now = *now;
            }
            ChangeOp::Revise { id, route } => {
                if let Some(t) = self.tenants.get_mut(&rec.tenant) {
                    if let Some(slot) = t.active.get_mut(id) {
                        slot.1 = route.clone();
                        t.revised += 1;
                    }
                }
            }
            ChangeOp::Snapshot(snap) => {
                self.tenants = snap.tenants.clone();
                self.epoch = self.epoch.max(snap.epoch);
            }
            ChangeOp::Epoch(epoch) => {
                // Epochs only move forward; a stale bump in the stream is
                // ignored rather than rewinding the fence.
                self.epoch = self.epoch.max(*epoch);
            }
        }
    }

    /// Capture the state as a snapshot payload for compaction.
    pub fn snapshot(&self) -> WalSnapshot {
        WalSnapshot {
            epoch: self.epoch,
            tenants: self.tenants.clone(),
        }
    }
}

/// Rebuild per-tenant planner replicas from a decoded log: the warm
/// standby's core. `factory` makes an empty planner for a tenant id; the
/// replay then drives it through the same adopt/cancel/advance sequence
/// the authoritative planner committed, so the replica's committed
/// segments and reservations are bit-identical to the primary's at the
/// moment of its last append.
pub fn recover_planners<P, F>(
    records: &[ChangeRecord],
    mut factory: F,
) -> (BTreeMap<String, P>, ReplayState)
where
    P: SpeculativePlanner,
    F: FnMut(&str) -> P,
{
    let mut planners: BTreeMap<String, P> = BTreeMap::new();
    let mut state = ReplayState::default();
    // Revision records precede their Advance in the log (the journal
    // writes them in commit order), but planner replay must run the
    // advance *first* — the planner may propose its own revisions there,
    // which are discarded — and then re-impose the log's authoritative
    // revised routes via cancel + adopt. Buffer revisions per tenant
    // until that tenant's next Advance.
    let mut pending_revisions: BTreeMap<String, Vec<(u64, carp_warehouse::route::Route)>> =
        BTreeMap::new();
    for rec in records {
        state.apply(rec);
        match &rec.op {
            ChangeOp::TenantOpen => {
                planners
                    .entry(rec.tenant.clone())
                    .or_insert_with(|| factory(&rec.tenant));
            }
            ChangeOp::TenantClose => {
                planners.remove(&rec.tenant);
                pending_revisions.remove(&rec.tenant);
            }
            ChangeOp::Commit { request, route } => {
                if let Some(p) = planners.get_mut(&rec.tenant) {
                    p.adopt(request.id, route);
                }
            }
            ChangeOp::Cancel { id } => {
                if let Some(p) = planners.get_mut(&rec.tenant) {
                    p.cancel(*id);
                }
            }
            ChangeOp::Advance { now } => {
                if let Some(p) = planners.get_mut(&rec.tenant) {
                    let _own = p.advance(*now);
                    for (id, route) in pending_revisions.remove(&rec.tenant).unwrap_or_default() {
                        p.cancel(id);
                        p.adopt(id, &route);
                    }
                }
            }
            ChangeOp::Revise { id, route } => {
                if planners.contains_key(&rec.tenant) {
                    pending_revisions
                        .entry(rec.tenant.clone())
                        .or_default()
                        .push((*id, route.clone()));
                }
            }
            ChangeOp::Snapshot(snap) => {
                planners.clear();
                pending_revisions.clear();
                for (tenant, st) in &snap.tenants {
                    let mut p = factory(tenant);
                    for (req, route) in st.active.values() {
                        p.adopt(req.id, route);
                    }
                    let _ = p.advance(st.now);
                    planners.insert(tenant.clone(), p);
                }
            }
            // Epoch bumps carry no planning state.
            ChangeOp::Epoch(_) => {}
        }
    }
    // A log torn between a tenant's Revise records and its Advance still
    // carries authoritative routes: impose any left-over revisions.
    for (tenant, revisions) in pending_revisions {
        if let Some(p) = planners.get_mut(&tenant) {
            for (id, route) in revisions {
                p.cancel(id);
                p.adopt(id, &route);
            }
        }
    }
    (planners, state)
}

/// Strict collision audit of a decoded log: replay every tenant's route
/// history through an [`IncrementalAuditor`] and return the first
/// conflict (with the offending tenant), or `Ok` when the whole log is
/// collision-free — the recovery-time analogue of the simulator's
/// `--strict-audit` gate.
pub fn audit_log(records: &[ChangeRecord]) -> Result<(), (String, AuditConflict)> {
    let mut auditors: BTreeMap<&str, IncrementalAuditor> = BTreeMap::new();
    for rec in records {
        match &rec.op {
            ChangeOp::TenantOpen => {
                auditors.entry(rec.tenant.as_str()).or_default();
            }
            ChangeOp::TenantClose => {
                auditors.remove(rec.tenant.as_str());
            }
            ChangeOp::Commit { request, route } => {
                let a = auditors.entry(rec.tenant.as_str()).or_default();
                a.commit(request.id, route)
                    .map_err(|c| (rec.tenant.clone(), c))?;
            }
            ChangeOp::Cancel { id } => {
                if let Some(a) = auditors.get_mut(rec.tenant.as_str()) {
                    a.cancel(*id);
                }
            }
            ChangeOp::Advance { now } => {
                if let Some(a) = auditors.get_mut(rec.tenant.as_str()) {
                    let done: Vec<_> = a
                        .routes()
                        .filter(|(_, r)| r.end_time() < *now)
                        .map(|(&id, _)| id)
                        .collect();
                    for id in done {
                        a.retire(id);
                    }
                }
            }
            ChangeOp::Revise { id, route } => {
                let a = auditors.entry(rec.tenant.as_str()).or_default();
                a.cancel(*id);
                a.commit(*id, route).map_err(|c| (rec.tenant.clone(), c))?;
            }
            ChangeOp::Snapshot(snap) => {
                auditors.clear();
                for (tenant, st) in &snap.tenants {
                    let a = auditors.entry(tenant.as_str()).or_default();
                    for (req, route) in st.active.values() {
                        a.commit(req.id, route).map_err(|c| (tenant.clone(), c))?;
                    }
                }
            }
            // Epoch bumps carry no routes to audit.
            ChangeOp::Epoch(_) => {}
        }
    }
    Ok(())
}

/// The committed request stream of one tenant, in commit order.
pub fn requests_in_log(records: &[ChangeRecord], tenant: &str) -> Vec<Request> {
    records
        .iter()
        .filter(|r| r.tenant == tenant)
        .filter_map(|r| match &r.op {
            ChangeOp::Commit { request, .. } => Some(*request),
            _ => None,
        })
        .collect()
}

/// Derive a [`ReproBundle`] from a log slice: the committed request
/// stream of `tenant` plus a note naming the source log. This is the
/// subsumption direction — any journaled day can be turned into the
/// older replay format, while the log additionally carries the committed
/// routes, cancels, revisions and clock, which a bundle cannot express.
pub fn bundle_from_log(
    layout: LayoutConfig,
    records: &[ChangeRecord],
    tenant: &str,
) -> ReproBundle {
    ReproBundle {
        layout,
        requests: requests_in_log(records, tenant),
        conflict: format!("derived from changeset log slice (tenant {tenant})"),
        provenance: Vec::new(),
        timeline: String::new(),
    }
}
