//! The file-backed journal: append, fsync discipline, torn-tail repair,
//! and snapshot compaction.
//!
//! One [`WalJournal`] serves the whole daemon — all tenants share a single
//! append-only file and one monotonic sequence, which is what gives the
//! standby a total order to replay. Per-tenant commit pipelines hold a
//! cheap [`TenantJournal`] handle (tenant id + `Arc` of the journal) and
//! call its typed helpers at the single validate-and-commit point.
//!
//! Durability discipline: every append is written straight to the file
//! (no userspace buffering), so a *process* crash loses nothing; `fsync`
//! runs every [`WalConfig::fsync_every`] appends and at
//! [`WalJournal::seal`], bounding what an *OS* crash can lose. A torn
//! final record — the crash-mid-append case — is repaired on
//! [`WalJournal::open_append`] by truncating to the last intact record.

use super::record::{decode_records, encode_record, ChangeOp, ChangeRecord, LogTail};
use super::replay::ReplayState;
use crate::wire::WireError;
use carp_warehouse::request::{Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::types::Time;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Durability invariant: a log file's *existence* is only durable once its
/// parent directory has been fsynced. `sync_all` on the file descriptor
/// persists the file's contents and inode, but the directory entry naming
/// it lives in the directory's own blocks — a crash right after creation,
/// truncation-repair, or a compaction rename can otherwise resurrect the
/// old name or lose the file entirely. Every point that creates, replaces,
/// or shrinks the log file calls this on the parent before declaring the
/// operation durable.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    File::open(dir)?.sync_all()
}

/// Journal tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Call `fsync` every this many appends (and always on `seal`).
    pub fsync_every: u64,
    /// Rewrite the log as one snapshot record every this many appends;
    /// `None` (the default) compacts only on explicit
    /// [`WalJournal::compact`] calls.
    pub snapshot_every: Option<u64>,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            fsync_every: 64,
            snapshot_every: None,
        }
    }
}

/// Counters describing the journal's life so far (all monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WalStats {
    /// Records appended.
    pub appends: u64,
    /// Payload + header bytes written by appends.
    pub bytes: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Compaction rewrites performed.
    pub compactions: u64,
    /// Appends or syncs that failed at the I/O layer (the daemon keeps
    /// planning; durability is degraded and the operator must act).
    pub append_errors: u64,
    /// Appends refused because they were stamped with a stale leadership
    /// epoch — a fenced-off ex-primary tried to write.
    pub fenced_appends: u64,
}

struct Inner {
    file: File,
    next_seq: u64,
    since_fsync: u64,
    state: ReplayState,
}

/// Records queued for one live tail subscriber, shared between the
/// journal's append path and whoever drains the subscription.
struct TailState {
    queue: VecDeque<ChangeRecord>,
}

struct TailEntry {
    shared: Arc<Mutex<TailState>>,
    waker: Box<dyn Fn() + Send>,
}

/// A live subscription to the journal's append stream, handed out by
/// [`WalJournal::tail`]. Records pushed after the catch-up point accumulate
/// in an internal queue; [`LogSubscription::drain`] empties it. Dropping
/// the subscription unregisters it (the journal garbage-collects entries
/// whose subscriber is gone on the next append).
pub struct LogSubscription {
    shared: Arc<Mutex<TailState>>,
}

impl LogSubscription {
    /// Take every record queued since the last drain, in append order.
    pub fn drain(&self) -> Vec<ChangeRecord> {
        let mut st = self.shared.lock().expect("tail subscription lock");
        st.queue.drain(..).collect()
    }

    /// Whether records are currently queued.
    pub fn has_pending(&self) -> bool {
        !self
            .shared
            .lock()
            .expect("tail subscription lock")
            .queue
            .is_empty()
    }
}

/// The shared append-only changeset log.
pub struct WalJournal {
    path: PathBuf,
    config: WalConfig,
    inner: Mutex<Inner>,
    /// Live tail subscribers. Lock order: `inner` before `subs`, always.
    subs: Mutex<Vec<TailEntry>>,
    appends: AtomicU64,
    bytes: AtomicU64,
    fsyncs: AtomicU64,
    compactions: AtomicU64,
    append_errors: AtomicU64,
    fenced_appends: AtomicU64,
}

impl std::fmt::Debug for WalJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalJournal")
            .field("path", &self.path)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl WalJournal {
    /// Create a fresh (truncated) journal at `path`.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<Arc<WalJournal>> {
        Self::create_with(path, WalConfig::default())
    }

    /// Create a fresh journal with explicit tuning.
    pub fn create_with(
        path: impl Into<PathBuf>,
        config: WalConfig,
    ) -> std::io::Result<Arc<WalJournal>> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        // See sync_parent_dir: the file's contents are empty, but its
        // directory entry (or the truncation of a prior incarnation) must
        // survive a crash before any append is trusted to.
        sync_parent_dir(&path)?;
        Ok(Arc::new(WalJournal {
            path,
            config,
            inner: Mutex::new(Inner {
                file,
                next_seq: 1,
                since_fsync: 0,
                state: ReplayState::default(),
            }),
            subs: Mutex::new(Vec::new()),
            appends: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            fenced_appends: AtomicU64::new(0),
        }))
    }

    /// Open an existing journal for appending: decode its intact prefix,
    /// truncate any torn tail, and resume the sequence after the last
    /// record. Returns the decoded history (for standby replay) and how
    /// the tail looked before repair.
    pub fn open_append(
        path: impl Into<PathBuf>,
    ) -> std::io::Result<(Arc<WalJournal>, Vec<ChangeRecord>, LogTail)> {
        Self::open_append_with(path, WalConfig::default())
    }

    /// [`WalJournal::open_append`] with explicit tuning.
    pub fn open_append_with(
        path: impl Into<PathBuf>,
        config: WalConfig,
    ) -> std::io::Result<(Arc<WalJournal>, Vec<ChangeRecord>, LogTail)> {
        let path = path.into();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let (records, tail) = decode_records(&buf);
        if let LogTail::Torn { valid_bytes, .. } = tail {
            file.set_len(valid_bytes)?;
            file.sync_all()?;
            // See sync_parent_dir: the repair shrank the file; make the
            // repaired length durable before resuming appends over it.
            sync_parent_dir(&path)?;
        }
        file.seek(SeekFrom::End(0))?;
        let state = ReplayState::from_records(&records);
        let next_seq = records.last().map_or(1, |r| r.seq + 1);
        let journal = Arc::new(WalJournal {
            path,
            config,
            inner: Mutex::new(Inner {
                file,
                next_seq,
                since_fsync: 0,
                state,
            }),
            subs: Mutex::new(Vec::new()),
            appends: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            fenced_appends: AtomicU64::new(0),
        });
        Ok((journal, records, tail))
    }

    /// Append one op for `tenant`, returning the assigned sequence number.
    ///
    /// I/O failures are absorbed (counted in [`WalStats::append_errors`]
    /// and reported on stderr) rather than propagated: the planning
    /// pipeline must not die because the disk did — degraded durability
    /// beats a mid-day outage, and the stats surface the damage.
    pub fn append(&self, tenant: &str, op: ChangeOp) -> u64 {
        let mut inner = self.inner.lock().expect("wal lock poisoned");
        self.append_locked(&mut inner, tenant, op)
    }

    /// [`WalJournal::append`] fenced on a leadership epoch: refused with
    /// [`WireError::Fenced`] when `epoch` is older than the journal's
    /// current one (a standby took over since the caller captured its
    /// handle). This is the split-brain guard — a resurrected primary's
    /// stale appends are counted ([`WalStats::fenced_appends`]) and
    /// rejected instead of corrupting the journal.
    pub fn append_at(&self, epoch: u64, tenant: &str, op: ChangeOp) -> Result<u64, WireError> {
        let mut inner = self.inner.lock().expect("wal lock poisoned");
        let current = inner.state.epoch;
        if epoch < current {
            self.fenced_appends.fetch_add(1, Ordering::Relaxed);
            return Err(WireError::Fenced {
                stale: epoch,
                current,
            });
        }
        Ok(self.append_locked(&mut inner, tenant, op))
    }

    /// The journal's current leadership epoch (1 until the first bump).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().expect("wal lock poisoned").state.epoch
    }

    /// Bump the leadership epoch by one: journal an [`ChangeOp::Epoch`]
    /// record and fsync it immediately — fencing is only a guarantee once
    /// the bump is durable. Returns the new epoch. The standby's takeover
    /// call; every [`TenantJournal`] handle captured before it is fenced
    /// off from then on.
    pub fn bump_epoch(&self) -> u64 {
        let mut inner = self.inner.lock().expect("wal lock poisoned");
        let next = inner.state.epoch + 1;
        self.append_locked(&mut inner, "", ChangeOp::Epoch(next));
        self.fsync_locked(&mut inner);
        next
    }

    /// Append a record shipped from a primary verbatim, preserving its
    /// log-wide sequence number (the standby's side of live shipping).
    /// Returns `false` when `rec.seq` is not past the journal's last
    /// sequence — duplicate delivery after a tail reconnect is skipped,
    /// not an error.
    pub fn append_record(&self, rec: &ChangeRecord) -> bool {
        let mut inner = self.inner.lock().expect("wal lock poisoned");
        if rec.seq < inner.next_seq {
            return false;
        }
        inner.next_seq = rec.seq + 1;
        inner.state.apply(rec);
        self.write_locked(&mut inner, rec);
        self.ship_to_subs(rec);
        true
    }

    fn append_locked(&self, inner: &mut Inner, tenant: &str, op: ChangeOp) -> u64 {
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let rec = ChangeRecord {
            seq,
            tenant: tenant.to_string(),
            op,
        };
        inner.state.apply(&rec);
        self.write_locked(inner, &rec);
        // Ship to live tail subscribers *under the append lock*: the
        // subscriber's queue order is exactly the journal's append order,
        // and a tail() registration can never miss a record between its
        // catch-up read and its first push.
        self.ship_to_subs(&rec);
        if let Some(every) = self.config.snapshot_every {
            if seq.is_multiple_of(every) {
                if let Err(e) = self.compact_locked(inner) {
                    self.append_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!("carp-service: wal auto-compaction failed: {e}");
                }
            }
        }
        seq
    }

    fn write_locked(&self, inner: &mut Inner, rec: &ChangeRecord) {
        let bytes = encode_record(rec);
        if let Err(e) = inner.file.write_all(&bytes) {
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            eprintln!("carp-service: wal append failed: {e}");
            return;
        }
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        inner.since_fsync += 1;
        if inner.since_fsync >= self.config.fsync_every {
            self.fsync_locked(inner);
        }
    }

    /// Push `rec` to every live subscriber and wake it; entries whose
    /// subscriber dropped its [`LogSubscription`] are garbage-collected
    /// here (the queue `Arc` has a single owner left).
    fn ship_to_subs(&self, rec: &ChangeRecord) {
        let mut subs = self.subs.lock().expect("wal subs lock");
        subs.retain(|entry| {
            if Arc::strong_count(&entry.shared) == 1 {
                return false;
            }
            entry
                .shared
                .lock()
                .expect("tail subscription lock")
                .queue
                .push_back(rec.clone());
            (entry.waker)();
            true
        });
    }

    /// Subscribe to the journal's live append stream, starting at
    /// `from_seq`: returns every already-journaled record with
    /// `seq >= from_seq` (the catch-up — on a compacted log this starts at
    /// the snapshot record, which replays to the same state) plus a
    /// [`LogSubscription`] that every later append is pushed into.
    /// `waker` is called (with no journal locks held by the *caller*)
    /// after each push — a reactor points it at its self-pipe.
    pub fn tail(
        &self,
        from_seq: u64,
        waker: impl Fn() + Send + 'static,
    ) -> std::io::Result<(Vec<ChangeRecord>, LogSubscription)> {
        // Hold the append lock across the catch-up read *and* the
        // registration: no record can slip between the two, so catch-up ⊕
        // pushed stream is gap-free and duplicate-free.
        let _inner = self.inner.lock().expect("wal lock poisoned");
        let buf = std::fs::read(&self.path)?;
        let (records, _tail) = decode_records(&buf);
        let catch_up: Vec<ChangeRecord> =
            records.into_iter().filter(|r| r.seq >= from_seq).collect();
        let shared = Arc::new(Mutex::new(TailState {
            queue: VecDeque::new(),
        }));
        self.subs.lock().expect("wal subs lock").push(TailEntry {
            shared: Arc::clone(&shared),
            waker: Box::new(waker),
        });
        Ok((catch_up, LogSubscription { shared }))
    }

    fn fsync_locked(&self, inner: &mut Inner) {
        if let Err(e) = inner.file.sync_data() {
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            eprintln!("carp-service: wal fsync failed: {e}");
        } else {
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        inner.since_fsync = 0;
    }

    /// Force everything written so far to stable storage.
    pub fn sync(&self) {
        let mut inner = self.inner.lock().expect("wal lock poisoned");
        self.fsync_locked(&mut inner);
    }

    /// Seal the journal: final fsync of the file *and* its directory
    /// entry (see `sync_parent_dir` — a log created this run is not
    /// durable until the directory is). Called by graceful shutdown after
    /// every tenant has been drained and closed.
    pub fn seal(&self) {
        self.sync();
        if let Err(e) = sync_parent_dir(&self.path) {
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            eprintln!("carp-service: wal directory fsync failed: {e}");
        }
    }

    /// Rewrite the log as a single snapshot record capturing the current
    /// replay state; all prior history is dropped. Appends continue after
    /// the snapshot with the sequence uninterrupted, so
    /// `replay(snapshot ⊕ tail)` reconstructs the same state as replaying
    /// the uncompacted log.
    pub fn compact(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("wal lock poisoned");
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut Inner) -> std::io::Result<()> {
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let rec = ChangeRecord {
            seq,
            tenant: String::new(),
            op: ChangeOp::Snapshot(inner.state.snapshot()),
        };
        inner.state.apply(&rec);
        let bytes = encode_record(&rec);
        let tmp = self.path.with_extension("wal-compact");
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, &self.path)?;
        // See sync_parent_dir: the rename swapped the directory entry; a
        // crash before the directory is synced could resurrect the
        // pre-compaction file under the live name.
        sync_parent_dir(&self.path)?;
        // The handle followed the inode through the rename: it now *is*
        // the live log file, positioned at its end.
        inner.file = file;
        inner.since_fsync = 0;
        self.bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        // Tail subscribers get the snapshot record too: their replayed
        // state jumps to the compaction point exactly like a late reader
        // of the file would.
        self.ship_to_subs(&rec);
        Ok(())
    }

    /// Snapshot of the journal's counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.appends.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            append_errors: self.append_errors.load(Ordering::Relaxed),
            fenced_appends: self.fenced_appends.load(Ordering::Relaxed),
        }
    }

    /// Sequence number of the last record appended (0 = empty log).
    pub fn last_seq(&self) -> u64 {
        self.inner.lock().expect("wal lock poisoned").next_seq - 1
    }

    /// Clone of the replay state implied by everything appended so far.
    pub fn state(&self) -> ReplayState {
        self.inner.lock().expect("wal lock poisoned").state.clone()
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read and decode a changeset log without opening it for append. Never
/// errors on a torn tail — the intact prefix and the tail verdict come
/// back; only genuine I/O failures (missing file, bad permissions) error.
pub fn read_log(path: &Path) -> std::io::Result<(Vec<ChangeRecord>, LogTail)> {
    let buf = std::fs::read(path)?;
    Ok(decode_records(&buf))
}

/// A tenant-scoped handle on the shared journal: what the commit pipeline
/// actually holds. Cloneable and cheap; every helper is one append.
///
/// The handle captures the journal's leadership epoch at construction and
/// stamps every append with it ([`WalJournal::append_at`]): after a
/// standby takeover bumps the epoch, a handle a resurrected primary still
/// holds is fenced — its appends are refused and counted, never written.
#[derive(Clone)]
pub struct TenantJournal {
    tenant: Arc<str>,
    journal: Arc<WalJournal>,
    epoch: u64,
}

impl std::fmt::Debug for TenantJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantJournal")
            .field("tenant", &self.tenant)
            .finish_non_exhaustive()
    }
}

impl TenantJournal {
    /// Scope `journal` to one tenant, capturing its current epoch.
    pub fn new(journal: Arc<WalJournal>, tenant: &str) -> Self {
        let epoch = journal.epoch();
        TenantJournal {
            tenant: Arc::from(tenant),
            journal,
            epoch,
        }
    }

    /// The underlying shared journal.
    pub fn journal(&self) -> &Arc<WalJournal> {
        &self.journal
    }

    /// The leadership epoch this handle appends under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// One fenced-aware append: a refusal is already counted by the
    /// journal, and the pipeline must keep planning either way — the
    /// fence protects the *log*, not the ex-primary's in-memory day.
    fn append(&self, op: ChangeOp) {
        let _ = self.journal.append_at(self.epoch, &self.tenant, op);
    }

    /// Journal the tenant's registration.
    pub fn open(&self) {
        self.append(ChangeOp::TenantOpen);
    }

    /// Journal the tenant's deregistration and force it to disk.
    pub fn close(&self) {
        self.append(ChangeOp::TenantClose);
        self.journal.sync();
    }

    /// Journal one validated commit.
    pub fn commit(&self, request: &Request, route: &Route) {
        self.append(ChangeOp::Commit {
            request: *request,
            route: route.clone(),
        });
    }

    /// Journal a cancel of a committed route.
    pub fn cancel(&self, id: RequestId) {
        self.append(ChangeOp::Cancel { id });
    }

    /// Journal a clock advance: first any route revisions the planner
    /// produced (windowed TWP/RP repairs), then the advance itself, which
    /// implies batched retirement of routes ending before `now`.
    pub fn advance(&self, now: Time, revisions: &[(RequestId, Route)]) {
        for (id, route) in revisions {
            self.append(ChangeOp::Revise {
                id: *id,
                route: route.clone(),
            });
        }
        self.append(ChangeOp::Advance { now });
    }
}
