//! The file-backed journal: append, fsync discipline, torn-tail repair,
//! and snapshot compaction.
//!
//! One [`WalJournal`] serves the whole daemon — all tenants share a single
//! append-only file and one monotonic sequence, which is what gives the
//! standby a total order to replay. Per-tenant commit pipelines hold a
//! cheap [`TenantJournal`] handle (tenant id + `Arc` of the journal) and
//! call its typed helpers at the single validate-and-commit point.
//!
//! Durability discipline: every append is written straight to the file
//! (no userspace buffering), so a *process* crash loses nothing; `fsync`
//! runs every [`WalConfig::fsync_every`] appends and at
//! [`WalJournal::seal`], bounding what an *OS* crash can lose. A torn
//! final record — the crash-mid-append case — is repaired on
//! [`WalJournal::open_append`] by truncating to the last intact record.

use super::record::{decode_records, encode_record, ChangeOp, ChangeRecord, LogTail};
use super::replay::ReplayState;
use carp_warehouse::request::{Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::types::Time;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Journal tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Call `fsync` every this many appends (and always on `seal`).
    pub fsync_every: u64,
    /// Rewrite the log as one snapshot record every this many appends;
    /// `None` (the default) compacts only on explicit
    /// [`WalJournal::compact`] calls.
    pub snapshot_every: Option<u64>,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            fsync_every: 64,
            snapshot_every: None,
        }
    }
}

/// Counters describing the journal's life so far (all monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WalStats {
    /// Records appended.
    pub appends: u64,
    /// Payload + header bytes written by appends.
    pub bytes: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Compaction rewrites performed.
    pub compactions: u64,
    /// Appends or syncs that failed at the I/O layer (the daemon keeps
    /// planning; durability is degraded and the operator must act).
    pub append_errors: u64,
}

struct Inner {
    file: File,
    next_seq: u64,
    since_fsync: u64,
    state: ReplayState,
}

/// The shared append-only changeset log.
pub struct WalJournal {
    path: PathBuf,
    config: WalConfig,
    inner: Mutex<Inner>,
    appends: AtomicU64,
    bytes: AtomicU64,
    fsyncs: AtomicU64,
    compactions: AtomicU64,
    append_errors: AtomicU64,
}

impl std::fmt::Debug for WalJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalJournal")
            .field("path", &self.path)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl WalJournal {
    /// Create a fresh (truncated) journal at `path`.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<Arc<WalJournal>> {
        Self::create_with(path, WalConfig::default())
    }

    /// Create a fresh journal with explicit tuning.
    pub fn create_with(
        path: impl Into<PathBuf>,
        config: WalConfig,
    ) -> std::io::Result<Arc<WalJournal>> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(Arc::new(WalJournal {
            path,
            config,
            inner: Mutex::new(Inner {
                file,
                next_seq: 1,
                since_fsync: 0,
                state: ReplayState::default(),
            }),
            appends: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
        }))
    }

    /// Open an existing journal for appending: decode its intact prefix,
    /// truncate any torn tail, and resume the sequence after the last
    /// record. Returns the decoded history (for standby replay) and how
    /// the tail looked before repair.
    pub fn open_append(
        path: impl Into<PathBuf>,
    ) -> std::io::Result<(Arc<WalJournal>, Vec<ChangeRecord>, LogTail)> {
        Self::open_append_with(path, WalConfig::default())
    }

    /// [`WalJournal::open_append`] with explicit tuning.
    pub fn open_append_with(
        path: impl Into<PathBuf>,
        config: WalConfig,
    ) -> std::io::Result<(Arc<WalJournal>, Vec<ChangeRecord>, LogTail)> {
        let path = path.into();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let (records, tail) = decode_records(&buf);
        if let LogTail::Torn { valid_bytes, .. } = tail {
            file.set_len(valid_bytes)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        let state = ReplayState::from_records(&records);
        let next_seq = records.last().map_or(1, |r| r.seq + 1);
        let journal = Arc::new(WalJournal {
            path,
            config,
            inner: Mutex::new(Inner {
                file,
                next_seq,
                since_fsync: 0,
                state,
            }),
            appends: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
        });
        Ok((journal, records, tail))
    }

    /// Append one op for `tenant`, returning the assigned sequence number.
    ///
    /// I/O failures are absorbed (counted in [`WalStats::append_errors`]
    /// and reported on stderr) rather than propagated: the planning
    /// pipeline must not die because the disk did — degraded durability
    /// beats a mid-day outage, and the stats surface the damage.
    pub fn append(&self, tenant: &str, op: ChangeOp) -> u64 {
        let mut inner = self.inner.lock().expect("wal lock poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let rec = ChangeRecord {
            seq,
            tenant: tenant.to_string(),
            op,
        };
        let bytes = encode_record(&rec);
        inner.state.apply(&rec);
        if let Err(e) = inner.file.write_all(&bytes) {
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            eprintln!("carp-service: wal append failed: {e}");
            return seq;
        }
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        inner.since_fsync += 1;
        if inner.since_fsync >= self.config.fsync_every {
            self.fsync_locked(&mut inner);
        }
        if let Some(every) = self.config.snapshot_every {
            if seq.is_multiple_of(every) {
                if let Err(e) = self.compact_locked(&mut inner) {
                    self.append_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!("carp-service: wal auto-compaction failed: {e}");
                }
            }
        }
        seq
    }

    fn fsync_locked(&self, inner: &mut Inner) {
        if let Err(e) = inner.file.sync_data() {
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            eprintln!("carp-service: wal fsync failed: {e}");
        } else {
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        inner.since_fsync = 0;
    }

    /// Force everything written so far to stable storage.
    pub fn sync(&self) {
        let mut inner = self.inner.lock().expect("wal lock poisoned");
        self.fsync_locked(&mut inner);
    }

    /// Seal the journal: final fsync. Called by graceful shutdown after
    /// every tenant has been drained and closed.
    pub fn seal(&self) {
        self.sync();
    }

    /// Rewrite the log as a single snapshot record capturing the current
    /// replay state; all prior history is dropped. Appends continue after
    /// the snapshot with the sequence uninterrupted, so
    /// `replay(snapshot ⊕ tail)` reconstructs the same state as replaying
    /// the uncompacted log.
    pub fn compact(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("wal lock poisoned");
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut Inner) -> std::io::Result<()> {
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let rec = ChangeRecord {
            seq,
            tenant: String::new(),
            op: ChangeOp::Snapshot(inner.state.snapshot()),
        };
        inner.state.apply(&rec);
        let bytes = encode_record(&rec);
        let tmp = self.path.with_extension("wal-compact");
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, &self.path)?;
        // The handle followed the inode through the rename: it now *is*
        // the live log file, positioned at its end.
        inner.file = file;
        inner.since_fsync = 0;
        self.bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Snapshot of the journal's counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.appends.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            append_errors: self.append_errors.load(Ordering::Relaxed),
        }
    }

    /// Clone of the replay state implied by everything appended so far.
    pub fn state(&self) -> ReplayState {
        self.inner.lock().expect("wal lock poisoned").state.clone()
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read and decode a changeset log without opening it for append. Never
/// errors on a torn tail — the intact prefix and the tail verdict come
/// back; only genuine I/O failures (missing file, bad permissions) error.
pub fn read_log(path: &Path) -> std::io::Result<(Vec<ChangeRecord>, LogTail)> {
    let buf = std::fs::read(path)?;
    Ok(decode_records(&buf))
}

/// A tenant-scoped handle on the shared journal: what the commit pipeline
/// actually holds. Cloneable and cheap; every helper is one append.
#[derive(Clone)]
pub struct TenantJournal {
    tenant: Arc<str>,
    journal: Arc<WalJournal>,
}

impl std::fmt::Debug for TenantJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantJournal")
            .field("tenant", &self.tenant)
            .finish_non_exhaustive()
    }
}

impl TenantJournal {
    /// Scope `journal` to one tenant.
    pub fn new(journal: Arc<WalJournal>, tenant: &str) -> Self {
        TenantJournal {
            tenant: Arc::from(tenant),
            journal,
        }
    }

    /// The underlying shared journal.
    pub fn journal(&self) -> &Arc<WalJournal> {
        &self.journal
    }

    /// Journal the tenant's registration.
    pub fn open(&self) {
        self.journal.append(&self.tenant, ChangeOp::TenantOpen);
    }

    /// Journal the tenant's deregistration and force it to disk.
    pub fn close(&self) {
        self.journal.append(&self.tenant, ChangeOp::TenantClose);
        self.journal.sync();
    }

    /// Journal one validated commit.
    pub fn commit(&self, request: &Request, route: &Route) {
        self.journal.append(
            &self.tenant,
            ChangeOp::Commit {
                request: *request,
                route: route.clone(),
            },
        );
    }

    /// Journal a cancel of a committed route.
    pub fn cancel(&self, id: RequestId) {
        self.journal.append(&self.tenant, ChangeOp::Cancel { id });
    }

    /// Journal a clock advance: first any route revisions the planner
    /// produced (windowed TWP/RP repairs), then the advance itself, which
    /// implies batched retirement of routes ending before `now`.
    pub fn advance(&self, now: Time, revisions: &[(RequestId, Route)]) {
        for (id, route) in revisions {
            self.journal.append(
                &self.tenant,
                ChangeOp::Revise {
                    id: *id,
                    route: route.clone(),
                },
            );
        }
        self.journal.append(&self.tenant, ChangeOp::Advance { now });
    }
}
