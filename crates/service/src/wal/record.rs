//! Changeset records: the on-disk unit of the durable log.
//!
//! Every state transition the daemon commits — route adoptions, cancels,
//! clock advances (batched retirement), windowed route revisions, tenant
//! lifecycle — is one length-prefixed record:
//!
//! ```text
//!  offset  size  field
//!       0     4  payload length (LE u32), ≤ MAX_RECORD
//!       4     4  CRC-32 (IEEE) of the payload (LE u32)
//!       8     …  payload
//! ```
//!
//! The payload reuses the wire codec discipline
//! ([`crate::wire::codec`]): `u64 seq · u8 kind · str16 tenant ·
//! kind-specific body`. Sequence numbers are strictly monotonic across the
//! whole log (all tenants share one sequence), which is what lets a
//! standby total-order replay a multi-tenant day.
//!
//! Decoding is deliberately forgiving at the *tail* and strict everywhere
//! else: a record that fails its length bound, CRC, schema, or sequence
//! check ends the readable prefix — the decoder returns every record
//! before it plus a [`LogTail::Torn`] marker, never an error and never a
//! panic. A crash mid-append therefore costs at most the record being
//! written (pinned by the torn-tail fuzz suite, mirroring the wire codec
//! tests).

use crate::wire::codec::{Reader, Writer};
use crate::wire::WireError;
use carp_warehouse::request::{QueryKind, Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::types::{Cell, Time};
use std::collections::BTreeMap;

/// Bytes in the fixed record header (length + CRC).
pub const RECORD_HEADER_LEN: usize = 8;
/// Upper bound on a record payload; same rationale as the wire layer's
/// `MAX_PAYLOAD` — anything bigger is a corrupt length field.
pub const MAX_RECORD: u32 = 16 * 1024 * 1024;

/// CRC-32 (IEEE 802.3 polynomial, reflected) — the same checksum gzip and
/// PNG use. Bitwise implementation: the log appends at commit cadence, not
/// packet cadence, so a lookup table buys nothing measurable.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One tenant's planning state as captured by a snapshot record: the
/// replay-relevant residue of every record up to the snapshot point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantSnapshot {
    /// Simulated clock at the snapshot (last `Advance` applied).
    pub now: Time,
    /// Active (committed, not yet retired/cancelled) routes with the
    /// requests that produced them.
    pub active: BTreeMap<RequestId, (Request, Route)>,
    /// Total commits journaled for this tenant.
    pub committed: u64,
    /// Total cancels journaled.
    pub cancelled: u64,
    /// Total route revisions journaled.
    pub revised: u64,
    /// Routes retired by clock advances.
    pub retired: u64,
}

/// A full-state snapshot: per-tenant [`TenantSnapshot`]s. Written as a
/// [`ChangeOp::Snapshot`] record at the head of a compacted log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalSnapshot {
    /// Leadership epoch in force at the snapshot point — compaction must
    /// not lose a fencing bump that preceded it.
    pub epoch: u64,
    /// State of every open tenant, keyed by tenant id.
    pub tenants: BTreeMap<String, TenantSnapshot>,
}

impl Default for WalSnapshot {
    fn default() -> Self {
        WalSnapshot {
            epoch: 1,
            tenants: BTreeMap::new(),
        }
    }
}

/// The state transition a record carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChangeOp {
    /// A tenant was registered (or re-opened by a standby takeover).
    TenantOpen,
    /// A tenant was deregistered; its planner state is dead.
    TenantClose,
    /// A route passed the single validate-and-commit point.
    Commit {
        /// The admitted request.
        request: Request,
        /// The committed route.
        route: Route,
    },
    /// A committed route was cancelled before completion.
    Cancel {
        /// Id of the cancelled request.
        id: RequestId,
    },
    /// The tenant's clock advanced; implies batched retirement of every
    /// active route with `end_time() < now`.
    Advance {
        /// The new simulated time.
        now: Time,
    },
    /// A windowed planner revised a committed route in place (TWP/RP
    /// repair rounds). Replaces the route under `id`.
    Revise {
        /// Id of the revised request.
        id: RequestId,
        /// The replacement route.
        route: Route,
    },
    /// A compaction snapshot: replaces all preceding history.
    Snapshot(WalSnapshot),
    /// A leadership epoch bump: every later append is made under this
    /// epoch. A standby writes one at takeover; appends stamped with an
    /// older epoch are fenced off (refused) from then on.
    Epoch(u64),
}

impl ChangeOp {
    fn kind_tag(&self) -> u8 {
        match self {
            ChangeOp::TenantOpen => 1,
            ChangeOp::TenantClose => 2,
            ChangeOp::Commit { .. } => 3,
            ChangeOp::Cancel { .. } => 4,
            ChangeOp::Advance { .. } => 5,
            ChangeOp::Revise { .. } => 6,
            ChangeOp::Snapshot(_) => 7,
            ChangeOp::Epoch(_) => 8,
        }
    }
}

/// One decoded log record: a sequence number, the tenant it belongs to
/// (empty for [`ChangeOp::Snapshot`], which spans tenants), and the op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeRecord {
    /// Strictly monotonic sequence number (log-wide, 1-based).
    pub seq: u64,
    /// Owning tenant id; empty for snapshot records.
    pub tenant: String,
    /// The state transition.
    pub op: ChangeOp,
}

/// How a log read ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogTail {
    /// The log ended exactly at a record boundary.
    Clean,
    /// The log ended mid-record (crash during an append) or the tail
    /// failed CRC/schema/sequence validation: everything before
    /// `valid_bytes` decoded, `dropped_bytes` were discarded.
    Torn {
        /// Bytes of intact prefix (a safe truncation point).
        valid_bytes: u64,
        /// Bytes beyond the intact prefix.
        dropped_bytes: u64,
    },
}

fn put_cell(w: &mut Writer, c: Cell) {
    w.put_u16(c.row);
    w.put_u16(c.col);
}

fn get_cell(r: &mut Reader<'_>) -> Result<Cell, WireError> {
    Ok(Cell::new(r.u16()?, r.u16()?))
}

fn put_request(w: &mut Writer, q: &Request) {
    w.put_u64(q.id);
    w.put_u32(q.t);
    put_cell(w, q.origin);
    put_cell(w, q.destination);
    w.put_u8(match q.kind {
        QueryKind::Pickup => 0,
        QueryKind::Transmission => 1,
        QueryKind::Return => 2,
    });
}

fn get_request(r: &mut Reader<'_>) -> Result<Request, WireError> {
    let id = r.u64()?;
    let t = r.u32()?;
    let origin = get_cell(r)?;
    let destination = get_cell(r)?;
    let kind = match r.u8()? {
        0 => QueryKind::Pickup,
        1 => QueryKind::Transmission,
        2 => QueryKind::Return,
        _ => return Err(WireError::Malformed("unknown query kind")),
    };
    Ok(Request::new(id, t, origin, destination, kind))
}

fn put_route(w: &mut Writer, route: &Route) {
    w.put_u32(route.start);
    w.put_u32(route.grids.len() as u32);
    for &g in &route.grids {
        put_cell(w, g);
    }
}

fn get_route(r: &mut Reader<'_>) -> Result<Route, WireError> {
    let start = r.u32()?;
    let n = r.u32()? as usize;
    if n == 0 {
        return Err(WireError::Malformed("empty route"));
    }
    if n > r.remaining() / 4 {
        return Err(WireError::Malformed("route length exceeds payload"));
    }
    let mut grids = Vec::with_capacity(n);
    for _ in 0..n {
        grids.push(get_cell(r)?);
    }
    Ok(Route::new(start, grids))
}

fn put_snapshot(w: &mut Writer, snap: &WalSnapshot) {
    w.put_u64(snap.epoch);
    w.put_u32(snap.tenants.len() as u32);
    for (tenant, st) in &snap.tenants {
        w.put_str16(tenant);
        w.put_u32(st.now);
        w.put_u64(st.committed);
        w.put_u64(st.cancelled);
        w.put_u64(st.revised);
        w.put_u64(st.retired);
        w.put_u32(st.active.len() as u32);
        for (req, route) in st.active.values() {
            put_request(w, req);
            put_route(w, route);
        }
    }
}

fn get_snapshot(r: &mut Reader<'_>) -> Result<WalSnapshot, WireError> {
    let epoch = r.u64()?;
    if epoch == 0 {
        return Err(WireError::Malformed("snapshot epoch zero"));
    }
    let ntenants = r.u32()? as usize;
    let mut tenants = BTreeMap::new();
    for _ in 0..ntenants {
        let tenant = r.str16()?.to_string();
        let mut st = TenantSnapshot {
            now: r.u32()?,
            committed: r.u64()?,
            cancelled: r.u64()?,
            revised: r.u64()?,
            retired: r.u64()?,
            ..TenantSnapshot::default()
        };
        let nactive = r.u32()? as usize;
        for _ in 0..nactive {
            let req = get_request(r)?;
            let route = get_route(r)?;
            st.active.insert(req.id, (req, route));
        }
        if tenants.insert(tenant, st).is_some() {
            return Err(WireError::Malformed("duplicate tenant in snapshot"));
        }
    }
    Ok(WalSnapshot { epoch, tenants })
}

/// Encode one record (header + payload) into a fresh buffer.
pub fn encode_record(rec: &ChangeRecord) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(rec.seq);
    w.put_u8(rec.op.kind_tag());
    w.put_str16(&rec.tenant);
    match &rec.op {
        ChangeOp::TenantOpen | ChangeOp::TenantClose => {}
        ChangeOp::Commit { request, route } => {
            put_request(&mut w, request);
            put_route(&mut w, route);
        }
        ChangeOp::Cancel { id } => w.put_u64(*id),
        ChangeOp::Advance { now } => w.put_u32(*now),
        ChangeOp::Revise { id, route } => {
            w.put_u64(*id);
            put_route(&mut w, route);
        }
        ChangeOp::Snapshot(snap) => put_snapshot(&mut w, snap),
        ChangeOp::Epoch(epoch) => w.put_u64(*epoch),
    }
    let payload = w.into_inner();
    debug_assert!(payload.len() as u32 <= MAX_RECORD);
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_payload(payload: &[u8]) -> Result<ChangeRecord, WireError> {
    let mut r = Reader::new(payload);
    let seq = r.u64()?;
    let kind = r.u8()?;
    let tenant = r.str16()?.to_string();
    let op = match kind {
        1 => ChangeOp::TenantOpen,
        2 => ChangeOp::TenantClose,
        3 => {
            let request = get_request(&mut r)?;
            let route = get_route(&mut r)?;
            ChangeOp::Commit { request, route }
        }
        4 => ChangeOp::Cancel { id: r.u64()? },
        5 => ChangeOp::Advance { now: r.u32()? },
        6 => {
            let id = r.u64()?;
            let route = get_route(&mut r)?;
            ChangeOp::Revise { id, route }
        }
        7 => ChangeOp::Snapshot(get_snapshot(&mut r)?),
        8 => {
            let epoch = r.u64()?;
            if epoch == 0 {
                return Err(WireError::Malformed("epoch zero"));
            }
            ChangeOp::Epoch(epoch)
        }
        _ => return Err(WireError::Malformed("unknown record kind")),
    };
    r.done()?;
    Ok(ChangeRecord { seq, tenant, op })
}

/// Decode a log image into its intact record prefix.
///
/// Never errors, never panics: any defect — truncated header or payload,
/// length field over [`MAX_RECORD`], CRC mismatch, schema violation,
/// non-monotonic sequence number — ends the readable prefix there, and the
/// byte counts come back in [`LogTail::Torn`] so the caller can truncate
/// before resuming appends.
pub fn decode_records(buf: &[u8]) -> (Vec<ChangeRecord>, LogTail) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut last_seq = 0u64;
    while offset < buf.len() {
        let Some(rest) = buf.get(offset..) else { break };
        if rest.len() < RECORD_HEADER_LEN {
            break; // torn header
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("len 4"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("len 4"));
        if len > MAX_RECORD {
            break; // corrupt length field
        }
        let end = RECORD_HEADER_LEN + len as usize;
        if rest.len() < end {
            break; // torn payload
        }
        let payload = &rest[RECORD_HEADER_LEN..end];
        if crc32(payload) != crc {
            break; // bit rot or torn overwrite
        }
        let Ok(rec) = decode_payload(payload) else {
            break; // schema violation
        };
        if rec.seq <= last_seq {
            break; // sequence went backwards: stale bytes past a rewrite
        }
        last_seq = rec.seq;
        records.push(rec);
        offset += end;
    }
    let tail = if offset == buf.len() {
        LogTail::Clean
    } else {
        LogTail::Torn {
            valid_bytes: offset as u64,
            dropped_bytes: (buf.len() - offset) as u64,
        }
    };
    (records, tail)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_route() -> Route {
        Route::new(3, vec![Cell::new(1, 1), Cell::new(1, 2), Cell::new(2, 2)])
    }

    fn sample_records() -> Vec<ChangeRecord> {
        let req = Request::new(7, 3, Cell::new(1, 1), Cell::new(2, 2), QueryKind::Pickup);
        vec![
            ChangeRecord {
                seq: 1,
                tenant: "acme".into(),
                op: ChangeOp::TenantOpen,
            },
            ChangeRecord {
                seq: 2,
                tenant: "acme".into(),
                op: ChangeOp::Commit {
                    request: req,
                    route: sample_route(),
                },
            },
            ChangeRecord {
                seq: 3,
                tenant: "acme".into(),
                op: ChangeOp::Revise {
                    id: 7,
                    route: sample_route(),
                },
            },
            ChangeRecord {
                seq: 4,
                tenant: "acme".into(),
                op: ChangeOp::Advance { now: 9 },
            },
            ChangeRecord {
                seq: 5,
                tenant: "acme".into(),
                op: ChangeOp::Cancel { id: 7 },
            },
            ChangeRecord {
                seq: 6,
                tenant: "acme".into(),
                op: ChangeOp::TenantClose,
            },
            ChangeRecord {
                seq: 7,
                tenant: String::new(),
                op: ChangeOp::Epoch(2),
            },
        ]
    }

    #[test]
    fn records_round_trip() {
        let recs = sample_records();
        let mut buf = Vec::new();
        for r in &recs {
            buf.extend_from_slice(&encode_record(r));
        }
        let (got, tail) = decode_records(&buf);
        assert_eq!(tail, LogTail::Clean);
        assert_eq!(got, recs);
    }

    #[test]
    fn snapshot_round_trips() {
        let req = Request::new(9, 0, Cell::new(0, 0), Cell::new(1, 0), QueryKind::Return);
        let mut snap = WalSnapshot {
            epoch: 3,
            ..WalSnapshot::default()
        };
        let mut st = TenantSnapshot {
            now: 12,
            committed: 3,
            cancelled: 1,
            revised: 2,
            retired: 1,
            ..TenantSnapshot::default()
        };
        st.active.insert(9, (req, sample_route()));
        snap.tenants.insert("w".into(), st);
        let rec = ChangeRecord {
            seq: 42,
            tenant: String::new(),
            op: ChangeOp::Snapshot(snap),
        };
        let buf = encode_record(&rec);
        let (got, tail) = decode_records(&buf);
        assert_eq!(tail, LogTail::Clean);
        assert_eq!(got, vec![rec]);
    }

    #[test]
    fn every_truncation_point_recovers_the_prefix() {
        let recs = sample_records();
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &recs {
            buf.extend_from_slice(&encode_record(r));
            boundaries.push(buf.len());
        }
        for cut in 0..buf.len() {
            let (got, tail) = decode_records(&buf[..cut]);
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(got.len(), whole, "cut at {cut}");
            assert_eq!(&got[..], &recs[..whole]);
            if boundaries.contains(&cut) {
                assert_eq!(tail, LogTail::Clean);
            } else {
                let valid = boundaries[whole] as u64;
                assert_eq!(
                    tail,
                    LogTail::Torn {
                        valid_bytes: valid,
                        dropped_bytes: cut as u64 - valid,
                    }
                );
            }
        }
    }

    #[test]
    fn crc_flip_drops_tail_not_head() {
        let recs = sample_records();
        let mut buf = Vec::new();
        buf.extend_from_slice(&encode_record(&recs[0]));
        let first = buf.len();
        buf.extend_from_slice(&encode_record(&recs[1]));
        // Flip a payload byte of the second record.
        let pos = first + RECORD_HEADER_LEN + 2;
        buf[pos] ^= 0x40;
        let (got, tail) = decode_records(&buf);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], recs[0]);
        assert_eq!(
            tail,
            LogTail::Torn {
                valid_bytes: first as u64,
                dropped_bytes: (buf.len() - first) as u64,
            }
        );
    }

    #[test]
    fn non_monotonic_seq_ends_the_prefix() {
        let mut a = sample_records()[0].clone();
        a.seq = 5;
        let mut b = sample_records()[0].clone();
        b.seq = 5; // repeat: must be rejected
        let mut buf = encode_record(&a);
        buf.extend_from_slice(&encode_record(&b));
        let (got, tail) = decode_records(&buf);
        assert_eq!(got.len(), 1);
        assert!(matches!(tail, LogTail::Torn { .. }));
    }
}
