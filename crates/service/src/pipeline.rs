//! The speculative plan/validate/commit pipeline behind
//! [`PlanningService::spawn_speculative`](crate::service::PlanningService::spawn_speculative).
//!
//! ```text
//!              ┌─ spec worker 0 ─┐  plan_candidate() on a replica
//!  bounded ───▶│  spec worker 1  │──▶ results (keyed by admission seq)
//!  queue       └─ spec worker N ─┘          │
//!                     ▲  replay op log      ▼ strictly in seq order
//!                     └───────────── commit stage: validate against the
//!                                    audited committed set, adopt winners,
//!                                    requeue losers (bounded retries)
//! ```
//!
//! The commit stage is the linearization point of Definition 3: it owns the
//! authoritative planner and an [`IncrementalAuditor`] holding every active
//! committed route, and processes admission sequence numbers **in order**.
//! A candidate planned against a stale replica either (a) validates clean
//! against the routes committed since its snapshot epoch and commits as-is
//! — under the planners' monotone tie-breaking this is bit-identical to
//! what a serial planner would have produced — or (b) is refused by the
//! auditor and requeued for replan with a bounded retry budget, falling
//! back to an inline replan on the authoritative planner when the budget is
//! exhausted. Either way, a fixed request stream produces the same
//! committed routes at any worker count (DESIGN.md §13).
//!
//! Replicas track the committed state by replaying the commit stage's
//! **op log** — an append-only sequence of adopt/cancel/advance/revise
//! operations
//! whose length is the *epoch*. The commit stage is the log's sole
//! appender, so an epoch fully identifies a committed state, and a worker's
//! snapshot epoch tells the validator exactly which commits the candidate
//! has not seen (the same delta-sync idea as coordination-free replicated
//! DAGs: replicas converge by exchanging operations, conflicts resolve by
//! a deterministic order — here, admission sequence).

use crate::service::{record_turnaround, Control, Envelope, PlanResponse, ReplySender, Shared};
use carp_warehouse::collision::IncrementalAuditor;
use carp_warehouse::planner::{CancelToken, PlanOutcome, SpeculativePlanner};
use carp_warehouse::request::{Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::types::Time;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::Ordering;
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// One committed-state mutation, replayed by worker replicas.
pub(crate) enum EpochOp {
    /// A validated route was committed for `RequestId`.
    Adopt(RequestId, Route),
    /// A committed route was cancelled (task aborted).
    Cancel(RequestId),
    /// Simulated time advanced; finished routes retire.
    Advance(Time),
    /// A committed route was revised in place by the authoritative
    /// planner's `advance` (windowed TWP/RP repair rounds). Replicas
    /// replay it as cancel + adopt. Revisions in one advance batch must be
    /// sequentially consistent: each new route may not conflict with the
    /// routes still awaiting their own revision — the natural shape of a
    /// repair round that rewrites routes one at a time.
    Revise(RequestId, Route),
}

/// Append-only op log; its length is the epoch. The commit stage is the
/// sole appender, so `len()` observed under the read lock identifies an
/// exact committed state.
#[derive(Default)]
pub(crate) struct OpLog {
    ops: RwLock<Vec<EpochOp>>,
}

impl OpLog {
    /// Current epoch (number of ops ever appended).
    pub(crate) fn len(&self) -> usize {
        self.ops.read().expect("op log lock").len()
    }

    /// Append one op (commit stage only).
    pub(crate) fn append(&self, op: EpochOp) {
        self.ops.write().expect("op log lock").push(op);
    }

    /// Replay all ops past `applied` into `replica`; returns the epoch the
    /// replica is synced to (and updates `applied` to match).
    ///
    /// `horizon` is the start time of the request about to be planned.
    /// Adopts whose route already finished strictly before it are skipped:
    /// a search starting at `t` is never constrained by reservations that
    /// end before `t`, and the authoritative planner retires exactly those
    /// routes on `advance(t)` (`end < now`), so the skip replays the same
    /// state a serial planner holds after retirement — it just avoids
    /// paying an adopt per worker for every route in the day's history.
    pub(crate) fn sync<P: SpeculativePlanner>(
        &self,
        replica: &mut P,
        applied: &mut usize,
        horizon: Time,
    ) -> usize {
        let ops = self.ops.read().expect("op log lock");
        for op in &ops[*applied..] {
            match op {
                EpochOp::Adopt(id, route) => {
                    if route.end_time() >= horizon {
                        replica.adopt(*id, route);
                    }
                }
                EpochOp::Cancel(id) => {
                    replica.cancel(*id);
                }
                EpochOp::Advance(now) => {
                    // A windowed-TWP/RP-style planner may propose revisions
                    // here; the replica's own proposals are discarded — the
                    // authoritative routes arrive as the `Revise` ops the
                    // commit stage appended right after this `Advance`, and
                    // those cancel + re-adopt over whatever the replica did.
                    let _own = replica.advance(*now);
                }
                EpochOp::Revise(id, route) => {
                    replica.cancel(*id);
                    // Same horizon skip as `Adopt`: a revision that already
                    // finished before the request being planned cannot
                    // constrain its search.
                    if route.end_time() >= horizon {
                        replica.adopt(*id, route);
                    }
                }
            }
        }
        *applied = ops.len();
        *applied
    }
}

/// What a speculative worker produced for one envelope.
pub(crate) enum SpecOutcome {
    /// A candidate route, planned against the replica at the snapshot
    /// epoch but **not committed** anywhere.
    Planned(Route),
    /// No route found at the snapshot epoch.
    Infeasible,
    /// The worker's deadline token fired mid-search: the candidate search
    /// was abandoned, so "no route" is a budget verdict, not a feasibility
    /// one. Refused as a deadline overrun without retry.
    Overrun,
    /// The request blew its deadline while queued; never planned.
    Shed,
    /// The worker panicked while planning this request.
    Died,
}

/// A worker's answer for one admission sequence number, consumed by the
/// commit stage strictly in `seq` order.
pub(crate) struct SpecResult {
    pub(crate) seq: u64,
    pub(crate) attempt: u32,
    /// Epoch the planning replica was synced to when the candidate was
    /// planned; commits appended after it are what validation re-checks.
    pub(crate) snapshot_epoch: usize,
    pub(crate) request: Request,
    pub(crate) enqueued_at: Instant,
    pub(crate) reply: ReplySender<PlanResponse>,
    pub(crate) outcome: SpecOutcome,
}

fn post_result(shared: &Shared, result: SpecResult) {
    {
        // Recover a poisoned lock: this also runs from a panic-unwind drop,
        // where a second panic would abort the process. The queue state is
        // a plain collection — no invariant is torn by a poisoning panic.
        let mut st = match shared.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        st.results.insert(result.seq, result);
    }
    shared.commit_cv.notify_all();
}

/// Posts a [`SpecOutcome::Died`] result if the worker unwinds before
/// disarming — the commit stage then answers `ServiceDied` for that one
/// request instead of stranding its ticket and every later seq forever.
struct PanicGuard<'a> {
    shared: &'a Shared,
    slot: Option<SpecResult>,
}

impl PanicGuard<'_> {
    fn disarm(mut self) -> SpecResult {
        self.slot.take().expect("guard disarmed twice")
    }
}

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if let Some(result) = self.slot.take() {
            post_result(self.shared, result);
        }
    }
}

/// Speculative planner worker: pops envelopes, keeps its replica synced to
/// the op log, plans candidates, posts results keyed by admission seq.
pub(crate) fn worker_loop<P: SpeculativePlanner>(
    mut replica: P,
    shared: Arc<Shared>,
    oplog: Arc<OpLog>,
) {
    let mut applied = 0usize;
    loop {
        let env: Option<Envelope> = {
            let mut st = shared.state.lock().expect("service lock");
            loop {
                if let Some(env) = st.plan.pop_front() {
                    break Some(env);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.wakeup.wait(st).expect("service lock");
            }
        };
        let Some(env) = env else { return };
        shared.counters.in_flight.fetch_add(1, Ordering::Relaxed);

        // Shed before planning (same rule as the serial worker): a request
        // that blew its budget queueing gets no planner time.
        if let Some(d) = shared.config.deadline {
            if env.enqueued_at.elapsed() > d {
                post_result(
                    &shared,
                    SpecResult {
                        seq: env.seq,
                        attempt: env.attempt,
                        snapshot_epoch: applied,
                        request: env.request,
                        enqueued_at: env.enqueued_at,
                        reply: env.reply,
                        outcome: SpecOutcome::Shed,
                    },
                );
                continue;
            }
        }
        shared
            .queue_hist
            .lock()
            .expect("hist lock")
            .record(env.enqueued_at.elapsed());

        let snapshot_epoch = oplog.sync(&mut replica, &mut applied, env.request.t);
        let guard = PanicGuard {
            shared: &shared,
            slot: Some(SpecResult {
                seq: env.seq,
                attempt: env.attempt,
                snapshot_epoch,
                request: env.request,
                enqueued_at: env.enqueued_at,
                reply: env.reply.clone(),
                outcome: SpecOutcome::Died,
            }),
        };
        // Arm the replica with the request's remaining budget; a fired
        // token turns "no candidate" into an overrun, not an infeasibility.
        let token = shared
            .config
            .deadline
            .map(|d| CancelToken::with_deadline(env.enqueued_at + d));
        replica.arm_cancel(token.clone());
        let started = Instant::now();
        let candidate = replica.plan_candidate(&env.request);
        replica.arm_cancel(None);
        let mut result = guard.disarm();
        shared
            .planning_hist
            .lock()
            .expect("hist lock")
            .record(started.elapsed());
        result.outcome = match candidate {
            Some(route) => SpecOutcome::Planned(route),
            None if token.is_some_and(|t| t.fired()) => SpecOutcome::Overrun,
            None => SpecOutcome::Infeasible,
        };
        post_result(&shared, result);
    }
}

enum Work {
    Result(SpecResult),
    Ctl(Control),
    Stop,
}

/// The validate-and-commit stage: owns the authoritative planner and the
/// ground-truth auditor, consumes results strictly in admission-seq order.
pub(crate) fn committer_loop<P: SpeculativePlanner>(
    planner: P,
    shared: Arc<Shared>,
    oplog: Arc<OpLog>,
) -> P {
    CommitStage {
        planner,
        shared,
        oplog,
        auditor: IncrementalAuditor::default(),
        epoch_of: HashMap::new(),
        retire_q: BTreeSet::new(),
        next: 0,
    }
    .run()
}

struct CommitStage<P: SpeculativePlanner> {
    planner: P,
    shared: Arc<Shared>,
    oplog: Arc<OpLog>,
    /// Ground-truth occupancy of every active committed route; the
    /// validation oracle for stale candidates.
    auditor: IncrementalAuditor,
    /// Epoch at which each active route committed (op-log length after its
    /// adopt op) — attributes a validation conflict to a commit the
    /// candidate's snapshot could not have seen.
    epoch_of: HashMap<RequestId, usize>,
    /// Active routes keyed by end time, so `Advance(now)` retires audit
    /// entries in step with the planners (`end < now`, the same boundary
    /// as the planners' retirement).
    retire_q: BTreeSet<(Time, RequestId)>,
    /// Next admission sequence number to commit.
    next: u64,
}

impl<P: SpeculativePlanner> CommitStage<P> {
    fn run(mut self) -> P {
        loop {
            let work = {
                let mut st = self.shared.state.lock().expect("service lock");
                loop {
                    // Controls are admitted in seq order, so the front is
                    // the minimum control seq.
                    if st.control.front().is_some_and(|c| c.0 == self.next) {
                        let (_, c) = st.control.pop_front().expect("front checked");
                        break Work::Ctl(c);
                    }
                    if let Some(r) = st.results.remove(&self.next) {
                        break Work::Result(r);
                    }
                    if st.shutdown && self.next == st.admitted {
                        debug_assert!(
                            st.plan.is_empty() && st.control.is_empty() && st.results.is_empty(),
                            "all admitted seqs processed but queues non-empty"
                        );
                        break Work::Stop;
                    }
                    st = self.shared.commit_cv.wait(st).expect("service lock");
                }
            };
            match work {
                Work::Stop => {
                    debug_assert_eq!(
                        self.shared.counters.in_flight.load(Ordering::Relaxed),
                        0,
                        "in_flight gauge must drain to zero at shutdown"
                    );
                    return self.planner;
                }
                Work::Ctl(control) => self.handle_control(control),
                Work::Result(result) => self.handle_result(result),
            }
            if let Some(m) = self.planner.engine_metrics() {
                *self.shared.engine.lock().expect("engine lock") = Some(m);
            }
        }
    }

    fn handle_control(&mut self, control: Control) {
        self.shared
            .counters
            .in_flight
            .fetch_add(1, Ordering::Relaxed);
        match control {
            Control::Advance { now, reply } => {
                let revisions = self.planner.advance(now);
                // Windowed planners rewrite committed routes during
                // `advance`; mirror each rewrite into the audit oracle,
                // the retire queue, and the op log (replicas replay it as
                // cancel + adopt) so the serial contract keeps holding
                // for every route the planner now considers committed.
                for (id, route) in &revisions {
                    if let Some(old) = self.auditor.route(*id) {
                        self.retire_q.remove(&(old.end_time(), *id));
                    }
                    self.auditor.cancel(*id);
                    self.auditor
                        .commit(*id, route)
                        .expect("revised route conflicts with audited state");
                    self.retire_q.insert((route.end_time(), *id));
                    self.oplog.append(EpochOp::Revise(*id, route.clone()));
                    self.epoch_of.insert(*id, self.oplog.len());
                }
                while let Some(&(end, id)) = self.retire_q.first() {
                    if end >= now {
                        break;
                    }
                    self.retire_q.pop_first();
                    // A cancelled id may leave a stale retire entry; the
                    // auditor then refuses and nothing happens.
                    if self.auditor.retire(id) {
                        self.epoch_of.remove(&id);
                    }
                }
                self.oplog.append(EpochOp::Advance(now));
                if let Some(j) = &self.shared.journal {
                    j.advance(now, &revisions);
                }
                let _ = reply.send(revisions);
            }
            Control::Cancel { id, reply } => {
                let ok = self.planner.cancel(id);
                if ok {
                    self.auditor.cancel(id);
                    self.epoch_of.remove(&id);
                    self.oplog.append(EpochOp::Cancel(id));
                    if let Some(j) = &self.shared.journal {
                        j.cancel(id);
                    }
                }
                let _ = reply.send(ok);
            }
        }
        self.shared
            .counters
            .in_flight
            .fetch_sub(1, Ordering::Relaxed);
        self.next += 1;
    }

    fn handle_result(&mut self, result: SpecResult) {
        debug_assert_eq!(result.seq, self.next, "commit stage consumes in seq order");
        let SpecResult {
            attempt,
            snapshot_epoch,
            request,
            enqueued_at,
            reply,
            outcome,
            ..
        } = result;
        let c = &self.shared.counters;
        match outcome {
            SpecOutcome::Shed => {
                c.shed_deadline.fetch_add(1, Ordering::Relaxed);
                self.reply_final(reply, PlanResponse::DeadlineShed, enqueued_at);
            }
            SpecOutcome::Died => {
                self.reply_final(reply, PlanResponse::ServiceDied, enqueued_at);
            }
            SpecOutcome::Overrun => {
                c.cancelled_deadline.fetch_add(1, Ordering::Relaxed);
                self.reply_final(reply, PlanResponse::DeadlineOverrun, enqueued_at);
            }
            SpecOutcome::Infeasible => {
                if snapshot_epoch == self.oplog.len() {
                    // The replica saw the full committed state: the verdict
                    // is authoritative.
                    c.infeasible.fetch_add(1, Ordering::Relaxed);
                    self.reply_final(reply, PlanResponse::Infeasible, enqueued_at);
                } else {
                    // Stale: cancels/retirements since the snapshot may
                    // have freed capacity.
                    self.retry_or_abort(attempt, request, enqueued_at, reply);
                }
            }
            SpecOutcome::Planned(route) => {
                if self
                    .shared
                    .config
                    .deadline
                    .is_some_and(|d| enqueued_at.elapsed() > d)
                {
                    // The candidate was never committed anywhere, so unlike
                    // the serial worker there is nothing to cancel.
                    c.cancelled_deadline.fetch_add(1, Ordering::Relaxed);
                    self.reply_final(reply, PlanResponse::DeadlineOverrun, enqueued_at);
                    return;
                }
                let started = Instant::now();
                match self.auditor.commit(request.id, &route) {
                    Ok(()) => {
                        self.planner.adopt(request.id, &route);
                        self.oplog.append(EpochOp::Adopt(request.id, route.clone()));
                        self.epoch_of.insert(request.id, self.oplog.len());
                        self.retire_q.insert((route.end_time(), request.id));
                        if let Some(j) = &self.shared.journal {
                            j.commit(&request, &route);
                        }
                        c.speculation_wins.fetch_add(1, Ordering::Relaxed);
                        c.planned.fetch_add(1, Ordering::Relaxed);
                        self.shared
                            .commit_hist
                            .lock()
                            .expect("hist lock")
                            .record(started.elapsed());
                        self.reply_final(reply, PlanResponse::Planned(route), enqueued_at);
                    }
                    Err(conflict) => {
                        // The loser lost to a commit its snapshot had not
                        // seen — otherwise the planner emitted a route that
                        // conflicts with state it *did* see, a planner bug.
                        debug_assert!(
                            self.epoch_of
                                .get(&conflict.existing)
                                .is_none_or(|&e| e > snapshot_epoch),
                            "candidate for {} conflicts with pre-snapshot commit {}",
                            request.id,
                            conflict.existing
                        );
                        self.retry_or_abort(attempt, request, enqueued_at, reply);
                    }
                }
            }
        }
    }

    /// A candidate was invalidated: requeue it at the queue front for a
    /// fresh speculative attempt (workers are idle on this seq — the
    /// commit stage blocks until its retry lands, so the retry plans
    /// against the exact serial state), or — budget exhausted or workers
    /// shutting down — replan inline on the authoritative planner.
    fn retry_or_abort(
        &mut self,
        attempt: u32,
        request: Request,
        enqueued_at: Instant,
        reply: ReplySender<PlanResponse>,
    ) {
        let c = &self.shared.counters;
        if attempt < self.shared.config.speculation_retries {
            let requeued = {
                let mut st = self.shared.state.lock().expect("service lock");
                if st.shutdown {
                    // Workers drain the plan queue and exit on shutdown; a
                    // late requeue could strand the seq. Fall through to
                    // the inline replan instead.
                    false
                } else {
                    st.plan.push_front(Envelope {
                        seq: self.next,
                        attempt: attempt + 1,
                        request,
                        enqueued_at,
                        reply: reply.clone(),
                    });
                    true
                }
            };
            if requeued {
                c.speculation_retries.fetch_add(1, Ordering::Relaxed);
                // The worker re-adds when it re-dequeues the envelope.
                c.in_flight.fetch_sub(1, Ordering::Relaxed);
                self.shared.wakeup.notify_one();
                return; // `next` unchanged: we wait for the retry's result
            }
        }
        c.speculation_aborts.fetch_add(1, Ordering::Relaxed);
        let token = self
            .shared
            .config
            .deadline
            .map(|d| CancelToken::with_deadline(enqueued_at + d));
        self.planner.arm_cancel(token.clone());
        let started = Instant::now();
        let outcome = self.planner.plan(&request);
        self.planner.arm_cancel(None);
        self.shared
            .planning_hist
            .lock()
            .expect("hist lock")
            .record(started.elapsed());
        match outcome {
            PlanOutcome::Planned(route) => {
                if self
                    .shared
                    .config
                    .deadline
                    .is_some_and(|d| enqueued_at.elapsed() > d)
                {
                    // `plan` committed into the planner; release it.
                    self.planner.cancel(request.id);
                    c.cancelled_deadline.fetch_add(1, Ordering::Relaxed);
                    self.reply_final(reply, PlanResponse::DeadlineOverrun, enqueued_at);
                } else {
                    // The authoritative planner avoided every committed
                    // route, so the audit oracle must agree.
                    self.auditor
                        .commit(request.id, &route)
                        .expect("authoritative replan conflicts with audited state");
                    self.oplog.append(EpochOp::Adopt(request.id, route.clone()));
                    self.epoch_of.insert(request.id, self.oplog.len());
                    self.retire_q.insert((route.end_time(), request.id));
                    if let Some(j) = &self.shared.journal {
                        j.commit(&request, &route);
                    }
                    c.planned.fetch_add(1, Ordering::Relaxed);
                    self.reply_final(reply, PlanResponse::Planned(route), enqueued_at);
                }
            }
            PlanOutcome::Infeasible => {
                if token.is_some_and(|t| t.fired()) {
                    // The authoritative search was abandoned by the token,
                    // so this is a budget refusal, not a feasibility proof.
                    c.cancelled_deadline.fetch_add(1, Ordering::Relaxed);
                    self.reply_final(reply, PlanResponse::DeadlineOverrun, enqueued_at);
                } else {
                    c.infeasible.fetch_add(1, Ordering::Relaxed);
                    self.reply_final(reply, PlanResponse::Infeasible, enqueued_at);
                }
            }
        }
    }

    /// Answer the ticket, close out the seq, and advance the commit cursor.
    fn reply_final(
        &mut self,
        reply: ReplySender<PlanResponse>,
        response: PlanResponse,
        enqueued_at: Instant,
    ) {
        record_turnaround(&self.shared, enqueued_at);
        let _ = reply.send(response);
        self.shared
            .counters
            .in_flight
            .fetch_sub(1, Ordering::Relaxed);
        self.next += 1;
    }
}
