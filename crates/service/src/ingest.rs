//! The shared ingest front-end: routes framed requests to tenant queues.
//!
//! One [`serve_connection`] call services one client connection over any
//! `Read`/`Write` pair — the in-process [`duplex`] pipe in tests and
//! loadgen, a TCP stream under [`serve_tcp`]. Per connection there are
//! exactly two threads:
//!
//! * the **reader** (the calling thread) decodes frames in order. Submits
//!   are admitted into the addressed tenant's bounded queue and acked
//!   *synchronously, in frame order* — that single property is what pins
//!   admission order (and therefore each tenant's commit order and
//!   committed route set) to the order the client sent its submissions,
//!   making per-tenant backpressure (`SubmitAck::Backpressure` with a
//!   retry hint) an admission-control decision the client observes before
//!   its next frame. Control frames (advance / cancel / metrics) are
//!   answered inline the same way.
//! * the **reply pump** waits on plan tickets strictly in admission order
//!   and streams `PlanReply` frames back as the tenant's commit stage
//!   resolves them — so a slow plan never blocks the reader from admitting
//!   more work (that concurrency is what keeps a speculative worker pool
//!   fed through the wire).
//!
//! Both threads share the writer behind a mutex; frames are written
//! atomically, and the client demultiplexes acks from interleaved replies
//! by request id. Frame and byte counts are tallied on the addressed
//! tenant's [`WireTally`](crate::tenant::WireTally).

use crate::service::{SubmitError, Ticket};
use crate::tenant::{Tenant, TenantRegistry};
use crate::wire::frame::{frame_len, read_frame, write_frame, FrameKind, WireError};
use crate::wire::schema::{self, AckStatus, ErrorCode};
use carp_warehouse::request::RequestId;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Per-connection rate limit: a token bucket refilled continuously, spent
/// one token per inbound frame. A throttled submit is refused with
/// [`AckStatus::Throttled`] (carrying a retry hint), a throttled control
/// frame with an [`ErrorCode::Throttled`] error reply — a typed verdict
/// the client can back off on, instead of silent queue pressure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Bucket capacity: the largest instantaneous frame burst allowed.
    pub burst: u32,
    /// Sustained refill rate, frames per second.
    pub per_sec: f64,
}

impl RateLimit {
    /// Floor on the retry hint a throttled verdict carries. Right at a
    /// refill boundary the raw token deficit can round to a zero or
    /// near-zero duration, which a well-behaved client turns into
    /// `sleep(0)` — a hot spin against a daemon that is actively
    /// throttling it. One millisecond is far below any realistic refill
    /// interval, so the clamp never meaningfully over-delays a retry.
    pub const MIN_RETRY_AFTER: Duration = Duration::from_millis(1);
}

pub(crate) struct TokenBucket {
    limit: RateLimit,
    tokens: f64,
    refilled: Instant,
}

impl TokenBucket {
    pub(crate) fn new(limit: RateLimit) -> Self {
        TokenBucket {
            limit,
            tokens: f64::from(limit.burst),
            refilled: Instant::now(),
        }
    }

    /// Take one token, or say how long until one will have refilled.
    pub(crate) fn try_take(&mut self) -> Result<(), Duration> {
        let now = Instant::now();
        let refill = now.duration_since(self.refilled).as_secs_f64() * self.limit.per_sec;
        self.tokens = (self.tokens + refill).min(f64::from(self.limit.burst));
        self.refilled = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - self.tokens;
            // Clamped: a zero/near-zero hint at a refill boundary would
            // have the client spin-retry (see RateLimit::MIN_RETRY_AFTER).
            Err(
                Duration::from_secs_f64(deficit / self.limit.per_sec.max(1e-9))
                    .max(RateLimit::MIN_RETRY_AFTER),
            )
        }
    }
}

/// Serve one client connection until clean EOF (`Ok`) or a protocol /
/// transport error (`Err`). See the module docs for the thread model.
pub fn serve_connection<R: Read, W: Write + Send>(
    registry: &TenantRegistry,
    reader: R,
    writer: W,
) -> Result<(), WireError> {
    serve_connection_limited(registry, reader, writer, None)
}

/// [`serve_connection`] with an optional per-connection rate limit.
pub fn serve_connection_limited<R: Read, W: Write + Send>(
    registry: &TenantRegistry,
    mut reader: R,
    writer: W,
    limit: Option<RateLimit>,
) -> Result<(), WireError> {
    let writer = Arc::new(Mutex::new(writer));
    let (pump_tx, pump_rx) = mpsc::channel::<(Arc<Tenant>, RequestId, Ticket)>();
    let mut bucket = limit.map(TokenBucket::new);
    std::thread::scope(|scope| {
        let pump_writer = Arc::clone(&writer);
        let pump = scope.spawn(move || {
            while let Ok((tenant, rid, ticket)) = pump_rx.recv() {
                let response = ticket.wait();
                let payload = schema::encode_plan_reply(rid, &response);
                let mut w = pump_writer.lock().expect("wire writer lock");
                match write_frame(&mut *w, FrameKind::PlanReply, &payload) {
                    Ok(()) => tenant.wire().frame_sent(frame_len(payload.len())),
                    // Writer broken (client gone): keep draining tickets so
                    // every admitted request still resolves in the tenant.
                    Err(_) => tenant.wire().protocol_error(),
                }
            }
        });
        let outcome = read_loop(registry, &mut reader, &writer, &pump_tx, &mut bucket);
        drop(pump_tx);
        pump.join().expect("reply pump panicked");
        outcome
    })
}

/// Write one daemon → client frame, tallying it on `tenant` when known.
fn send<W: Write>(
    writer: &Mutex<W>,
    tenant: Option<&Tenant>,
    kind: FrameKind,
    payload: &[u8],
) -> Result<(), WireError> {
    let mut w = writer.lock().expect("wire writer lock");
    write_frame(&mut *w, kind, payload)?;
    if let Some(t) = tenant {
        t.wire().frame_sent(frame_len(payload.len()));
    }
    Ok(())
}

fn read_loop<R: Read, W: Write>(
    registry: &TenantRegistry,
    reader: &mut R,
    writer: &Mutex<W>,
    pump: &mpsc::Sender<(Arc<Tenant>, RequestId, Ticket)>,
    bucket: &mut Option<TokenBucket>,
) -> Result<(), WireError> {
    loop {
        let Some((kind, payload)) = read_frame(reader)? else {
            return Ok(()); // clean EOF at a frame boundary
        };
        // Rate limiting is per inbound frame, decided before any tenant
        // queue is consulted: a throttled frame costs the daemon only the
        // decode needed to address the refusal.
        if let Some(retry_after) = bucket.as_mut().and_then(|b| b.try_take().err()) {
            if kind == FrameKind::Submit {
                let (_tenant, request) = schema::decode_submit(&payload)?;
                let ack =
                    schema::encode_submit_ack(request.id, AckStatus::Throttled { retry_after });
                send(writer, None, FrameKind::SubmitAck, &ack)?;
            } else {
                let reply = schema::encode_error_reply(
                    ErrorCode::Throttled,
                    "connection rate limit exceeded",
                );
                send(writer, None, FrameKind::ErrorReply, &reply)?;
            }
            continue;
        }
        let wire_bytes = frame_len(payload.len());
        match kind {
            FrameKind::Submit => {
                let (tenant_id, request) = schema::decode_submit(&payload)?;
                let Some(tenant) = registry.get(tenant_id) else {
                    let ack = schema::encode_submit_ack(request.id, AckStatus::UnknownTenant);
                    send(writer, None, FrameKind::SubmitAck, &ack)?;
                    continue;
                };
                tenant.wire().frame_received(wire_bytes);
                let status = match tenant.client().submit(request) {
                    Ok(ticket) => {
                        // Enqueue the ticket *before* acking: the pump
                        // resolves tickets in admission order either way,
                        // but this keeps "accepted" and "pending reply"
                        // atomic from the client's point of view.
                        pump.send((Arc::clone(&tenant), request.id, ticket))
                            .expect("reply pump outlives the reader");
                        AckStatus::Accepted
                    }
                    Err(SubmitError::Backpressure {
                        retry_after,
                        queue_depth,
                    }) => AckStatus::Backpressure {
                        retry_after,
                        queue_depth,
                    },
                    Err(SubmitError::ShuttingDown) => AckStatus::ShuttingDown,
                };
                let ack = schema::encode_submit_ack(request.id, status);
                send(writer, Some(&tenant), FrameKind::SubmitAck, &ack)?;
            }
            FrameKind::Advance => {
                let (tenant_id, now) = schema::decode_advance(&payload)?;
                let Some(tenant) = lookup(registry, tenant_id, writer)? else {
                    continue;
                };
                tenant.wire().frame_received(wire_bytes);
                let revisions = tenant.client().advance(now);
                let reply = schema::encode_advance_reply(&revisions);
                send(writer, Some(&tenant), FrameKind::AdvanceReply, &reply)?;
            }
            FrameKind::Cancel => {
                let (tenant_id, id) = schema::decode_cancel(&payload)?;
                let Some(tenant) = lookup(registry, tenant_id, writer)? else {
                    continue;
                };
                tenant.wire().frame_received(wire_bytes);
                let ok = tenant.client().cancel(id);
                send(
                    writer,
                    Some(&tenant),
                    FrameKind::CancelReply,
                    &schema::encode_cancel_reply(ok),
                )?;
            }
            FrameKind::MetricsQuery => {
                let tenant_id = schema::decode_metrics_query(&payload)?;
                let Some(tenant) = lookup(registry, tenant_id, writer)? else {
                    continue;
                };
                tenant.wire().frame_received(wire_bytes);
                let metrics = tenant.client().metrics();
                let wire = tenant.wire().snapshot();
                let reply = schema::encode_metrics_reply(&metrics, &wire);
                send(writer, Some(&tenant), FrameKind::MetricsReply, &reply)?;
            }
            // Log tailing is a long-lived push stream; only the mux
            // front-end can interleave pushes with request/reply traffic
            // without a dedicated thread per subscriber. The legacy
            // blocking path refuses the subscription with a typed error
            // and keeps the connection serving requests.
            FrameKind::TailLog => {
                let _from_seq = schema::decode_tail_log(&payload)?;
                let reply = schema::encode_error_reply(
                    ErrorCode::UnexpectedFrame,
                    "log tailing requires the event-loop front-end",
                );
                send(writer, None, FrameKind::ErrorReply, &reply)?;
            }
            // Reply kinds are daemon → client only; a client sending one
            // is confused but not fatal — answer with a typed error.
            FrameKind::SubmitAck
            | FrameKind::PlanReply
            | FrameKind::AdvanceReply
            | FrameKind::CancelReply
            | FrameKind::MetricsReply
            | FrameKind::ErrorReply
            | FrameKind::LogChunk => {
                let reply = schema::encode_error_reply(
                    ErrorCode::UnexpectedFrame,
                    "frame kind is daemon to client only",
                );
                send(writer, None, FrameKind::ErrorReply, &reply)?;
            }
        }
    }
}

/// Resolve a control frame's tenant, answering `ErrorReply` when unknown.
fn lookup<W: Write>(
    registry: &TenantRegistry,
    tenant_id: &str,
    writer: &Mutex<W>,
) -> Result<Option<Arc<Tenant>>, WireError> {
    match registry.get(tenant_id) {
        Some(t) => Ok(Some(t)),
        None => {
            let reply = schema::encode_error_reply(ErrorCode::UnknownTenant, tenant_id);
            send(writer, None, FrameKind::ErrorReply, &reply)?;
            Ok(None)
        }
    }
}

/// Accept TCP connections forever, serving each on its own thread. Returns
/// only when the listener itself fails; per-connection errors are printed
/// to stderr and drop that connection only.
pub fn serve_tcp(listener: TcpListener, registry: Arc<TenantRegistry>) -> std::io::Result<()> {
    serve_tcp_graceful(listener, registry, Arc::new(AtomicBool::new(false)), None)
}

/// [`serve_tcp`] with graceful shutdown and optional per-connection rate
/// limiting. The accept loop polls `shutdown` between accepts (the
/// listener runs non-blocking with a short sleep); once the flag is set it
/// stops accepting and returns `Ok(())` so the caller can drain tenants
/// ([`TenantRegistry::drain_all`](crate::tenant::TenantRegistry::drain_all)),
/// seal the changeset log, and exit cleanly. Connections already accepted
/// run to their own EOF on their own threads.
pub fn serve_tcp_graceful(
    listener: TcpListener,
    registry: Arc<TenantRegistry>,
    shutdown: Arc<AtomicBool>,
    limit: Option<RateLimit>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let (stream, peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        // Accepted sockets inherit non-blocking from the listener on some
        // platforms; connection threads want blocking reads.
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_nodelay(true);
        let registry = Arc::clone(&registry);
        std::thread::Builder::new()
            .name(format!("carp-ingest-{peer}"))
            .spawn(move || {
                let reader = match stream.try_clone() {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("carp-service: {peer}: clone failed: {e}");
                        return;
                    }
                };
                if let Err(e) = serve_connection_limited(&registry, reader, stream, limit) {
                    eprintln!("carp-service: {peer}: {e}");
                }
            })
            .expect("spawn ingest connection thread");
    }
}

/// Serve one connection on a TCP stream (reader/writer halves via
/// `try_clone`). Exposed for tests of the TCP path.
pub fn serve_tcp_connection(registry: &TenantRegistry, stream: TcpStream) -> Result<(), WireError> {
    let reader = stream.try_clone().map_err(WireError::from)?;
    serve_connection(registry, reader, stream)
}

// ------------------------------------------------------ in-process duplex

struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

type PipeShared = Arc<(Mutex<PipeState>, Condvar)>;

fn pipe() -> (PipeReader, PipeWriter) {
    let shared: PipeShared = Arc::new((
        Mutex::new(PipeState {
            buf: VecDeque::new(),
            closed: false,
        }),
        Condvar::new(),
    ));
    (
        PipeReader {
            shared: Arc::clone(&shared),
        },
        PipeWriter { shared },
    )
}

/// Read half of an in-process byte pipe; blocking, `Ok(0)` after the write
/// half closes and the buffer drains (standard EOF semantics).
pub struct PipeReader {
    shared: PipeShared,
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let (lock, cv) = &*self.shared;
        let mut st = lock.lock().expect("pipe lock");
        while st.buf.is_empty() && !st.closed {
            st = cv.wait(st).expect("pipe lock");
        }
        if st.buf.is_empty() {
            return Ok(0); // closed and drained: EOF
        }
        let n = st.buf.len().min(out.len());
        for slot in out.iter_mut().take(n) {
            *slot = st.buf.pop_front().expect("len checked");
        }
        Ok(n)
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        let (lock, cv) = &*self.shared;
        lock.lock().expect("pipe lock").closed = true;
        cv.notify_all();
    }
}

/// Write half of an in-process byte pipe; unbounded, never blocks.
pub struct PipeWriter {
    shared: PipeShared,
}

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        let (lock, cv) = &*self.shared;
        let mut st = lock.lock().expect("pipe lock");
        if st.closed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "pipe reader closed",
            ));
        }
        st.buf.extend(data);
        cv.notify_all();
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let (lock, cv) = &*self.shared;
        lock.lock().expect("pipe lock").closed = true;
        cv.notify_all();
    }
}

/// An in-process bidirectional byte transport: returns
/// `(client_half, server_half)`, each a `(reader, writer)` pair. The same
/// frames that cross a TCP socket cross this — loadgen and the conformance
/// tests exercise the full wire path without networking.
pub fn duplex() -> ((PipeReader, PipeWriter), (PipeReader, PipeWriter)) {
    let (server_read, client_write) = pipe(); // client → server
    let (client_read, server_write) = pipe(); // server → client
    ((client_read, client_write), (server_read, server_write))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_moves_bytes_both_ways_and_eofs() {
        let ((mut cr, mut cw), (mut sr, mut sw)) = duplex();
        cw.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        sr.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        sw.write_all(b"pong").unwrap();
        cr.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
        drop(cw);
        assert_eq!(sr.read(&mut buf).unwrap(), 0); // EOF after close
    }

    #[test]
    fn write_after_reader_drop_is_broken_pipe() {
        let ((cr, _cw), (_sr, mut sw)) = duplex();
        drop(cr);
        let err = sw.write_all(b"x").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
    }
}
