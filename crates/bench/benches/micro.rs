//! Criterion micro-benchmarks for the performance-critical kernels:
//!
//! * segment collision queries — naive ordered set (§V-B) vs slope index
//!   (§V-D), the micro version of Fig. 22(b);
//! * strip-graph construction (Algorithm 1, the Table II extraction);
//! * intra-strip backtracking (Algorithm 2);
//! * one end-to-end `plan()` call per planner on the W-1 preset with
//!   committed background traffic (the TC kernel of Figs. 16–18).

use carp_baselines::{AcpConfig, AcpPlanner, SapPlanner};
use carp_geometry::{NaiveStore, Segment, SegmentStore, SlopeIndexStore};
use carp_spacetime::AStarConfig;
use carp_srp::{IntraConfig, SrpConfig, SrpPlanner, StripGraph};
use carp_warehouse::layout::WarehousePreset;
use carp_warehouse::tasks::generate_requests;
use carp_warehouse::Planner;
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_segment(rng: &mut StdRng, t_span: u32, s_span: i32) -> Segment {
    let t0 = rng.gen_range(0..t_span);
    let s0 = rng.gen_range(0..s_span);
    match rng.gen_range(0..3) {
        0 => Segment::wait(t0, t0 + rng.gen_range(0..10u32), s0),
        1 => Segment::travel(t0, s0, rng.gen_range(s0..s_span)),
        _ => Segment::travel(t0, s0, rng.gen_range(0..=s0)),
    }
}

fn bench_collision_stores(c: &mut Criterion) {
    let mut group = c.benchmark_group("collision_query");
    for &n in &[100usize, 1000, 5000] {
        let mut rng = StdRng::seed_from_u64(42);
        let mut naive = NaiveStore::new();
        let mut index = SlopeIndexStore::new();
        for _ in 0..n {
            let s = random_segment(&mut rng, 2000, 60);
            naive.insert(s);
            index.insert(s);
        }
        let queries: Vec<Segment> = (0..256)
            .map(|_| random_segment(&mut rng, 2000, 60))
            .collect();
        group.bench_function(format!("naive/{n}"), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % queries.len();
                black_box(naive.earliest_collision(&queries[i]))
            })
        });
        group.bench_function(format!("slope_index/{n}"), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % queries.len();
                black_box(index.earliest_collision(&queries[i]))
            })
        });
    }
    group.finish();
}

fn bench_store_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_insert");
    let mut rng = StdRng::seed_from_u64(7);
    let segs: Vec<Segment> = (0..1000)
        .map(|_| random_segment(&mut rng, 2000, 60))
        .collect();
    group.bench_function("naive/1000", |b| {
        b.iter_batched(
            NaiveStore::new,
            |mut store| {
                for s in &segs {
                    store.insert(*s);
                }
                store
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("slope_index/1000", |b| {
        b.iter_batched(
            SlopeIndexStore::new,
            |mut store| {
                for s in &segs {
                    store.insert(*s);
                }
                store
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_strip_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("strip_graph_build");
    group.sample_size(20);
    for preset in WarehousePreset::ALL {
        let layout = preset.generate();
        group.bench_function(preset.name(), |b| {
            b.iter(|| black_box(StripGraph::build(&layout.matrix)))
        });
    }
    group.finish();
}

fn bench_intra(c: &mut Criterion) {
    let mut group = c.benchmark_group("intra_strip_plan");
    // A busy strip: 200 segments over a 100-grid strip.
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = SlopeIndexStore::new();
    for _ in 0..200 {
        store.insert(random_segment(&mut rng, 500, 100));
    }
    let cfg = IntraConfig::default();
    group.bench_function("busy_strip_200segs", |b| {
        let mut t = 0u32;
        b.iter(|| {
            t = (t + 7) % 400;
            black_box(carp_srp::intra::plan_within(&store, t, 0, 99, &cfg))
        })
    });
    group.finish();
}

fn bench_planner_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_one_request_w1");
    group.sample_size(30);
    let layout = WarehousePreset::W1.generate();
    let background = generate_requests(&layout, 300, 2.0, 11);
    let probes = generate_requests(&layout, 512, 2.0, 13);

    // Each planner carries committed background traffic; iterations run on
    // clones so state never accumulates across samples (clone time is
    // setup, excluded from the measurement).
    let srp = {
        let mut p = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
        for req in &background {
            p.plan(req);
        }
        p
    };
    let mut i = 0;
    group.bench_function("SRP", |b| {
        b.iter_batched(
            || srp.clone(),
            |mut p| {
                i = (i + 1) % probes.len();
                black_box(p.plan(&probes[i]))
            },
            BatchSize::LargeInput,
        )
    });

    let sap = {
        let mut p = SapPlanner::new(layout.matrix.clone(), AStarConfig::default());
        for req in &background {
            p.plan(req);
        }
        p
    };
    let mut i = 0;
    group.bench_function("SAP", |b| {
        b.iter_batched(
            || sap.clone(),
            |mut p| {
                i = (i + 1) % probes.len();
                black_box(p.plan(&probes[i]))
            },
            BatchSize::LargeInput,
        )
    });

    let acp = {
        let mut p = AcpPlanner::new(layout.matrix.clone(), AcpConfig::default());
        for req in &background {
            p.plan(req);
        }
        p
    };
    let mut i = 0;
    group.bench_function("ACP", |b| {
        b.iter_batched(
            || acp.clone(),
            |mut p| {
                i = (i + 1) % probes.len();
                black_box(p.plan(&probes[i]))
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_collision_stores,
    bench_store_insert,
    bench_strip_graph,
    bench_intra,
    bench_planner_plan
);
criterion_main!(benches);
