//! Batched frontier expansion vs one-edge-at-a-time relaxation in the
//! Phase-1 inter-strip search (the tentpole measurement of the batched
//! `relax_frontier_batch` refactor).
//!
//! The same W-2 request stream is planned from scratch under serial
//! (`frontier_batch = 1`, one engine thread) and batched
//! (`frontier_batch = 64`, auto threads) configurations at partition
//! counts {1, 4}. Before anything is timed the stream's outcomes are
//! diffed against the serial reference — the equivalence gate. A timing
//! regression is tuning noise; an equivalence failure is a determinism
//! bug and panics the bench even in `--test` quick mode.
//!
//! NOTE: the scoped-thread fan-out only engages when
//! `std::thread::available_parallelism` reports more than one core. On a
//! single-core host every configuration degrades to the serial path by
//! design, so the expected ≥1.5× gap at 4 partitions is observable only
//! on multi-core hardware (the CI perf job's artifact records it).
//!
//! Set `PARALLEL_SEARCH_OUT=/path/to.json` to dump the equivalence-run
//! timings as a small hand-formatted JSON artifact.

use carp_srp::{SrpConfig, SrpPlanner};
use carp_warehouse::layout::WarehousePreset;
use carp_warehouse::tasks::generate_requests;
use carp_warehouse::{PlanOutcome, Planner, Request, WarehouseMatrix};
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use std::time::{Duration, Instant};

const STREAM_LEN: usize = 200;

#[derive(Clone, Copy)]
struct Variant {
    label: &'static str,
    partitions: usize,
    frontier_batch: usize,
    /// `Some(1)` forces the serial engine; `None` lets the engine size its
    /// scoped-thread pool from the host.
    threads: Option<usize>,
}

const VARIANTS: [Variant; 4] = [
    Variant {
        label: "serial/partitions-1",
        partitions: 1,
        frontier_batch: 1,
        threads: Some(1),
    },
    Variant {
        label: "serial/partitions-4",
        partitions: 4,
        frontier_batch: 1,
        threads: Some(1),
    },
    Variant {
        label: "batched/partitions-1",
        partitions: 1,
        frontier_batch: 64,
        threads: None,
    },
    Variant {
        label: "batched/partitions-4",
        partitions: 4,
        frontier_batch: 64,
        threads: None,
    },
];

fn config_of(v: Variant) -> SrpConfig {
    SrpConfig {
        store_partitions: v.partitions,
        frontier_batch: v.frontier_batch,
        engine_threads: v.threads,
        ..SrpConfig::default()
    }
}

fn plan_stream(
    matrix: &WarehouseMatrix,
    requests: &[Request],
    config: SrpConfig,
) -> (Vec<PlanOutcome>, Duration) {
    let mut planner = SrpPlanner::new(matrix.clone(), config);
    let start = Instant::now();
    let outcomes = requests.iter().map(|r| planner.plan(r)).collect();
    (outcomes, start.elapsed())
}

fn write_artifact(path: &str, timings: &[(Variant, Duration)]) {
    let serial_s = timings[0].1.as_secs_f64();
    let entries: Vec<String> = timings
        .iter()
        .map(|(v, d)| {
            let s = d.as_secs_f64();
            format!(
                "    {{\"label\": \"{}\", \"partitions\": {}, \"frontier_batch\": {}, \
                 \"threads\": {}, \"seconds\": {s:.4}, \"speedup_vs_serial\": {:.3}}}",
                v.label,
                v.partitions,
                v.frontier_batch,
                v.threads.map_or("\"auto\"".into(), |t| t.to_string()),
                serial_s / s.max(1e-9),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"parallel_search\",\n  \"preset\": \"W-2\",\n  \
         \"requests\": {STREAM_LEN},\n  \"equivalence\": \"bit-identical\",\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(path, json).expect("parallel-search artifact written");
    println!("parallel_search: wrote {path}");
}

fn bench_parallel_search(c: &mut Criterion) {
    let layout = WarehousePreset::W2.generate();
    let requests = generate_requests(&layout, STREAM_LEN, 2.0, 31);

    // Equivalence gate: every variant must reproduce the serial reference
    // bit for bit before any timing is reported.
    let mut timings: Vec<(Variant, Duration)> = Vec::new();
    let mut reference: Option<Vec<PlanOutcome>> = None;
    for v in VARIANTS {
        let (outcomes, elapsed) = plan_stream(&layout.matrix, &requests, config_of(v));
        match &reference {
            None => reference = Some(outcomes),
            Some(r) => assert_eq!(
                r, &outcomes,
                "{}: batched search diverged from the serial reference",
                v.label
            ),
        }
        timings.push((v, elapsed));
    }
    if let Ok(path) = std::env::var("PARALLEL_SEARCH_OUT") {
        write_artifact(&path, &timings);
    }

    let mut group = c.benchmark_group("parallel_search_w2");
    group.sample_size(3);
    for v in VARIANTS {
        group.bench_function(v.label, |b| {
            b.iter_batched(
                || (),
                |()| black_box(plan_stream(&layout.matrix, &requests, config_of(v))),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_search);
criterion_main!(benches);
