//! Sharded vs serial segment-store engine (the tentpole measurement of the
//! `StoreEngine` refactor).
//!
//! One SRP planner per partition count {1, 2, 4, 8} commits the same W-2
//! background traffic — routes are bit-identical across counts, so every
//! engine holds the same segments — then batched earliest-collision probes
//! shaped like candidate routes (segments spanning many strips) are timed
//! through `StoreEngine::collide_many`. With `partitions = 1` the batch
//! runs serially; higher counts fan out across partition read locks on
//! scoped threads.
//!
//! NOTE: the fan-out only engages when `std::thread::available_parallelism`
//! reports more than one core. On a single-core host every partition count
//! degrades to the serial path by design (the gate that keeps sharding
//! from ever regressing), so the expected ≥1.5× gap at 4 partitions is
//! observable only on multi-core hardware.

use carp_srp::{SrpConfig, SrpPlanner};
use carp_warehouse::layout::WarehousePreset;
use carp_warehouse::tasks::generate_requests;
use carp_warehouse::Planner;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use carp_geometry::engine::ShardKey;
use carp_geometry::Segment;

/// A probe batch shaped like a candidate route's decomposition: segments
/// scattered over many strips, mixing waits and unit-slope travels.
fn probe_batch(num_strips: u32, len: usize, seed: u64) -> Vec<(ShardKey, Segment)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let strip = rng.gen_range(0..num_strips);
            let t0 = rng.gen_range(0..400u32);
            let s0 = rng.gen_range(0..40i32);
            let seg = match rng.gen_range(0..3) {
                0 => Segment::wait(t0, t0 + rng.gen_range(0..8u32), s0),
                1 => Segment::travel(t0, s0, s0 + rng.gen_range(0..12i32)),
                _ => Segment::travel(t0, s0 + rng.gen_range(0..12i32), s0),
            };
            (strip, seg)
        })
        .collect()
}

fn bench_sharded_vs_serial(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_vs_serial_w2");
    group.sample_size(20);
    let layout = WarehousePreset::W2.generate();
    let background = generate_requests(&layout, 600, 2.0, 17);

    // Serial reference answers, to pin bit-identical behavior across
    // partition counts before timing anything.
    let mut reference: Option<Vec<Option<carp_geometry::SegCollision>>> = None;

    for &parts in &[1usize, 2, 4, 8] {
        let config = SrpConfig {
            store_partitions: parts,
            ..SrpConfig::default()
        };
        let mut planner = SrpPlanner::new(layout.matrix.clone(), config);
        for req in &background {
            planner.plan(req);
        }
        let engine = planner.engine();
        let queries = probe_batch(planner.graph().num_vertices() as u32, 256, 23);
        let answers = engine.collide_many(&queries);
        match &reference {
            None => reference = Some(answers),
            Some(r) => assert_eq!(
                r, &answers,
                "partition count {parts} diverged from the serial engine"
            ),
        }
        group.bench_function(format!("partitions/{parts}"), |b| {
            b.iter(|| black_box(engine.collide_many(&queries)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_vs_serial);
criterion_main!(benches);
