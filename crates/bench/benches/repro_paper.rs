//! `cargo bench` entry point that regenerates every table and figure of the
//! paper at a reduced, rate-preserving scale, printing the same rows/series
//! the paper reports. This is a plain `harness = false` main, not a
//! statistical benchmark — the full-resolution version is the `repro`
//! binary (`cargo run --release -p carp-bench --bin repro -- all`).
//!
//! Scale/days are chosen so the whole run finishes in a few minutes; pass
//! `REPRO_SCALE` / `REPRO_DAYS` env vars to override.

use std::process::Command;

fn main() {
    // `cargo bench` passes harness flags (e.g. `--bench`); ignore them.
    let scale = std::env::var("REPRO_SCALE").unwrap_or_else(|_| "0.004".into());
    let days = std::env::var("REPRO_DAYS").unwrap_or_else(|_| "2".into());
    println!("repro_paper: regenerating all tables/figures (scale {scale}, days {days})");
    println!("(override with REPRO_SCALE / REPRO_DAYS env vars)\n");

    // Re-exec the repro binary so both paths share one implementation.
    let exe = std::env::current_exe().expect("bench exe path");
    // target/release/deps/repro_paper-... → target/release/repro
    let mut repro = exe.clone();
    repro.pop(); // deps/
    repro.pop(); // release/
    repro.push("repro");
    let status = if repro.exists() {
        Command::new(&repro)
            .args(["all", "--scale", &scale, "--days", &days])
            .status()
    } else {
        // Fall back to cargo when the binary has not been built yet.
        Command::new("cargo")
            .args([
                "run",
                "--release",
                "-p",
                "carp-bench",
                "--bin",
                "repro",
                "--",
                "all",
                "--scale",
                &scale,
                "--days",
                &days,
            ])
            .status()
    };
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("repro exited with {s}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("failed to launch repro: {e}");
            std::process::exit(1);
        }
    }
}
