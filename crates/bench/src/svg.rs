//! Minimal dependency-free SVG line charts, used by the `repro` harness to
//! emit actual figure files (Figs. 16–21) next to the textual series.
//!
//! Not a general plotting library — exactly the chart the paper's figures
//! use: progress on the x-axis, TC or MC on the y-axis (linear or log₁₀),
//! one polyline per planner, with axis ticks and a legend.

use std::fmt::Write;

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points, x ascending.
    pub points: Vec<(f64, f64)>,
}

/// Chart configuration.
#[derive(Debug, Clone)]
pub struct ChartConfig {
    /// Figure title.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// Use log₁₀ on the y axis (the TC/MC figures span orders of
    /// magnitude).
    pub log_y: bool,
    /// Canvas width in px.
    pub width: u32,
    /// Canvas height in px.
    pub height: u32,
}

impl Default for ChartConfig {
    fn default() -> Self {
        ChartConfig {
            title: String::new(),
            x_label: "progress".into(),
            y_label: String::new(),
            log_y: true,
            width: 640,
            height: 420,
        }
    }
}

/// Color palette (distinct, print-friendly).
const COLORS: [&str; 6] = [
    "#d62728", "#1f77b4", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b",
];

const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 120.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 48.0;

/// Render a line chart to an SVG string.
///
/// Returns a self-contained `<svg>` document; empty series are skipped,
/// and with no drawable data a chart with axes only is produced.
pub fn line_chart(config: &ChartConfig, series: &[Series]) -> String {
    let w = config.width as f64;
    let h = config.height as f64;
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;

    let ys = series.iter().flat_map(|s| s.points.iter().map(|p| p.1));
    let xs = series.iter().flat_map(|s| s.points.iter().map(|p| p.0));
    let (x_min, x_max) = bounds(xs, 0.0, 1.0);
    let (mut y_min, mut y_max) = bounds(ys, 0.0, 1.0);
    if config.log_y {
        y_min = y_min.max(1e-9);
        y_max = y_max.max(y_min * 10.0);
    } else if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }
    let ty = |y: f64| -> f64 {
        let v = if config.log_y {
            (y.max(y_min).log10() - y_min.log10()) / (y_max.log10() - y_min.log10())
        } else {
            (y - y_min) / (y_max - y_min)
        };
        MARGIN_T + plot_h * (1.0 - v.clamp(0.0, 1.0))
    };
    let tx =
        |x: f64| -> f64 { MARGIN_L + plot_w * ((x - x_min) / (x_max - x_min)).clamp(0.0, 1.0) };

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="11">"#
    );
    let _ = writeln!(svg, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    // Title and axis labels.
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="20" text-anchor="middle" font-size="14" font-weight="bold">{}</text>"#,
        w / 2.0,
        escape(&config.title)
    );
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        h - 10.0,
        escape(&config.x_label)
    );
    let _ = writeln!(
        svg,
        r#"<text x="14" y="{}" text-anchor="middle" transform="rotate(-90 14 {})">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        escape(&config.y_label)
    );
    // Axes.
    let _ = writeln!(
        svg,
        r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#333"/>"##
    );
    // X ticks at 0/25/50/75/100 %.
    for k in 0..=4 {
        let x = x_min + (x_max - x_min) * k as f64 / 4.0;
        let px = tx(x);
        let _ = writeln!(
            svg,
            r##"<line x1="{px}" y1="{}" x2="{px}" y2="{}" stroke="#999" stroke-dasharray="2,3"/>"##,
            MARGIN_T,
            MARGIN_T + plot_h
        );
        let _ = writeln!(
            svg,
            r#"<text x="{px}" y="{}" text-anchor="middle">{:.0}%</text>"#,
            MARGIN_T + plot_h + 16.0,
            x * 100.0
        );
    }
    // Y ticks: decades when log, else 5 linear ticks.
    if config.log_y {
        let lo = y_min.log10().floor() as i32;
        let hi = y_max.log10().ceil() as i32;
        for d in lo..=hi {
            let y = 10f64.powi(d);
            if y < y_min || y > y_max * 1.0001 {
                continue;
            }
            let py = ty(y);
            let _ = writeln!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{py}" x2="{}" y2="{py}" stroke="#ddd"/>"##,
                MARGIN_L + plot_w
            );
            let _ = writeln!(
                svg,
                r#"<text x="{}" y="{}" text-anchor="end">1e{d}</text>"#,
                MARGIN_L - 6.0,
                py + 4.0
            );
        }
    } else {
        for k in 0..=4 {
            let y = y_min + (y_max - y_min) * k as f64 / 4.0;
            let py = ty(y);
            let _ = writeln!(
                svg,
                r#"<text x="{}" y="{}" text-anchor="end">{y:.1}</text>"#,
                MARGIN_L - 6.0,
                py + 4.0
            );
        }
    }
    // Series polylines + legend.
    for (i, s) in series.iter().filter(|s| !s.points.is_empty()).enumerate() {
        let color = COLORS[i % COLORS.len()];
        let pts: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", tx(x), ty(y)))
            .collect();
        let _ = writeln!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
            pts.join(" ")
        );
        let ly = MARGIN_T + 14.0 * i as f64 + 8.0;
        let lx = MARGIN_L + plot_w + 10.0;
        let _ = writeln!(
            svg,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
            lx + 18.0
        );
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{}">{}</text>"#,
            lx + 24.0,
            ly + 4.0,
            escape(&s.label)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

fn bounds(values: impl Iterator<Item = f64>, def_min: f64, def_max: f64) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values.filter(|v| v.is_finite()) {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo > hi {
        (def_min, def_max)
    } else if (hi - lo).abs() < f64::EPSILON {
        (lo, lo + 1.0)
    } else {
        (lo, hi)
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Build the Series list of one figure from day reports.
pub fn series_from_reports(
    reports: &[carp_simenv::DayReport],
    pick: impl Fn(&carp_simenv::Snapshot) -> f64,
) -> Vec<Series> {
    reports
        .iter()
        .map(|r| Series {
            label: r.planner.to_string(),
            points: r.snapshots.iter().map(|s| (s.progress, pick(s))).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> Vec<Series> {
        vec![
            Series {
                label: "SRP".into(),
                points: (1..=10)
                    .map(|i| (i as f64 / 10.0, i as f64 * 0.1))
                    .collect(),
            },
            Series {
                label: "SAP".into(),
                points: (1..=10)
                    .map(|i| (i as f64 / 10.0, i as f64 * 2.0))
                    .collect(),
            },
        ]
    }

    #[test]
    fn chart_contains_all_structural_elements() {
        let cfg = ChartConfig {
            title: "Fig. 16 — TC on W-1".into(),
            y_label: "TC [s]".into(),
            ..Default::default()
        };
        let svg = line_chart(&cfg, &sample_series());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("Fig. 16"));
        assert!(svg.contains("SRP"));
        assert!(svg.contains("SAP"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("100%"));
    }

    #[test]
    fn log_scale_emits_decade_gridlines() {
        let cfg = ChartConfig {
            log_y: true,
            ..Default::default()
        };
        let series = vec![Series {
            label: "x".into(),
            points: vec![(0.0, 0.01), (0.5, 1.0), (1.0, 100.0)],
        }];
        let svg = line_chart(&cfg, &series);
        assert!(svg.contains("1e0"));
        assert!(svg.contains("1e2"));
    }

    #[test]
    fn empty_input_still_renders_axes() {
        let svg = line_chart(&ChartConfig::default(), &[]);
        assert!(svg.contains("<rect"));
        assert!(!svg.contains("<polyline"));
    }

    #[test]
    fn coordinates_stay_inside_canvas() {
        let cfg = ChartConfig::default();
        let svg = line_chart(&cfg, &sample_series());
        for cap in svg.split("points=\"").skip(1) {
            let coords = cap.split('"').next().unwrap();
            for pair in coords.split_whitespace() {
                let (x, y) = pair.split_once(',').unwrap();
                let (x, y): (f64, f64) = (x.parse().unwrap(), y.parse().unwrap());
                assert!(x >= 0.0 && x <= cfg.width as f64, "x {x}");
                assert!(y >= 0.0 && y <= cfg.height as f64, "y {y}");
            }
        }
    }

    #[test]
    fn titles_are_escaped() {
        let cfg = ChartConfig {
            title: "a < b & c".into(),
            ..Default::default()
        };
        let svg = line_chart(&cfg, &[]);
        assert!(svg.contains("a &lt; b &amp; c"));
    }
}
