//! `repro` — regenerate every table and figure of the paper's evaluation
//! (§VIII) on the synthetic Table II workloads.
//!
//! ```sh
//! cargo run --release -p carp-bench --bin repro -- <target> [--scale S] [--days N]
//! ```
//!
//! Targets: `table2`, `fig16`, `fig17`, `fig18`, `fig19`, `fig20`, `fig21`,
//! `fig22`, `table3`, `scaling`, `cr`, `sipp`, `all`.
//!
//! `--scale` is the rate-preserving day scale (default 0.01 ⇒ 1% of a day
//! at the paper's task arrival rate); `--days` limits the per-warehouse day
//! count (default 5). `all` executes the warehouse × day × planner grid
//! once and derives the TC figures, the MC figures and Table III from the
//! same reports.

use carp_bench::{format_series, run_scenario, summary_line, PlannerKind, Scenario};
use carp_simenv::{DayReport, SimConfig, Simulation};
use carp_spacetime::{AStarConfig, ReservationTable, SpaceTimeAStar};
use carp_srp::{SrpConfig, SrpPlanner, StripGraph};
use carp_warehouse::layout::{LayoutConfig, WarehousePreset};
use carp_warehouse::tasks::generate_requests;
use carp_warehouse::{Planner, QueryKind, Request};
use std::time::Instant;

#[derive(Clone, Copy)]
struct Opts {
    scale: f64,
    days: usize,
}

const USAGE: &str = "usage: repro [<target>] [--scale S] [--days N]
  targets: table2 fig16 fig17 fig18 fig19 fig20 fig21 fig22 table3
           scaling cr sipp ablation all (default: all)
  --scale S   rate-preserving day scale, 0 < S <= 1 (default 0.01)
  --days N    days per warehouse, capped at 5 (default 5)";

fn usage_error(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let target = args
        .first()
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();
    let mut opts = Opts {
        scale: 0.01,
        days: 5,
    };
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => opts.scale = s,
                None => usage_error("--scale expects a number"),
            },
            "--days" => match it.next().and_then(|v| v.parse().ok()) {
                Some(d) => opts.days = d,
                None => usage_error("--days expects an integer"),
            },
            other => usage_error(&format!("unknown flag {other}")),
        }
    }

    match target.as_str() {
        "table2" => table2(),
        "fig16" => figures(WarehousePreset::W1, "Fig. 16 (TC)", "Fig. 19 (MC)", opts),
        "fig17" => figures(WarehousePreset::W2, "Fig. 17 (TC)", "Fig. 20 (MC)", opts),
        "fig18" => figures(WarehousePreset::W3, "Fig. 18 (TC)", "Fig. 21 (MC)", opts),
        "fig19" => figures(WarehousePreset::W1, "Fig. 16 (TC)", "Fig. 19 (MC)", opts),
        "fig20" => figures(WarehousePreset::W2, "Fig. 17 (TC)", "Fig. 20 (MC)", opts),
        "fig21" => figures(WarehousePreset::W3, "Fig. 18 (TC)", "Fig. 21 (MC)", opts),
        "fig22" => fig22(opts),
        "table3" => {
            let grid = run_grid(opts);
            table3(&grid, opts);
        }
        "scaling" => scaling(),
        "cr" => competitive_ratio(),
        "sipp" => sipp_extension(opts),
        "ablation" => ablation(opts),
        "all" => {
            table2();
            let grid = run_grid(opts);
            print_figures_from_grid(&grid, opts);
            table3(&grid, opts);
            fig22(opts);
            scaling();
            competitive_ratio();
            sipp_extension(opts);
            ablation(opts);
        }
        other => usage_error(&format!("unknown target {other}")),
    }
}

/// Table II: dataset summary and the grid→strip reduction.
fn table2() {
    println!("==================================================================");
    println!("TABLE II — datasets and strip-based extraction");
    println!("==================================================================");
    println!(
        "{:<5} {:>9} {:>6} {:>7} {:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>6} {:>6}",
        "Name",
        "HxW",
        "#Rack",
        "#Robot",
        "#Picker",
        "grid #V",
        "grid #E",
        "strip #V",
        "strip #E",
        "V%",
        "E%"
    );
    for preset in WarehousePreset::ALL {
        let layout = preset.generate();
        let s = layout.stats();
        let g = StripGraph::build(&layout.matrix);
        println!(
            "{:<5} {:>9} {:>6} {:>7} {:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>5.1}% {:>5.1}%",
            preset.name(),
            format!("{}x{}", s.rows, s.cols),
            s.racks,
            s.robots,
            s.pickers,
            s.grid_vertices,
            s.grid_edges,
            g.num_vertices(),
            g.num_edges(),
            100.0 * g.num_vertices() as f64 / s.grid_vertices as f64,
            100.0 * g.num_edges() as f64 / s.grid_edges as f64,
        );
    }
    println!("(paper W-1 strip extraction: 3997 vertices / 11272 edges ≈ 16% / 23% of grid)");
    println!();
}

/// One warehouse-day's five planner reports.
struct GridCell {
    preset: WarehousePreset,
    day: usize,
    reports: Vec<DayReport>,
}

/// Run the full preset × day × planner grid once.
fn run_grid(opts: Opts) -> Vec<GridCell> {
    let mut grid = Vec::new();
    for preset in WarehousePreset::ALL {
        let layout = preset.generate();
        for day in 0..opts.days.min(5) {
            let sc = Scenario {
                preset,
                day,
                scale: opts.scale,
            };
            let tasks = sc.tasks(&layout);
            eprintln!(
                "[grid] {} Day{} — {} tasks over {}s",
                preset.name(),
                day + 1,
                tasks.len(),
                sc.horizon()
            );
            let reports = PlannerKind::EVALUATED
                .iter()
                .map(|&k| run_scenario(&layout, &tasks, k))
                .collect();
            grid.push(GridCell {
                preset,
                day,
                reports,
            });
        }
    }
    grid
}

/// Print Figs. 16–21 from an already-computed grid.
fn print_figures_from_grid(grid: &[GridCell], opts: Opts) {
    for (preset, tc_title, mc_title) in [
        (
            WarehousePreset::W1,
            "Fig. 16 — TC on W-1",
            "Fig. 19 — MC on W-1",
        ),
        (
            WarehousePreset::W2,
            "Fig. 17 — TC on W-2",
            "Fig. 20 — MC on W-2",
        ),
        (
            WarehousePreset::W3,
            "Fig. 18 — TC on W-3",
            "Fig. 21 — MC on W-3",
        ),
    ] {
        for cell in grid.iter().filter(|c| c.preset == preset) {
            print_day_figures(cell, tc_title, mc_title, opts);
        }
    }
}

fn print_day_figures(cell: &GridCell, tc_title: &str, mc_title: &str, opts: Opts) {
    println!("==================================================================");
    println!(
        "{tc_title} / {mc_title} — Day{} (scale {})",
        cell.day + 1,
        opts.scale
    );
    println!("==================================================================");
    emit_svg(cell, tc_title, mc_title);
    println!(
        "{}",
        format_series("TC vs progress", &cell.reports, |s| s.planning_secs, "s")
    );
    println!(
        "{}",
        format_series(
            "MC vs progress",
            &cell.reports,
            |s| s.memory_bytes as f64 / 1024.0,
            "KiB"
        )
    );
    for r in &cell.reports {
        println!("  {}", summary_line(r));
    }
    // The paper's 227x headline is a snapshot comparison at 2% progress.
    let srp = cell
        .reports
        .iter()
        .find(|r| r.planner == "SRP")
        .expect("SRP ran");
    if let Some(first) = srp.snapshots.first() {
        let srp_tc = first.planning_secs.max(1e-9);
        if let Some((name, tc)) = cell
            .reports
            .iter()
            .filter(|r| r.planner != "SRP")
            .filter_map(|r| r.snapshots.first().map(|s| (r.planner, s.planning_secs)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
        {
            println!(
                "  snapshot@2%: SRP {srp_tc:.4}s vs {name} {tc:.4}s → {:.1}x speedup",
                tc / srp_tc
            );
        }
    }
    let full_speedups: Vec<String> = cell
        .reports
        .iter()
        .filter(|r| r.planner != "SRP")
        .map(|r| {
            format!(
                "{} {:.1}x",
                r.planner,
                r.planning_secs / srp.planning_secs.max(1e-9)
            )
        })
        .collect();
    println!(
        "  full-day TC speedups of SRP: {}",
        full_speedups.join(", ")
    );
    println!();
}

/// Write the day's TC and MC charts as SVG files under
/// `target/repro-figures/`.
fn emit_svg(cell: &GridCell, tc_title: &str, mc_title: &str) {
    use carp_bench::svg::{line_chart, series_from_reports, ChartConfig};
    // Anchor at the workspace target/ next to this binary, so `cargo bench`
    // (whose cwd is the package dir) and `cargo run` agree on the location.
    let dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().and_then(|p| p.parent()).map(|p| p.to_path_buf()))
        .unwrap_or_else(|| std::path::PathBuf::from("target"))
        .join("repro-figures");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    // "Fig. 16 — TC on W-1" → "fig16".
    let slug = |t: &str| {
        let num = t
            .split_whitespace()
            .nth(1)
            .unwrap_or("fig")
            .trim_end_matches('.');
        format!("fig{num}")
    };
    for (title, unit, pick) in [
        (
            tc_title,
            "TC [s]",
            Box::new(|s: &carp_simenv::Snapshot| s.planning_secs)
                as Box<dyn Fn(&carp_simenv::Snapshot) -> f64>,
        ),
        (
            mc_title,
            "MC [KiB]",
            Box::new(|s: &carp_simenv::Snapshot| s.memory_bytes as f64 / 1024.0),
        ),
    ] {
        let cfg = ChartConfig {
            title: format!("{title} — Day{}", cell.day + 1),
            y_label: unit.into(),
            ..ChartConfig::default()
        };
        let chart = line_chart(&cfg, &series_from_reports(&cell.reports, &pick));
        let name = format!(
            "{}_{}_day{}.svg",
            slug(title),
            cell.preset.name().to_lowercase().replace('-', ""),
            cell.day + 1
        );
        if std::fs::write(dir.join(&name), chart).is_ok() {
            println!("  (figure written to {})", dir.join(&name).display());
        }
    }
}

/// Single-preset entry points (fig16..fig21): run that preset's days only.
fn figures(preset: WarehousePreset, tc_title: &str, mc_title: &str, opts: Opts) {
    let layout = preset.generate();
    for day in 0..opts.days.min(5) {
        let sc = Scenario {
            preset,
            day,
            scale: opts.scale,
        };
        let tasks = sc.tasks(&layout);
        eprintln!(
            "[grid] {} Day{} — {} tasks",
            preset.name(),
            day + 1,
            tasks.len()
        );
        let reports = PlannerKind::EVALUATED
            .iter()
            .map(|&k| run_scenario(&layout, &tasks, k))
            .collect();
        let cell = GridCell {
            preset,
            day,
            reports,
        };
        print_day_figures(&cell, tc_title, mc_title, opts);
    }
}

/// Table III: average OG (makespan) over days, per warehouse and planner.
fn table3(grid: &[GridCell], opts: Opts) {
    println!("==================================================================");
    println!(
        "TABLE III — effectiveness (mean OG over {} day(s), scale {})",
        opts.days.min(5),
        opts.scale
    );
    println!("==================================================================");
    println!(
        "{:<5} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Name", "SAP", "RP", "TWP", "ACP", "SRP"
    );
    for preset in WarehousePreset::ALL {
        let cells: Vec<&GridCell> = grid.iter().filter(|c| c.preset == preset).collect();
        if cells.is_empty() {
            continue;
        }
        let mean = |name: &str| -> u64 {
            let (sum, n) = cells
                .iter()
                .flat_map(|c| c.reports.iter().filter(|r| r.planner == name))
                .fold((0u64, 0u64), |(s, n), r| (s + r.makespan as u64, n + 1));
            sum / n.max(1)
        };
        println!(
            "{:<5} {:>8} {:>8} {:>8} {:>8} {:>8}",
            preset.name(),
            mean("SAP"),
            mean("RP"),
            mean("TWP"),
            mean("ACP"),
            mean("SRP")
        );
    }
    println!(
        "(paper reports absolute seconds on full days; the comparison is the per-row ordering)"
    );
    println!();
}

/// Fig. 22: (a) SRP TC breakdown without slope indexing; (b) intra-strip TC
/// with vs without the slope index.
fn fig22(opts: Opts) {
    for (preset, day, label) in [
        (WarehousePreset::W1, 0usize, "W-1 Day1"),
        (WarehousePreset::W3, 3usize, "W-3 Day4 (dense)"),
    ] {
        println!("==================================================================");
        println!(
            "Fig. 22 — need for slope-based indexing ({label}, scale {})",
            opts.scale
        );
        println!("==================================================================");
        let layout = preset.generate();
        let sc = Scenario {
            preset,
            day,
            scale: opts.scale,
        };
        let tasks = sc.tasks(&layout);
        let cfg = SrpConfig {
            instrument: true,
            ..SrpConfig::default()
        };

        // (a) breakdown with the naive ordered-set store.
        let naive =
            SrpPlanner::<carp_geometry::NaiveStore>::with_store(layout.matrix.clone(), cfg.clone());
        let (naive_report, naive_planner) =
            Simulation::new(&layout, &tasks, naive, SimConfig::default()).run();
        let ns = naive_planner.stats;
        let total_naive = ((ns.inter_ns + ns.intra_ns + ns.convert_ns) as f64 / 1e9).max(1e-9);
        println!("(a) TC breakdown of SRP *without* slope indexing:");
        for (part, v) in [
            ("inter-strip", ns.inter_ns),
            ("intra-strip", ns.intra_ns),
            ("conversion", ns.convert_ns),
        ] {
            println!(
                "    {part:<12}: {:>9.3}s ({:>4.1}%)",
                v as f64 / 1e9,
                100.0 * v as f64 / 1e9 / total_naive
            );
        }

        // (b) with the slope index.
        let indexed = SrpPlanner::new(layout.matrix.clone(), cfg);
        let (indexed_report, indexed_planner) =
            Simulation::new(&layout, &tasks, indexed, SimConfig::default()).run();
        let is = indexed_planner.stats;
        println!("(b) intra-strip TC with vs without slope-based indexing:");
        println!(
            "    naive store : {:>9.3}s   (total TC {:>8.3}s)",
            ns.intra_ns as f64 / 1e9,
            naive_report.planning_secs
        );
        println!(
            "    slope index : {:>9.3}s   (total TC {:>8.3}s)",
            is.intra_ns as f64 / 1e9,
            indexed_report.planning_secs
        );
        println!(
            "    intra-strip reduction: {:.1}%  (paper reports ≈50%)",
            100.0 * (1.0 - is.intra_ns as f64 / ns.intra_ns.max(1) as f64)
        );
        println!();
    }
}

/// Extra experiment X1: planning-time growth with warehouse area — the
/// complexity claim O((HW)²) vs O(HW·log HW) of §VII-B.
fn scaling() {
    println!("==================================================================");
    println!("X1 — per-request planning time vs warehouse area (complexity, §VII-B)");
    println!("==================================================================");
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>9}",
        "side", "cells", "SRP µs/req", "SAP µs/req", "SIPP µs/req", "SAP/SRP"
    );
    let mut rows = Vec::new();
    for side in [40u16, 80, 120, 160, 200, 240] {
        let cfg = LayoutConfig {
            rows: side,
            cols: side,
            target_racks: (side as u32 * side as u32) / 5,
            pickers: (side / 4).max(2),
            robots: (side * 2).max(8),
            ..LayoutConfig::small()
        };
        let layout = cfg.generate();
        let requests = generate_requests(&layout, 150, 1.0, 99);
        let time_one = |kind: PlannerKind| -> f64 {
            let mut planner = kind.build(&layout);
            let t0 = Instant::now();
            for req in &requests {
                planner.plan(req);
            }
            t0.elapsed().as_secs_f64() * 1e6 / requests.len() as f64
        };
        let srp_us = time_one(PlannerKind::Srp);
        let sap_us = time_one(PlannerKind::Sap);
        let sipp_us = time_one(PlannerKind::Sipp);
        println!(
            "{:>6} {:>8} {:>12.1} {:>12.1} {:>12.1} {:>9.2}",
            side,
            layout.matrix.num_cells(),
            srp_us,
            sap_us,
            sipp_us,
            sap_us / srp_us
        );
        rows.push((layout.matrix.num_cells() as f64, srp_us, sap_us));
    }
    let slope = |f: fn(&(f64, f64, f64)) -> f64| {
        let n = rows.len() as f64;
        let (sx, sy, sxy, sxx) = rows.iter().fold((0.0, 0.0, 0.0, 0.0), |acc, r| {
            let (x, y) = (r.0.ln(), f(r).ln());
            (acc.0 + x, acc.1 + y, acc.2 + x * y, acc.3 + x * x)
        });
        (n * sxy - sx * sy) / (n * sxx - sx * sx)
    };
    println!(
        "log-log growth exponents: SRP {:.2}, SAP {:.2}  (paper: ~1+log vs ~2 worst-case)",
        slope(|r| r.1),
        slope(|r| r.2)
    );
    println!();
}

/// Extra experiment X2: empirical competitive ratio of single planned
/// routes (Theorem 1 bounds the expectation by 1.788).
fn competitive_ratio() {
    println!("==================================================================");
    println!("X2 — empirical competitive ratio of single routes (Theorem 1: E[CR] ≤ 1.788)");
    println!("==================================================================");
    let layout = LayoutConfig::small().generate();
    let mut srp = SrpPlanner::new(layout.matrix.clone(), SrpConfig::default());
    // Background traffic committed into the planner and mirrored into a
    // reservation table for the optimal baseline.
    let background = generate_requests(&layout, 60, 6.0, 5);
    let mut reservations = ReservationTable::new();
    for req in &background {
        if let Some(route) = srp.plan(req).route().cloned() {
            reservations.reserve(&route, req.id);
        }
    }
    // Probe requests: planned (uncommitted) by SRP and optimally by
    // space-time A* against identical traffic.
    let probes = generate_requests(&layout, 120, 2.0, 77);
    let mut astar = SpaceTimeAStar::new(AStarConfig::default());
    let mut ratios = Vec::new();
    for probe in &probes {
        let req = Request::new(
            10_000 + probe.id,
            probe.t,
            probe.origin,
            probe.destination,
            QueryKind::Pickup,
        );
        let Some(srp_route) = srp.plan_uncommitted(&req) else {
            continue;
        };
        let Some(opt_route) = astar.plan(
            &layout.matrix,
            &reservations,
            None,
            req.origin,
            req.destination,
            req.t,
        ) else {
            continue;
        };
        // Compare completion times relative to the request time (length +
        // forced waiting), as in §VII-A.
        let srp_len = (srp_route.end_time() - req.t).max(1);
        let opt_len = (opt_route.end_time() - req.t).max(1);
        ratios.push(srp_len as f64 / opt_len as f64);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    let p95 = ratios
        .get((ratios.len() as f64 * 0.95) as usize)
        .copied()
        .unwrap_or(f64::NAN);
    let max = ratios.last().copied().unwrap_or(f64::NAN);
    println!(
        "  probes={}  mean CR={:.3}  p95={:.3}  max={:.3}  (bound 1.788 on the expectation)",
        ratios.len(),
        mean,
        p95,
        max
    );
    println!(
        "  within bound: {}",
        if mean <= 1.788 { "YES" } else { "NO" }
    );
    println!();
}

/// Extra experiment X4: ablation of SRP's design choices (DESIGN.md §6):
/// the slope index (§V-D), the inter-strip heuristic, and the retry bumps.
fn ablation(opts: Opts) {
    println!("==================================================================");
    println!(
        "X4 — SRP design-choice ablation (W-1 Day1, scale {})",
        opts.scale
    );
    println!("==================================================================");
    let layout = WarehousePreset::W1.generate();
    let sc = Scenario {
        preset: WarehousePreset::W1,
        day: 0,
        scale: opts.scale,
    };
    let tasks = sc.tasks(&layout);
    println!(
        "{:<22} {:>9} {:>8} {:>10} {:>9} {:>9}",
        "variant", "TC(s)", "OG", "MC(KiB)", "retries", "fallbacks"
    );
    let run_variant = |label: &str, cfg: SrpConfig, naive: bool| {
        let (report, retries, fallbacks) = if naive {
            let p = SrpPlanner::<carp_geometry::NaiveStore>::with_store(layout.matrix.clone(), cfg);
            let (r, p) = Simulation::new(&layout, &tasks, p, SimConfig::default()).run();
            (r, p.stats.retries, p.stats.fallbacks)
        } else {
            let p = SrpPlanner::new(layout.matrix.clone(), cfg);
            let (r, p) = Simulation::new(&layout, &tasks, p, SimConfig::default()).run();
            (r, p.stats.retries, p.stats.fallbacks)
        };
        println!(
            "{:<22} {:>9.3} {:>8} {:>10.1} {:>9} {:>9}",
            label,
            report.planning_secs,
            report.makespan,
            report.peak_memory_bytes as f64 / 1024.0,
            retries,
            fallbacks
        );
        assert_eq!(report.audit_conflicts, 0, "{label}: audit failed");
    };
    run_variant("full (default)", SrpConfig::default(), false);
    run_variant("naive segment store", SrpConfig::default(), true);
    run_variant(
        "no inter-strip A* h",
        SrpConfig {
            use_heuristic: false,
            ..SrpConfig::default()
        },
        false,
    );
    run_variant(
        "no retry bumps",
        SrpConfig {
            retry_bumps: [0, 0, 0],
            ..SrpConfig::default()
        },
        false,
    );
    run_variant(
        "no fallback",
        SrpConfig {
            use_fallback: false,
            ..SrpConfig::default()
        },
        false,
    );
    println!();
}

/// Extra experiment X3: SRP versus the SIPP extension baseline.
fn sipp_extension(opts: Opts) {
    println!("==================================================================");
    println!(
        "X3 — SRP vs SIPP (extension beyond the paper, scale {})",
        opts.scale
    );
    println!("==================================================================");
    println!(
        "{:<5} {:>5} | {:>10} {:>10} | {:>10} {:>10} | {:>8} {:>8}",
        "WH", "Day", "SRP TC(s)", "SIPP TC(s)", "SRP MC", "SIPP MC", "SRP OG", "SIPP OG"
    );
    for preset in [WarehousePreset::W1, WarehousePreset::W3] {
        let layout = preset.generate();
        let day = 0;
        let sc = Scenario {
            preset,
            day,
            scale: opts.scale,
        };
        let tasks = sc.tasks(&layout);
        let srp = run_scenario(&layout, &tasks, PlannerKind::Srp);
        let sipp = run_scenario(&layout, &tasks, PlannerKind::Sipp);
        println!(
            "{:<5} {:>5} | {:>10.3} {:>10.3} | {:>9.0}K {:>9.0}K | {:>8} {:>8}",
            preset.name(),
            day + 1,
            srp.planning_secs,
            sipp.planning_secs,
            srp.peak_memory_bytes as f64 / 1024.0,
            sipp.peak_memory_bytes as f64 / 1024.0,
            srp.makespan,
            sipp.makespan
        );
    }
    println!(
        "(SIPP is the strongest classical grid-level planner; see EXPERIMENTS.md for discussion)"
    );
    println!();
}
