//! Shared harness for the paper-reproduction benchmarks: scenario scaling,
//! planner construction, day execution and table formatting.
//!
//! Every table and figure of the paper's evaluation (§VIII) has a
//! corresponding entry point in the `repro` binary; the pieces here are the
//! common machinery. Scenarios are **rate-preserving** down-scales of the
//! paper's five-day workloads: scaling a day by `s` keeps the *arrival
//! rate* (tasks per second) and therefore the congestion level, while
//! shrinking wall-clock cost by `s`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod svg;

use carp_baselines::{
    AcpConfig, AcpPlanner, RpConfig, RpPlanner, SapPlanner, SippConfig, SippPlanner, TwpConfig,
    TwpPlanner,
};
use carp_geometry::NaiveStore;
use carp_simenv::{DayReport, SimConfig, Simulation};
use carp_spacetime::AStarConfig;
use carp_srp::{SrpConfig, SrpPlanner};
use carp_warehouse::layout::{Layout, WarehousePreset};
use carp_warehouse::planner::Planner;
use carp_warehouse::tasks::{generate_tasks, DayProfile, Task};
use carp_warehouse::types::Time;

/// Seconds in the paper's full-day horizon.
pub const FULL_DAY: f64 = 86_400.0;

/// The planners of the evaluation, plus the naive-store SRP ablation of
/// Fig. 22(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerKind {
    /// Strip-based Route Planning with the slope index (the full method).
    Srp,
    /// SRP with the naive ordered-set store (§V-B) — the Fig. 22 ablation.
    SrpNaive,
    /// Simple A\*-based planning.
    Sap,
    /// Replanning with CBS.
    Rp,
    /// Time-windowed planning.
    Twp,
    /// Adaptive cached planning.
    Acp,
    /// Safe Interval Path Planning — the extension baseline (not part of
    /// the paper's evaluation; used by the X3 experiment).
    Sipp,
}

impl PlannerKind {
    /// The five planners compared in Figs. 16–21 and Table III.
    pub const EVALUATED: [PlannerKind; 5] = [
        PlannerKind::Sap,
        PlannerKind::Rp,
        PlannerKind::Twp,
        PlannerKind::Acp,
        PlannerKind::Srp,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PlannerKind::Srp => "SRP",
            PlannerKind::SrpNaive => "SRP-naive",
            PlannerKind::Sap => "SAP",
            PlannerKind::Rp => "RP",
            PlannerKind::Twp => "TWP",
            PlannerKind::Acp => "ACP",
            PlannerKind::Sipp => "SIPP",
        }
    }

    /// Build the planner for a warehouse.
    pub fn build(self, layout: &Layout) -> Box<dyn Planner> {
        let m = layout.matrix.clone();
        match self {
            PlannerKind::Srp => Box::new(SrpPlanner::new(m, SrpConfig::default())),
            PlannerKind::SrpNaive => Box::new(SrpPlanner::<NaiveStore>::with_store(
                m,
                SrpConfig::default(),
            )),
            PlannerKind::Sap => Box::new(SapPlanner::new(m, AStarConfig::default())),
            PlannerKind::Rp => Box::new(RpPlanner::new(m, RpConfig::default())),
            PlannerKind::Twp => Box::new(TwpPlanner::new(m, TwpConfig::default())),
            PlannerKind::Acp => Box::new(AcpPlanner::new(m, AcpConfig::default())),
            PlannerKind::Sipp => Box::new(SippPlanner::new(m, SippConfig::default())),
        }
    }
}

/// A rate-preserving scaled day of one preset warehouse.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Which warehouse.
    pub preset: WarehousePreset,
    /// Day index 0..5 (Table II's Day1–Day5 volumes).
    pub day: usize,
    /// Scale factor `s`: the day spans `86400·s` seconds and carries
    /// `round(paper_tasks·s)` tasks — same arrival rate as the paper.
    pub scale: f64,
}

impl Scenario {
    /// Simulated horizon of the scaled day.
    pub fn horizon(&self) -> Time {
        (FULL_DAY * self.scale).round() as Time
    }

    /// Number of tasks in the scaled day.
    pub fn num_tasks(&self) -> u32 {
        let paper = self.preset.daily_tasks_thousands()[self.day] * 1000.0;
        (paper * self.scale).round().max(1.0) as u32
    }

    /// Deterministic seed for the scenario's task stream.
    pub fn seed(&self) -> u64 {
        0x5172_0000 + self.day as u64 * 131 + self.preset as u64 * 7 + (self.scale * 1e6) as u64
    }

    /// Generate the task stream.
    pub fn tasks(&self, layout: &Layout) -> Vec<Task> {
        generate_tasks(
            layout,
            &DayProfile::new(self.horizon(), self.num_tasks()),
            self.seed(),
        )
    }
}

/// Run one scenario with one planner and return its report.
pub fn run_scenario(layout: &Layout, tasks: &[Task], kind: PlannerKind) -> DayReport {
    let planner = kind.build(layout);
    let (mut report, _) = Simulation::new(layout, tasks, planner, SimConfig::default()).run();
    // `Box<dyn Planner>` forwards name() to the inner planner, but keep the
    // ablation distinguishable in reports.
    if kind == PlannerKind::SrpNaive {
        report.planner = "SRP-naive";
    }
    report
}

/// Render a progress-series table: one row per progress tick, one column
/// per report (Figs. 16–21 shape). `pick` selects the plotted value.
pub fn format_series(
    title: &str,
    reports: &[DayReport],
    pick: impl Fn(&carp_simenv::Snapshot) -> f64,
    unit: &str,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{title} [{unit}]");
    let _ = write!(out, "{:>9}", "progress");
    for r in reports {
        let _ = write!(out, " {:>12}", r.planner);
    }
    let _ = writeln!(out);
    // Union of progress ticks (reports share the tick grid).
    let ticks: Vec<f64> = reports
        .iter()
        .map(|r| r.snapshots.iter().map(|s| s.progress))
        .max_by_key(|i| i.len())
        .map(|i| i.collect())
        .unwrap_or_default();
    for (row, &tick) in ticks.iter().enumerate() {
        let _ = write!(out, "{:>8.0}%", tick * 100.0);
        for r in reports {
            match r.snapshots.get(row) {
                Some(s) => {
                    let _ = write!(out, " {:>12.4}", pick(s));
                }
                None => {
                    let _ = write!(out, " {:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// One-line summary of a report (used throughout the harness output).
pub fn summary_line(r: &DayReport) -> String {
    format!(
        "{:<10} OG={:>7}  TC={:>9.3}s  MC={:>9.1}KiB  done={}/{} audit={}",
        r.planner,
        r.makespan,
        r.planning_secs,
        r.peak_memory_bytes as f64 / 1024.0,
        r.completed,
        r.tasks,
        r.audit_conflicts
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_scaling_preserves_rate() {
        let a = Scenario {
            preset: WarehousePreset::W1,
            day: 0,
            scale: 0.01,
        };
        let b = Scenario {
            preset: WarehousePreset::W1,
            day: 0,
            scale: 0.02,
        };
        let rate_a = a.num_tasks() as f64 / a.horizon() as f64;
        let rate_b = b.num_tasks() as f64 / b.horizon() as f64;
        assert!(
            (rate_a - rate_b).abs() / rate_a < 0.02,
            "{rate_a} vs {rate_b}"
        );
        // Paper rate: 45.0k tasks / 86400 s.
        assert!((rate_a - 45_000.0 / 86_400.0).abs() / rate_a < 0.02);
    }

    #[test]
    fn all_planner_kinds_build() {
        let layout = carp_warehouse::layout::LayoutConfig::small().generate();
        for kind in PlannerKind::EVALUATED
            .into_iter()
            .chain([PlannerKind::SrpNaive])
        {
            let p = kind.build(&layout);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn tiny_scenario_runs_end_to_end() {
        let layout = carp_warehouse::layout::LayoutConfig::small().generate();
        let sc = Scenario {
            preset: WarehousePreset::W1,
            day: 2,
            scale: 0.0005,
        };
        let tasks = sc.tasks(&layout);
        assert!(!tasks.is_empty());
        let report = run_scenario(&layout, &tasks, PlannerKind::Srp);
        assert_eq!(report.audit_conflicts, 0);
        assert!(report.completed > 0);
    }

    #[test]
    fn series_formatting_contains_all_planners() {
        let layout = carp_warehouse::layout::LayoutConfig::small().generate();
        let sc = Scenario {
            preset: WarehousePreset::W1,
            day: 0,
            scale: 0.0005,
        };
        let tasks = sc.tasks(&layout);
        let reports = vec![
            run_scenario(&layout, &tasks, PlannerKind::Srp),
            run_scenario(&layout, &tasks, PlannerKind::Acp),
        ];
        let table = format_series("TC", &reports, |s| s.planning_secs, "s");
        assert!(table.contains("SRP"));
        assert!(table.contains("ACP"));
        assert!(table.contains("progress"));
    }
}
