//! SAP — Simple A\*-based Planning (§VIII-A).
//!
//! The most direct baseline: plan each request with a full space-time A\*
//! over the 3-dimensional (2-D grid + 1-D time) search space, one request
//! at a time, reserving every planned route so later requests avoid it
//! (prioritized / cooperative A\*). Usually the slowest method in the
//! paper's evaluation.

use crate::common::Commitments;
use carp_spacetime::{AStarConfig, SpaceTimeAStar};
use carp_warehouse::matrix::WarehouseMatrix;
use carp_warehouse::planner::{PlanOutcome, Planner, SpeculativePlanner};
use carp_warehouse::request::{Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::types::Time;

/// The SAP planner.
#[derive(Debug, Clone)]
pub struct SapPlanner {
    matrix: WarehouseMatrix,
    astar: SpaceTimeAStar,
    commitments: Commitments,
    /// High-water mark of A\* runtime memory (part of the paper's MC).
    pub search_peak_bytes: usize,
}

impl SapPlanner {
    /// Create a SAP planner.
    pub fn new(matrix: WarehouseMatrix, config: AStarConfig) -> Self {
        SapPlanner {
            matrix,
            astar: SpaceTimeAStar::new(config),
            commitments: Commitments::new(),
            search_peak_bytes: 0,
        }
    }

    /// Number of active committed routes.
    pub fn active_routes(&self) -> usize {
        self.commitments.len()
    }
}

impl SpeculativePlanner for SapPlanner {
    fn fork(&self) -> Self {
        self.clone()
    }

    fn plan_candidate(&mut self, req: &Request) -> Option<Route> {
        let route = self.astar.plan(
            &self.matrix,
            &self.commitments.reservations,
            None,
            req.origin,
            req.destination,
            req.t,
        );
        self.search_peak_bytes = self.search_peak_bytes.max(self.astar.stats.peak_bytes);
        route
    }

    fn adopt(&mut self, id: RequestId, route: &Route) {
        self.commitments.commit(id, route.clone());
    }
}

impl Planner for SapPlanner {
    fn name(&self) -> &'static str {
        "SAP"
    }

    fn plan(&mut self, req: &Request) -> PlanOutcome {
        let route = self.astar.plan(
            &self.matrix,
            &self.commitments.reservations,
            None,
            req.origin,
            req.destination,
            req.t,
        );
        self.search_peak_bytes = self.search_peak_bytes.max(self.astar.stats.peak_bytes);
        match route {
            Some(route) => {
                self.commitments.commit(req.id, route.clone());
                PlanOutcome::Planned(route)
            }
            None => PlanOutcome::Infeasible,
        }
    }

    fn advance(&mut self, now: Time) -> Vec<(RequestId, Route)> {
        self.commitments.retire_before(now);
        Vec::new()
    }

    fn cancel(&mut self, id: RequestId) -> bool {
        self.commitments.withdraw(id).is_some()
    }

    fn memory_bytes(&self) -> usize {
        // The paper's MC includes "runtime space consumption during
        // execution": the search high-water is part of the footprint.
        self.commitments.memory_bytes() + self.search_peak_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carp_warehouse::collision::validate_routes;
    use carp_warehouse::layout::LayoutConfig;
    use carp_warehouse::tasks::generate_requests;
    use carp_warehouse::types::Cell;
    use carp_warehouse::QueryKind;

    #[test]
    fn plans_collision_free_stream() {
        let layout = LayoutConfig::small().generate();
        let mut sap = SapPlanner::new(layout.matrix.clone(), AStarConfig::default());
        let mut routes = Vec::new();
        for req in generate_requests(&layout, 80, 3.0, 21) {
            if let PlanOutcome::Planned(r) = sap.plan(&req) {
                assert!(r.validate(&layout.matrix).is_ok());
                routes.push(r);
            }
        }
        assert!(routes.len() >= 78);
        assert_eq!(validate_routes(&routes), None);
    }

    #[test]
    fn second_robot_yields_to_first() {
        let m = WarehouseMatrix::empty(3, 6);
        let mut sap = SapPlanner::new(m, AStarConfig::default());
        let r1 = sap
            .plan(&Request::new(
                0,
                0,
                Cell::new(1, 0),
                Cell::new(1, 5),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("r1");
        let r2 = sap
            .plan(&Request::new(
                1,
                0,
                Cell::new(1, 5),
                Cell::new(1, 0),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("r2");
        assert_eq!(validate_routes(&[r1.clone(), r2.clone()]), None);
        assert_eq!(r1.duration(), 5, "first robot goes straight");
        assert!(r2.duration() > 5, "second robot detours or waits");
    }

    #[test]
    fn retirement_unblocks_cells() {
        let m = WarehouseMatrix::empty(2, 6);
        let mut sap = SapPlanner::new(m, AStarConfig::default());
        sap.plan(&Request::new(
            0,
            0,
            Cell::new(0, 0),
            Cell::new(0, 5),
            QueryKind::Pickup,
        ));
        assert_eq!(sap.active_routes(), 1);
        sap.advance(100);
        assert_eq!(sap.active_routes(), 0);
        assert!(sap.commitments.reservations.is_empty());
    }

    #[test]
    fn memory_reflects_grid_level_storage() {
        let layout = LayoutConfig::small().generate();
        let mut sap = SapPlanner::new(layout.matrix.clone(), AStarConfig::default());
        let before = sap.memory_bytes();
        for req in generate_requests(&layout, 30, 3.0, 5) {
            sap.plan(&req);
        }
        assert!(sap.memory_bytes() > before);
        assert!(sap.search_peak_bytes > 0);
    }
}
