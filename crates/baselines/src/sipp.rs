//! SIPP — Safe Interval Path Planning (Phillips & Likhachev, ICRA 2011) —
//! an *extension baseline* beyond the paper's four.
//!
//! SIPP is the strongest classical acceleration of single-agent planning
//! amongst moving obstacles: instead of expanding one state per `(cell,
//! time)`, it expands one state per `(cell, safe interval)` — a maximal
//! time window during which the cell is unreserved. Congested cells have
//! few intervals, so the search space collapses from `O(HW·T)` to
//! `O(HW·k)` with small `k`. Like SAP it plans prioritized, one request at
//! a time, against all committed routes.
//!
//! Including it answers the natural reviewer question "would a better
//! grid-level planner close the gap to SRP?" — see EXPERIMENTS.md.

use carp_warehouse::matrix::WarehouseMatrix;
use carp_warehouse::memory;
use carp_warehouse::planner::{PlanOutcome, Planner, SpeculativePlanner};
use carp_warehouse::request::{Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::types::{Cell, Time, INFINITY_TIME};
use std::collections::{BTreeSet, BinaryHeap, HashMap, HashSet};

/// SIPP configuration.
#[derive(Debug, Clone, Copy)]
pub struct SippConfig {
    /// Cap on state expansions per request.
    pub max_expansions: usize,
    /// Maximum route duration relative to the departure.
    pub horizon: Time,
    /// How long the departure may be postponed on a contested origin.
    pub max_depart_delay: Time,
}

impl Default for SippConfig {
    fn default() -> Self {
        SippConfig {
            max_expansions: 200_000,
            horizon: 4096,
            max_depart_delay: 256,
        }
    }
}

/// Counters for the SIPP planner.
#[derive(Debug, Default, Clone, Copy)]
pub struct SippStats {
    /// Requests planned.
    pub planned: usize,
    /// State (cell, interval) expansions across all requests.
    pub expansions: usize,
}

/// The SIPP planner.
#[derive(Debug, Clone)]
pub struct SippPlanner {
    matrix: WarehouseMatrix,
    /// Reserved instants per cell. Committed routes are mutually
    /// collision-free, so each `(cell, t)` is reserved by at most one
    /// route and a plain set suffices (removal-safe).
    blocks: HashMap<Cell, BTreeSet<Time>>,
    /// Directed motions `(from, to, t)` of committed routes, for swap
    /// conflicts.
    motions: HashSet<(Cell, Cell, Time)>,
    /// Committed routes by id, for retirement and cancellation.
    routes: HashMap<RequestId, Route>,
    retire_queue: BTreeSet<(Time, RequestId)>,
    /// Configuration.
    pub config: SippConfig,
    /// Counters.
    pub stats: SippStats,
    /// High-water mark of search runtime memory (part of MC).
    pub search_peak_bytes: usize,
}

/// A maximal safe interval `[start, end]` (inclusive; `end` may be
/// `INFINITY_TIME`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    start: Time,
    end: Time,
}

#[derive(PartialEq, Eq)]
struct Node {
    f: Time,
    g: Time,
    cell: Cell,
    interval_start: Time,
}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        other
            .f
            .cmp(&self.f)
            .then(self.g.cmp(&other.g))
            .then(other.cell.cmp(&self.cell))
    }
}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl SippPlanner {
    /// Create a SIPP planner.
    pub fn new(matrix: WarehouseMatrix, config: SippConfig) -> Self {
        SippPlanner {
            matrix,
            blocks: HashMap::new(),
            motions: HashSet::new(),
            routes: HashMap::new(),
            retire_queue: BTreeSet::new(),
            config,
            stats: SippStats::default(),
            search_peak_bytes: 0,
        }
    }

    /// Number of active committed routes.
    pub fn active_routes(&self) -> usize {
        self.routes.len()
    }

    /// The safe interval of `cell` containing `t`, or `None` when `t` is
    /// reserved.
    fn interval_at(&self, cell: Cell, t: Time) -> Option<Interval> {
        let Some(blocked) = self.blocks.get(&cell) else {
            return Some(Interval {
                start: 0,
                end: INFINITY_TIME,
            });
        };
        if blocked.contains(&t) {
            return None;
        }
        let start = blocked.range(..t).next_back().map_or(0, |&b| b + 1);
        let end = blocked.range(t..).next().map_or(INFINITY_TIME, |&b| b - 1);
        Some(Interval { start, end })
    }

    /// Whether the motion `from → to` departing at `t` swaps with a
    /// committed route.
    #[inline]
    fn swap_blocked(&self, from: Cell, to: Cell, t: Time) -> bool {
        self.motions.contains(&(to, from, t))
    }

    /// SIPP search from `start` to `goal` departing no earlier than
    /// `depart`.
    fn search(&mut self, start: Cell, goal: Cell, depart: Time) -> Option<Route> {
        // Postpone a contested departure, like the other baselines.
        let mut depart = depart;
        let deadline = depart + self.config.max_depart_delay;
        let start_interval = loop {
            match self.interval_at(start, depart) {
                Some(iv) => break iv,
                None => {
                    depart += 1;
                    if depart > deadline {
                        return None;
                    }
                }
            }
        };
        if start == goal {
            return Some(Route::stationary(depart, start));
        }

        let mut open = BinaryHeap::new();
        // Best arrival per (cell, interval-start).
        let mut best: HashMap<(Cell, Time), Time> = HashMap::new();
        // Parent: (cell, interval) → (prev cell, prev interval, departure).
        let mut parent: HashMap<(Cell, Time), (Cell, Time, Time)> = HashMap::new();
        open.push(Node {
            f: depart + start.manhattan(goal),
            g: depart,
            cell: start,
            interval_start: start_interval.start,
        });
        best.insert((start, start_interval.start), depart);
        let mut expansions = 0usize;

        while let Some(Node {
            g,
            cell,
            interval_start,
            ..
        }) = open.pop()
        {
            expansions += 1;
            if expansions > self.config.max_expansions {
                break;
            }
            if best.get(&(cell, interval_start)) != Some(&g) {
                continue; // stale
            }
            if cell == goal {
                self.stats.expansions += expansions;
                self.track_peak(&open, &best);
                return Some(self.reconstruct(&parent, start, depart, cell, interval_start, g));
            }
            if g - depart >= self.config.horizon {
                continue;
            }
            let interval_end = self.interval_at(cell, g).map_or(g, |iv| iv.end);
            for n in self.matrix.neighbors(cell) {
                if !(self.matrix.is_free(n) || n == goal) {
                    continue;
                }
                // Departure window: while we remain inside our interval and
                // the arrival (τ+1) can fall inside one of n's intervals.
                let latest_depart = interval_end.min(g + self.config.horizon);
                let mut arrive_from = g + 1;
                // Enumerate n's safe intervals overlapping the window.
                while arrive_from <= latest_depart.saturating_add(1) {
                    let Some(iv) = self.next_interval(n, arrive_from) else {
                        break;
                    };
                    if iv.start > latest_depart + 1 {
                        break;
                    }
                    let mut tau = iv.start.max(g + 1) - 1; // departure time
                                                           // Skip over swap conflicts while staying in both windows.
                    while tau <= latest_depart && tau < iv.end && self.swap_blocked(cell, n, tau) {
                        tau += 1;
                    }
                    if tau <= latest_depart && tau < iv.end && !self.swap_blocked(cell, n, tau) {
                        let arrival = tau + 1;
                        let key = (n, iv.start);
                        if best.get(&key).is_none_or(|&b| arrival < b) {
                            best.insert(key, arrival);
                            parent.insert(key, (cell, interval_start, tau));
                            open.push(Node {
                                f: arrival + n.manhattan(goal),
                                g: arrival,
                                cell: n,
                                interval_start: iv.start,
                            });
                        }
                    }
                    if iv.end == INFINITY_TIME {
                        break;
                    }
                    arrive_from = iv.end + 2; // first instant of the next interval region
                }
            }
            self.track_peak(&open, &best);
        }
        self.stats.expansions += expansions;
        None
    }

    /// First safe interval of `cell` whose end is ≥ `from` (i.e. the
    /// interval containing `from`, or the next one after it).
    fn next_interval(&self, cell: Cell, from: Time) -> Option<Interval> {
        let Some(blocked) = self.blocks.get(&cell) else {
            return Some(Interval {
                start: 0,
                end: INFINITY_TIME,
            });
        };
        let mut cur = from;
        loop {
            if !blocked.contains(&cur) {
                let start = blocked.range(..cur).next_back().map_or(0, |&b| b + 1);
                let end = blocked
                    .range(cur..)
                    .next()
                    .map_or(INFINITY_TIME, |&b| b - 1);
                return Some(Interval { start, end });
            }
            // `cur` is blocked: jump past the contiguous blocked run.
            let mut b = cur;
            for &next in blocked.range(cur..) {
                if next == b || next == b + 1 {
                    b = next;
                } else {
                    break;
                }
            }
            cur = b.checked_add(1)?;
        }
    }

    fn reconstruct(
        &self,
        parent: &HashMap<(Cell, Time), (Cell, Time, Time)>,
        start: Cell,
        depart: Time,
        goal: Cell,
        goal_interval: Time,
        arrival: Time,
    ) -> Route {
        // Walk back collecting (cell, arrival, departure) hops.
        let mut hops = vec![(goal, arrival)];
        let mut key = (goal, goal_interval);
        let mut departures = Vec::new();
        while let Some(&(pc, pi, tau)) = parent.get(&key) {
            departures.push(tau);
            let p_arrival = tau; // we waited at pc until tau, then moved
            hops.push((pc, p_arrival));
            key = (pc, pi);
            if pc == start && parent.get(&key).is_none() {
                break;
            }
        }
        hops.reverse();
        departures.reverse();
        // Expand into a per-second grid sequence.
        let mut grids = Vec::new();
        let mut t = depart;
        let mut cur = start;
        grids.push(cur);
        for (i, &(next_cell, _)) in hops.iter().enumerate().skip(1) {
            let tau = departures[i - 1];
            while t < tau {
                grids.push(cur);
                t += 1;
            }
            grids.push(next_cell);
            cur = next_cell;
            t += 1;
        }
        Route::new(depart, grids)
    }

    fn track_peak(&mut self, open: &BinaryHeap<Node>, best: &HashMap<(Cell, Time), Time>) {
        let bytes = open.len() * core::mem::size_of::<Node>() + memory::hashmap_bytes(best);
        self.search_peak_bytes = self.search_peak_bytes.max(bytes);
    }

    fn commit(&mut self, id: RequestId, route: &Route) {
        for (t, cell) in route.occupancy() {
            self.blocks.entry(cell).or_default().insert(t);
        }
        for (k, w) in route.grids.windows(2).enumerate() {
            if w[0] != w[1] {
                self.motions.insert((w[0], w[1], route.start + k as Time));
            }
        }
        self.retire_queue.insert((route.end_time(), id));
        self.routes.insert(id, route.clone());
    }

    fn release(&mut self, id: RequestId) -> bool {
        let Some(route) = self.routes.remove(&id) else {
            return false;
        };
        self.retire_queue.remove(&(route.end_time(), id));
        for (t, cell) in route.occupancy() {
            if let Some(b) = self.blocks.get_mut(&cell) {
                b.remove(&t);
                if b.is_empty() {
                    self.blocks.remove(&cell);
                }
            }
        }
        for (k, w) in route.grids.windows(2).enumerate() {
            if w[0] != w[1] {
                self.motions.remove(&(w[0], w[1], route.start + k as Time));
            }
        }
        true
    }
}

impl SpeculativePlanner for SippPlanner {
    fn fork(&self) -> Self {
        self.clone()
    }

    fn plan_candidate(&mut self, req: &Request) -> Option<Route> {
        self.search(req.origin, req.destination, req.t)
    }

    fn adopt(&mut self, id: RequestId, route: &Route) {
        self.commit(id, route);
    }
}

impl Planner for SippPlanner {
    fn name(&self) -> &'static str {
        "SIPP"
    }

    fn plan(&mut self, req: &Request) -> PlanOutcome {
        match self.search(req.origin, req.destination, req.t) {
            Some(route) => {
                debug_assert!(route.validate(&self.matrix).is_ok());
                self.commit(req.id, &route);
                self.stats.planned += 1;
                PlanOutcome::Planned(route)
            }
            None => PlanOutcome::Infeasible,
        }
    }

    fn advance(&mut self, now: Time) -> Vec<(RequestId, Route)> {
        while let Some(&(end, id)) = self.retire_queue.iter().next() {
            if end >= now {
                break;
            }
            self.release(id);
        }
        Vec::new()
    }

    fn cancel(&mut self, id: RequestId) -> bool {
        self.release(id)
    }

    fn memory_bytes(&self) -> usize {
        let blocks: usize = self
            .blocks
            .values()
            .map(memory::btreeset_bytes)
            .sum::<usize>()
            + memory::hashmap_bytes(&self.blocks);
        let routes: usize = self.routes.values().map(|r| r.memory_bytes()).sum();
        blocks
            + memory::hashset_bytes(&self.motions)
            + routes
            + memory::hashmap_bytes(&self.routes)
            + memory::btreeset_bytes(&self.retire_queue)
            + self.search_peak_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carp_warehouse::collision::validate_routes;
    use carp_warehouse::layout::LayoutConfig;
    use carp_warehouse::tasks::generate_requests;
    use carp_warehouse::QueryKind;

    #[test]
    fn straight_line_when_empty() {
        let m = WarehouseMatrix::empty(5, 10);
        let mut sipp = SippPlanner::new(m.clone(), SippConfig::default());
        let r = sipp
            .plan(&Request::new(
                0,
                3,
                Cell::new(2, 0),
                Cell::new(2, 9),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("route");
        assert_eq!(r.start, 3);
        assert_eq!(r.duration(), 9);
        assert!(r.validate(&m).is_ok());
    }

    #[test]
    fn waits_out_a_crossing_sweep() {
        let m = WarehouseMatrix::empty(6, 6);
        let mut sipp = SippPlanner::new(m.clone(), SippConfig::default());
        // Sweep down column 3 during t=0..5.
        let sweep = sipp
            .plan(&Request::new(
                0,
                0,
                Cell::new(0, 3),
                Cell::new(5, 3),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("sweep");
        let crosser = sipp
            .plan(&Request::new(
                1,
                0,
                Cell::new(2, 0),
                Cell::new(2, 5),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("crosser");
        assert_eq!(validate_routes(&[sweep, crosser.clone()]), None);
        assert!(crosser.validate(&m).is_ok());
    }

    #[test]
    fn swap_conflicts_are_avoided() {
        let m = WarehouseMatrix::empty(2, 8);
        let mut sipp = SippPlanner::new(m, SippConfig::default());
        let east = sipp
            .plan(&Request::new(
                0,
                0,
                Cell::new(0, 0),
                Cell::new(0, 7),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("east");
        let west = sipp
            .plan(&Request::new(
                1,
                0,
                Cell::new(0, 7),
                Cell::new(0, 0),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("west");
        assert_eq!(validate_routes(&[east, west]), None);
    }

    #[test]
    fn dense_stream_is_collision_free() {
        let layout = LayoutConfig::small().generate();
        let mut sipp = SippPlanner::new(layout.matrix.clone(), SippConfig::default());
        let mut routes = Vec::new();
        for req in generate_requests(&layout, 90, 4.0, 2025) {
            if let PlanOutcome::Planned(r) = sipp.plan(&req) {
                assert!(r.validate(&layout.matrix).is_ok());
                routes.push(r);
            }
        }
        assert!(routes.len() >= 88, "only {} planned", routes.len());
        assert_eq!(validate_routes(&routes), None);
    }

    #[test]
    fn interval_computation_matches_blocks() {
        let m = WarehouseMatrix::empty(2, 2);
        let mut sipp = SippPlanner::new(m, SippConfig::default());
        let c = Cell::new(0, 0);
        sipp.blocks.entry(c).or_default().extend([3u32, 4, 9]);
        assert_eq!(sipp.interval_at(c, 0), Some(Interval { start: 0, end: 2 }));
        assert_eq!(sipp.interval_at(c, 3), None);
        assert_eq!(sipp.interval_at(c, 5), Some(Interval { start: 5, end: 8 }));
        assert_eq!(
            sipp.interval_at(c, 10),
            Some(Interval {
                start: 10,
                end: INFINITY_TIME
            })
        );
        assert_eq!(
            sipp.next_interval(c, 3),
            Some(Interval { start: 5, end: 8 })
        );
        assert_eq!(
            sipp.next_interval(c, 9),
            Some(Interval {
                start: 10,
                end: INFINITY_TIME
            })
        );
    }

    #[test]
    fn retirement_and_cancellation_release_blocks() {
        let m = WarehouseMatrix::empty(1, 6);
        let mut sipp = SippPlanner::new(m, SippConfig::default());
        sipp.plan(&Request::new(
            0,
            0,
            Cell::new(0, 0),
            Cell::new(0, 5),
            QueryKind::Pickup,
        ));
        assert_eq!(sipp.active_routes(), 1);
        assert!(sipp.cancel(0));
        assert!(sipp.blocks.is_empty());
        assert!(sipp.motions.is_empty());
        // And again via advance().
        sipp.plan(&Request::new(
            1,
            0,
            Cell::new(0, 0),
            Cell::new(0, 5),
            QueryKind::Pickup,
        ));
        sipp.advance(100);
        assert_eq!(sipp.active_routes(), 0);
        assert!(sipp.blocks.is_empty());
    }

    #[test]
    fn sipp_matches_sap_route_lengths() {
        use crate::sap::SapPlanner;
        use carp_spacetime::AStarConfig;
        let layout = LayoutConfig::small().generate();
        let requests = generate_requests(&layout, 50, 2.0, 404);
        let mut sipp = SippPlanner::new(layout.matrix.clone(), SippConfig::default());
        let mut sap = SapPlanner::new(layout.matrix.clone(), AStarConfig::default());
        let (mut a, mut b) = (0u64, 0u64);
        for req in &requests {
            if let (Some(x), Some(y)) = (sipp.plan(req).route(), sap.plan(req).route()) {
                a += x.finish_exclusive() as u64;
                b += y.finish_exclusive() as u64;
            }
        }
        let gap = (a as f64 - b as f64).abs() / b as f64;
        assert!(
            gap < 0.02,
            "SIPP vs SAP completion gap {gap:.4} ({a} vs {b})"
        );
    }
}
