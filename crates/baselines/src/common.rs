//! Bookkeeping shared by all grid-level baseline planners: committed
//! routes, their reservations, and retirement of finished routes.

use carp_spacetime::ReservationTable;
use carp_warehouse::memory;
use carp_warehouse::request::RequestId;
use carp_warehouse::route::Route;
use carp_warehouse::types::Time;
use std::collections::{BTreeSet, HashMap};

/// Committed-route registry backed by a reservation table.
#[derive(Debug, Default, Clone)]
pub struct Commitments {
    /// Active routes by request id.
    routes: HashMap<RequestId, Route>,
    /// Space-time reservations of all active routes.
    pub reservations: ReservationTable,
    retire_queue: BTreeSet<(Time, RequestId)>,
    /// Exclusive hard-layer horizon each windowed route was booked under
    /// (`Time::MAX` for plain commits).
    hard_until: HashMap<RequestId, Time>,
}

impl Commitments {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Commit a fully-checked route: store it and reserve its occupancy
    /// entirely in the hard layer.
    pub fn commit(&mut self, id: RequestId, route: Route) {
        self.commit_windowed(id, route, 0, Time::MAX);
    }

    /// Commit a windowed route: keys at `t < hard_until` are hard
    /// (exclusive — the search verified them free), the optimistic tail
    /// beyond is booked in the soft multi-owner layer. Keys at
    /// `t < active_from` are travelled history and are not booked (see
    /// [`ReservationTable::reserve_windowed`]); the stored route still
    /// carries its full prefix for repairs and revisions.
    pub fn commit_windowed(
        &mut self,
        id: RequestId,
        route: Route,
        active_from: Time,
        hard_until: Time,
    ) {
        self.reservations
            .reserve_windowed(&route, id, active_from, hard_until);
        self.book(id, route, hard_until);
    }

    /// Re-commit a withdrawn route exactly as it was held before (failed
    /// window repair): same layers, no new optimism counted, history
    /// before `active_from` dropped.
    pub fn restore(&mut self, id: RequestId, route: Route, active_from: Time, hard_until: Time) {
        self.reservations
            .restore_windowed(&route, id, active_from, hard_until);
        self.book(id, route, hard_until);
    }

    fn book(&mut self, id: RequestId, route: Route, hard_until: Time) {
        self.retire_queue.insert((route.end_time(), id));
        self.routes.insert(id, route);
        self.hard_until.insert(id, hard_until);
    }

    /// The hard-layer horizon `id` was last booked under.
    pub fn hard_until(&self, id: RequestId) -> Option<Time> {
        self.hard_until.get(&id).copied()
    }

    /// Remove a route (e.g. before replanning it). Returns the route.
    pub fn withdraw(&mut self, id: RequestId) -> Option<Route> {
        let route = self.routes.remove(&id)?;
        self.reservations.release(&route, id);
        self.retire_queue.remove(&(route.end_time(), id));
        self.hard_until.remove(&id);
        Some(route)
    }

    /// Retire every route that finished strictly before `now`, returning
    /// the ids of the routes actually retired so callers can clean up their
    /// per-route bookkeeping (e.g. provenance maps).
    pub fn retire_before(&mut self, now: Time) -> Vec<RequestId> {
        let mut retired = Vec::new();
        while let Some(&(end, id)) = self.retire_queue.iter().next() {
            if end >= now {
                break;
            }
            self.retire_queue.remove(&(end, id));
            if let Some(route) = self.routes.remove(&id) {
                self.reservations.release(&route, id);
                self.hard_until.remove(&id);
                retired.push(id);
            }
        }
        retired
    }

    /// The active route for `id`, if any.
    pub fn route(&self, id: RequestId) -> Option<&Route> {
        self.routes.get(&id)
    }

    /// Iterate active `(id, route)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&RequestId, &Route)> {
        self.routes.iter()
    }

    /// Ids of active routes that conflict with `candidate`.
    pub fn conflicting_ids(&self, candidate: &Route) -> Vec<RequestId> {
        let mut ids: Vec<RequestId> = self
            .routes
            .iter()
            .filter(|(_, r)| carp_warehouse::collision::first_conflict(candidate, r).is_some())
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Cumulative soft-layer (beyond-window) bookings (see
    /// [`ReservationTable::soft_bookings`]).
    pub fn soft_bookings(&self) -> u64 {
        self.reservations.soft_bookings()
    }

    /// Soft bookings at `t < window_end` — optimism a repair round should
    /// already have promoted into the hard layer (see
    /// [`ReservationTable::window_debt`]).
    pub fn window_debt(&self, window_end: Time) -> u64 {
        self.reservations.window_debt(window_end)
    }

    /// Number of active routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether no routes are active.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Estimated heap bytes: stored grid sequences + reservations — the
    /// grid-level cost SRP's segment representation avoids (§VIII-B).
    pub fn memory_bytes(&self) -> usize {
        let routes: usize = self.routes.values().map(|r| r.memory_bytes()).sum();
        routes
            + memory::hashmap_bytes(&self.routes)
            + self.reservations.memory_bytes()
            + memory::btreeset_bytes(&self.retire_queue)
            + memory::hashmap_bytes(&self.hard_until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carp_warehouse::types::Cell;

    fn route(start: Time, cols: core::ops::Range<u16>) -> Route {
        Route::new(start, cols.map(|c| Cell::new(0, c)).collect())
    }

    #[test]
    fn commit_withdraw_roundtrip() {
        let mut c = Commitments::new();
        c.commit(1, route(0, 0..5));
        assert_eq!(c.len(), 1);
        assert!(!c.reservations.vertex_free(Cell::new(0, 2), 2));
        let r = c.withdraw(1).expect("present");
        assert_eq!(r.duration(), 4);
        assert!(c.is_empty());
        assert!(c.reservations.is_empty());
    }

    #[test]
    fn retire_respects_end_times() {
        let mut c = Commitments::new();
        c.commit(1, route(0, 0..3)); // ends at t=2
        c.commit(2, route(0, 5..10)); // ends at t=4
        assert_eq!(c.retire_before(3), vec![1]);
        assert_eq!(c.len(), 1);
        assert!(c.route(1).is_none());
        assert!(c.route(2).is_some());
        assert_eq!(c.retire_before(5), vec![2]);
        assert!(c.is_empty());
    }

    #[test]
    fn conflicting_ids_finds_offenders() {
        let mut c = Commitments::new();
        c.commit(7, route(0, 0..5));
        c.commit(9, Route::new(0, vec![Cell::new(3, 3)]));
        // Head-on along row 0.
        let candidate = Route::new(0, (0..5).rev().map(|x| Cell::new(0, x)).collect());
        assert_eq!(c.conflicting_ids(&candidate), vec![7]);
    }

    #[test]
    fn memory_scales_with_routes() {
        let mut c = Commitments::new();
        let empty = c.memory_bytes();
        for i in 0..20 {
            c.commit(i, route(i as Time, 0..30));
        }
        assert!(c.memory_bytes() > empty + 20 * 30 * 4);
    }
}
