//! Bookkeeping shared by all grid-level baseline planners: committed
//! routes, their reservations, and retirement of finished routes.

use carp_spacetime::ReservationTable;
use carp_warehouse::memory;
use carp_warehouse::request::RequestId;
use carp_warehouse::route::Route;
use carp_warehouse::types::Time;
use std::collections::{BTreeSet, HashMap};

/// Committed-route registry backed by a reservation table.
#[derive(Debug, Default, Clone)]
pub struct Commitments {
    /// Active routes by request id.
    routes: HashMap<RequestId, Route>,
    /// Space-time reservations of all active routes.
    pub reservations: ReservationTable,
    retire_queue: BTreeSet<(Time, RequestId)>,
}

impl Commitments {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Commit a route: store it and reserve its occupancy.
    pub fn commit(&mut self, id: RequestId, route: Route) {
        self.reservations.reserve(&route, id);
        self.retire_queue.insert((route.end_time(), id));
        self.routes.insert(id, route);
    }

    /// Remove a route (e.g. before replanning it). Returns the route.
    pub fn withdraw(&mut self, id: RequestId) -> Option<Route> {
        let route = self.routes.remove(&id)?;
        self.reservations.release(&route, id);
        self.retire_queue.remove(&(route.end_time(), id));
        Some(route)
    }

    /// Retire every route that finished strictly before `now`, returning
    /// the ids of the routes actually retired so callers can clean up their
    /// per-route bookkeeping (e.g. provenance maps).
    pub fn retire_before(&mut self, now: Time) -> Vec<RequestId> {
        let mut retired = Vec::new();
        while let Some(&(end, id)) = self.retire_queue.iter().next() {
            if end >= now {
                break;
            }
            self.retire_queue.remove(&(end, id));
            if let Some(route) = self.routes.remove(&id) {
                self.reservations.release(&route, id);
                retired.push(id);
            }
        }
        retired
    }

    /// The active route for `id`, if any.
    pub fn route(&self, id: RequestId) -> Option<&Route> {
        self.routes.get(&id)
    }

    /// Iterate active `(id, route)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&RequestId, &Route)> {
        self.routes.iter()
    }

    /// Ids of active routes that conflict with `candidate`.
    pub fn conflicting_ids(&self, candidate: &Route) -> Vec<RequestId> {
        let mut ids: Vec<RequestId> = self
            .routes
            .iter()
            .filter(|(_, r)| carp_warehouse::collision::first_conflict(candidate, r).is_some())
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Cumulative reservation-table double-booking overwrites (see
    /// [`ReservationTable::reservation_repairs`]).
    pub fn reservation_repairs(&self) -> u64 {
        self.reservations.reservation_repairs()
    }

    /// Number of active routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether no routes are active.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Estimated heap bytes: stored grid sequences + reservations — the
    /// grid-level cost SRP's segment representation avoids (§VIII-B).
    pub fn memory_bytes(&self) -> usize {
        let routes: usize = self.routes.values().map(|r| r.memory_bytes()).sum();
        routes
            + memory::hashmap_bytes(&self.routes)
            + self.reservations.memory_bytes()
            + memory::btreeset_bytes(&self.retire_queue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carp_warehouse::types::Cell;

    fn route(start: Time, cols: core::ops::Range<u16>) -> Route {
        Route::new(start, cols.map(|c| Cell::new(0, c)).collect())
    }

    #[test]
    fn commit_withdraw_roundtrip() {
        let mut c = Commitments::new();
        c.commit(1, route(0, 0..5));
        assert_eq!(c.len(), 1);
        assert!(!c.reservations.vertex_free(Cell::new(0, 2), 2));
        let r = c.withdraw(1).expect("present");
        assert_eq!(r.duration(), 4);
        assert!(c.is_empty());
        assert!(c.reservations.is_empty());
    }

    #[test]
    fn retire_respects_end_times() {
        let mut c = Commitments::new();
        c.commit(1, route(0, 0..3)); // ends at t=2
        c.commit(2, route(0, 5..10)); // ends at t=4
        assert_eq!(c.retire_before(3), vec![1]);
        assert_eq!(c.len(), 1);
        assert!(c.route(1).is_none());
        assert!(c.route(2).is_some());
        assert_eq!(c.retire_before(5), vec![2]);
        assert!(c.is_empty());
    }

    #[test]
    fn conflicting_ids_finds_offenders() {
        let mut c = Commitments::new();
        c.commit(7, route(0, 0..5));
        c.commit(9, Route::new(0, vec![Cell::new(3, 3)]));
        // Head-on along row 0.
        let candidate = Route::new(0, (0..5).rev().map(|x| Cell::new(0, x)).collect());
        assert_eq!(c.conflicting_ids(&candidate), vec![7]);
    }

    #[test]
    fn memory_scales_with_routes() {
        let mut c = Commitments::new();
        let empty = c.memory_bytes();
        for i in 0..20 {
            c.commit(i, route(i as Time, 0..30));
        }
        assert!(c.memory_bytes() > empty + 20 * 30 * 4);
    }
}
