//! Baseline online CARP planners from the literature, re-implemented for
//! the paper's evaluation (§VIII-A):
//!
//! * [`sap::SapPlanner`] — **SAP**, prioritized space-time A\* over the
//!   full 3-D search space;
//! * [`rp::RpPlanner`] — **RP** (Švancara et al. \[3\]), optimistic shortest
//!   paths with joint CBS replanning of conflicting groups;
//! * [`twp::TwpPlanner`] — **TWP** (Li et al. \[5\]), sliding-time-window
//!   collision resolution with periodic route repair;
//! * [`acp::AcpPlanner`] — **ACP** (Shi et al. \[6\]), cached spatial
//!   shortest paths walked greedily with waits;
//! * [`sipp::SippPlanner`] — **SIPP** (Phillips & Likhachev), an extension
//!   baseline beyond the paper: safe-interval accelerated prioritized
//!   planning, the strongest classical grid-level comparator.
//!
//! All of them implement [`carp_warehouse::Planner`] and are audited by the
//! same ground-truth collision validator as SRP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acp;
pub mod common;
pub mod rp;
pub mod sap;
pub mod sipp;
pub mod twp;

pub use acp::{AcpConfig, AcpPlanner, AcpStats};
pub use rp::{RpConfig, RpPlanner, RpStats};
pub use sap::SapPlanner;
pub use sipp::{SippConfig, SippPlanner, SippStats};
pub use twp::{TwpConfig, TwpPlanner, TwpStats};
