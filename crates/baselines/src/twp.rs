//! TWP — Time-Windowed Planning (Li et al. \[5\], §VIII-A).
//!
//! Instead of resolving collisions over a route's entire lifetime, TWP
//! resolves them only within a sliding time window of `w` steps (the RHCR
//! scheme): routes are planned with reservations enforced for `t <
//! window_end` and optimistically (traffic-free) beyond. Every `h = w/2`
//! steps the window slides and all active routes are *repaired*: their
//! travelled prefixes are kept, and their remaining tails are replanned
//! under the new window. The repairs are reported as route revisions from
//! [`Planner::advance`].
//!
//! Reservations mirror the window split: keys inside a route's planning
//! window live in the reservation table's exclusive hard layer (a
//! cross-owner overwrite there is a bug and asserts), while the optimistic
//! beyond-window tail is booked in the soft multi-owner layer. Each slide
//! *promotes* a route's soft tail into the new window's hard layer by
//! replanning it; a failed repair keeps the route under its old hard
//! horizon, leaving the unpromoted tail as measurable *window debt* rather
//! than silently overwriting peers' bookings.
//!
//! This is the paper's state-of-the-art efficiency baseline for fewer than
//! 1,000 robots.

use crate::common::Commitments;
use carp_spacetime::{AStarConfig, SpaceTimeAStar};
use carp_warehouse::matrix::WarehouseMatrix;
use carp_warehouse::memory;
use carp_warehouse::planner::{EngineMetrics, PlanOutcome, Planner};
use carp_warehouse::request::{Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::types::{Cell, Time};
use std::collections::HashMap;

/// TWP configuration.
#[derive(Debug, Clone, Copy)]
pub struct TwpConfig {
    /// Collision-resolution window length `w` in time steps.
    pub window: Time,
    /// Replan period `h` (the window slides every `h` steps); `h ≤ w`.
    pub period: Time,
    /// Underlying search limits.
    pub astar: AStarConfig,
}

impl Default for TwpConfig {
    fn default() -> Self {
        TwpConfig {
            window: 24,
            period: 12,
            astar: AStarConfig::default(),
        }
    }
}

/// Counters for the TWP planner.
#[derive(Debug, Default, Clone, Copy)]
pub struct TwpStats {
    /// Window-slide repair rounds executed.
    pub repair_rounds: usize,
    /// Individual route repairs performed.
    pub repairs: usize,
    /// Repairs that failed (route kept, robot waits in place).
    pub failed_repairs: usize,
}

/// The TWP planner.
#[derive(Debug)]
pub struct TwpPlanner {
    matrix: WarehouseMatrix,
    astar: SpaceTimeAStar,
    commitments: Commitments,
    config: TwpConfig,
    /// Absolute time of the next scheduled repair round (always a multiple
    /// of `period`, so gaps in `advance` calls cannot drift the slide off
    /// the RHCR schedule).
    next_repair: Time,
    /// Exclusive hard-layer horizon of the most recent repair round: every
    /// reservation below it is supposed to be promoted (hard); soft
    /// bookings still below it are window debt from failed repairs.
    repair_horizon: Time,
    /// Provenance of each active route: the window (repair-round ordinal)
    /// it was planned under, updated whenever a slide repairs its tail.
    provenance: HashMap<RequestId, String>,
    /// Counters.
    pub stats: TwpStats,
    /// High-water mark of search runtime memory.
    pub search_peak_bytes: usize,
}

impl TwpPlanner {
    /// Create a TWP planner.
    pub fn new(matrix: WarehouseMatrix, config: TwpConfig) -> Self {
        assert!(config.period > 0 && config.period <= config.window);
        TwpPlanner {
            matrix,
            astar: SpaceTimeAStar::new(config.astar),
            commitments: Commitments::new(),
            config,
            next_repair: 0,
            repair_horizon: 0,
            provenance: HashMap::new(),
            stats: TwpStats::default(),
            search_peak_bytes: 0,
        }
    }

    /// Number of active committed routes.
    pub fn active_routes(&self) -> usize {
        self.commitments.len()
    }

    /// Iterate the active committed `(id, route)` pairs — the set the
    /// window-consistency invariant quantifies over.
    pub fn active(&self) -> impl Iterator<Item = (&RequestId, &Route)> {
        self.commitments.iter()
    }

    /// Exclusive hard-layer horizon a route planned/repaired at `now` is
    /// booked under: the search verifies every key at `t <= now + window`
    /// (the collision horizon), so exactly those go to the hard layer.
    fn hard_until(&self, now: Time) -> Time {
        now + self.config.window + 1
    }

    fn windowed_plan(&mut self, start: Cell, goal: Cell, depart: Time, now: Time) -> Option<Route> {
        self.astar.config.collision_horizon = Some(now + self.config.window);
        let r = self.astar.plan(
            &self.matrix,
            &self.commitments.reservations,
            None,
            start,
            goal,
            depart,
        );
        self.search_peak_bytes = self.search_peak_bytes.max(self.astar.stats.peak_bytes);
        r
    }

    /// Slide the window: repair every active route whose tail may now hold
    /// unresolved conflicts, promoting its soft (beyond-window) bookings
    /// into the hard layer of the new window. Returns the revisions.
    fn repair_round(&mut self, now: Time) -> Vec<(RequestId, Route)> {
        self.stats.repair_rounds += 1;
        let hard_until = self.hard_until(now);
        self.repair_horizon = hard_until;
        let mut ids: Vec<RequestId> = self.commitments.iter().map(|(&id, _)| id).collect();
        ids.sort_unstable();
        let mut revisions = Vec::new();
        for id in ids {
            let old_hard = self.commitments.hard_until(id).unwrap_or(0);
            let Some(old) = self.commitments.withdraw(id) else {
                continue;
            };
            if old.end_time() <= now {
                // Already finished (or finishing now): keep as is, under
                // the layering it already holds.
                self.commitments.restore(id, old, now, old_hard);
                continue;
            }
            self.stats.repairs += 1;
            let (prefix, start, depart) = if old.start >= now {
                (None, old.origin(), old.start)
            } else {
                let done = (now - old.start) as usize;
                (
                    Some(Route::new(old.start, old.grids[..=done].to_vec())),
                    old.grids[done],
                    now,
                )
            };
            let goal = old.destination();
            // Repairs must anchor at the robot's physical position: no
            // departure postponement.
            let saved_delay = self.astar.config.max_depart_delay;
            self.astar.config.max_depart_delay = 0;
            let tail = self.windowed_plan(start, goal, depart, now);
            self.astar.config.max_depart_delay = saved_delay;
            match tail {
                Some(tail) => {
                    let full = match prefix {
                        Some(mut p) => {
                            p.chain(&tail);
                            p
                        }
                        None => tail,
                    };
                    let changed = full != old;
                    // Promote-on-slide: the repaired route's keys up to the
                    // new window end were verified free against both layers,
                    // so they enter the hard layer; only the tail beyond the
                    // new window stays soft.
                    self.commitments
                        .commit_windowed(id, full.clone(), now, hard_until);
                    self.provenance.insert(
                        id,
                        format!(
                            "window {} (tail repaired at t={now})",
                            self.stats.repair_rounds
                        ),
                    );
                    if changed {
                        revisions.push((id, full));
                    }
                }
                None => {
                    // Could not repair: keep the old route under its *old*
                    // hard horizon — its unpromoted tail stays in the soft
                    // multi-owner layer (window debt) instead of stealing
                    // peers' hard keys, and the restore counts no new
                    // optimism, so a repeating failure cannot ping-pong the
                    // metrics. The conflict is retried next round.
                    self.stats.failed_repairs += 1;
                    self.commitments.restore(id, old, now, old_hard);
                }
            }
        }
        revisions
    }
}

impl Planner for TwpPlanner {
    fn name(&self) -> &'static str {
        "TWP"
    }

    fn plan(&mut self, req: &Request) -> PlanOutcome {
        match self.windowed_plan(req.origin, req.destination, req.t, req.t) {
            Some(route) => {
                let hard_until = self.hard_until(req.t);
                self.commitments
                    .commit_windowed(req.id, route.clone(), req.t, hard_until);
                self.provenance.insert(
                    req.id,
                    format!(
                        "window {} (planned at t={})",
                        self.stats.repair_rounds, req.t
                    ),
                );
                PlanOutcome::Planned(route)
            }
            None => PlanOutcome::Infeasible,
        }
    }

    fn advance(&mut self, now: Time) -> Vec<(RequestId, Route)> {
        for id in self.commitments.retire_before(now) {
            self.provenance.remove(&id);
        }
        if now >= self.next_repair {
            // Align the next slide to the RHCR schedule (multiples of the
            // period): a gap in `advance` calls — e.g. service deadline
            // sheds — must not drift every subsequent repair round.
            self.next_repair = (now / self.config.period + 1) * self.config.period;
            self.repair_round(now)
        } else {
            Vec::new()
        }
    }

    fn next_wakeup(&self) -> Option<Time> {
        // The repair cadence only matters while routes are committed; an
        // idle planner asks for no wake-ups (this is also what lets an
        // event-driven driver terminate).
        (!self.commitments.is_empty()).then_some(self.next_repair)
    }

    fn provenance(&self, id: RequestId) -> Option<String> {
        self.provenance.get(&id).cloned()
    }

    fn engine_metrics(&self) -> Option<EngineMetrics> {
        // TWP has no segment-store engine, but its optimistic beyond-window
        // commits populate the reservation table's soft layer by design:
        // `soft_bookings` sizes that optimism, and `window_debt` counts the
        // soft bookings the last slide should have promoted into the hard
        // layer but could not (failed repairs). Hard-layer exclusivity
        // itself is asserted in the table, not counted here.
        Some(EngineMetrics {
            soft_bookings: self.commitments.soft_bookings(),
            window_debt: self.commitments.window_debt(self.repair_horizon),
            ..EngineMetrics::default()
        })
    }

    fn cancel(&mut self, id: RequestId) -> bool {
        let cancelled = self.commitments.withdraw(id).is_some();
        if cancelled {
            self.provenance.remove(&id);
        }
        cancelled
    }

    fn memory_bytes(&self) -> usize {
        // The paper's MC includes "runtime space consumption during
        // execution": the search high-water is part of the footprint.
        self.commitments.memory_bytes()
            + self
                .provenance
                .values()
                .map(|s| s.capacity())
                .sum::<usize>()
            + memory::hashmap_bytes(&self.provenance)
            + self.search_peak_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carp_warehouse::collision::{first_conflict, validate_routes};
    use carp_warehouse::layout::LayoutConfig;
    use carp_warehouse::tasks::generate_requests;
    use carp_warehouse::QueryKind;
    use std::collections::HashMap;

    /// Drive a request stream through the simulator protocol: advance to
    /// each arrival time (applying revisions), then plan.
    fn run_stream(twp: &mut TwpPlanner, requests: &[Request], horizon: Time) -> Vec<Route> {
        let mut routes: HashMap<RequestId, Route> = HashMap::new();
        let mut next = 0usize;
        for now in 0..=horizon {
            for (id, revised) in twp.advance(now) {
                routes.insert(id, revised);
            }
            while next < requests.len() && requests[next].t <= now {
                if let PlanOutcome::Planned(r) = twp.plan(&requests[next]) {
                    routes.insert(requests[next].id, r);
                }
                next += 1;
            }
        }
        routes.into_values().collect()
    }

    #[test]
    fn window_defers_far_conflicts() {
        let m = WarehouseMatrix::empty(2, 40);
        let mut twp = TwpPlanner::new(
            m,
            TwpConfig {
                window: 8,
                period: 4,
                ..Default::default()
            },
        );
        // Two head-on robots far apart: the conflict is ~20 steps away,
        // beyond the window, so both initially get straight routes.
        let r1 = twp
            .plan(&Request::new(
                0,
                0,
                Cell::new(0, 0),
                Cell::new(0, 39),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("r1");
        let r2 = twp
            .plan(&Request::new(
                1,
                0,
                Cell::new(0, 39),
                Cell::new(0, 0),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("r2");
        assert_eq!(r1.duration(), 39);
        assert_eq!(r2.duration(), 39);
        assert!(
            first_conflict(&r1, &r2).is_some(),
            "unresolved beyond window"
        );
    }

    #[test]
    fn repairs_resolve_deferred_conflicts_in_time() {
        let m = WarehouseMatrix::empty(3, 30);
        let mut twp = TwpPlanner::new(
            m,
            TwpConfig {
                window: 10,
                period: 5,
                ..Default::default()
            },
        );
        let reqs = [
            Request::new(0, 0, Cell::new(1, 0), Cell::new(1, 29), QueryKind::Pickup),
            Request::new(1, 0, Cell::new(1, 29), Cell::new(1, 0), QueryKind::Pickup),
        ];
        let routes = run_stream(&mut twp, &reqs, 120);
        assert_eq!(routes.len(), 2);
        assert_eq!(validate_routes(&routes), None, "window repairs failed");
        assert!(twp.stats.repair_rounds > 0);
    }

    #[test]
    fn dense_stream_final_routes_are_collision_free() {
        let layout = LayoutConfig::small().generate();
        let mut twp = TwpPlanner::new(layout.matrix.clone(), TwpConfig::default());
        let requests = generate_requests(&layout, 60, 2.0, 31);
        let horizon = requests.last().unwrap().t + 200;
        let routes = run_stream(&mut twp, &requests, horizon);
        assert!(routes.len() >= 58);
        assert_eq!(validate_routes(&routes), None);
    }

    /// The steal-then-release hole, end to end: A commits a corridor, B's
    /// optimistic beyond-window commit shares A's keys (soft co-booking),
    /// B is cancelled — and a third robot planned straight at the shared
    /// cell must still be kept out of A's corridor. On the old
    /// single-owner table B's commit overwrote A's keys and B's release
    /// deleted them, so C was planned straight through A.
    #[test]
    fn cancelled_peer_leaves_victim_corridor_protected() {
        let m = WarehouseMatrix::empty(3, 21);
        let mut twp = TwpPlanner::new(
            m,
            TwpConfig {
                window: 4,
                period: 2,
                ..Default::default()
            },
        );
        // A sweeps row 0 left-to-right: position (0, t) at time t.
        let ra = twp
            .plan(&Request::new(
                0,
                0,
                Cell::new(0, 0),
                Cell::new(0, 20),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("ra");
        // B head-on: meets A at (0,10) at t=10, far beyond both windows, so
        // both book the shared key optimistically (legal soft co-booking).
        let rb = twp
            .plan(&Request::new(
                1,
                0,
                Cell::new(0, 20),
                Cell::new(0, 0),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("rb");
        assert!(first_conflict(&ra, &rb).is_some(), "co-booking expected");
        let metrics = twp.engine_metrics().expect("twp reports metrics");
        assert!(metrics.soft_bookings > 0, "optimism must be visible");
        // B aborts its task; its release must not unprotect A.
        assert!(twp.cancel(1));
        // C wants to sit exactly on A's (0,10) at t=10, inside C's window.
        let rc = twp
            .plan(&Request::new(
                2,
                9,
                Cell::new(1, 10),
                Cell::new(0, 10),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("rc");
        assert_ne!(
            rc.position_at(10),
            Some(Cell::new(0, 10)),
            "C was planned straight through A's committed corridor"
        );
        assert!(
            first_conflict(&ra, &rc).is_none(),
            "C must be planned around A's surviving reservation"
        );
    }

    /// A repeatedly failing repair (two head-on robots cornered in a
    /// 1-wide corridor) recommits the same route every round. The restore
    /// must be metric-neutral: an all-failures round books no new
    /// optimism, while the unpromoted tail shows up as window debt.
    #[test]
    fn failed_repair_rounds_do_not_inflate_soft_bookings() {
        let m = WarehouseMatrix::empty(1, 30);
        let mut twp = TwpPlanner::new(
            m,
            TwpConfig {
                window: 8,
                period: 4,
                // Bound the exhaustive searches of the cornered robots.
                astar: AStarConfig {
                    horizon: 64,
                    ..AStarConfig::default()
                },
            },
        );
        twp.plan(&Request::new(
            0,
            0,
            Cell::new(0, 0),
            Cell::new(0, 20),
            QueryKind::Pickup,
        ))
        .route()
        .expect("r0");
        twp.plan(&Request::new(
            1,
            0,
            Cell::new(0, 20),
            Cell::new(0, 0),
            QueryKind::Pickup,
        ))
        .route()
        .expect("r1");
        let mut max_debt = 0;
        for now in 0..=40 {
            let before = (twp.stats.repairs, twp.stats.failed_repairs);
            let soft_before = twp.engine_metrics().unwrap().soft_bookings;
            twp.advance(now);
            let attempted = twp.stats.repairs - before.0;
            let failed = twp.stats.failed_repairs - before.1;
            let metrics = twp.engine_metrics().unwrap();
            max_debt = max_debt.max(metrics.window_debt);
            if attempted > 0 && attempted == failed {
                assert_eq!(
                    metrics.soft_bookings, soft_before,
                    "an all-failures round at t={now} booked new optimism"
                );
            }
        }
        assert!(
            twp.stats.failed_repairs > 0,
            "the cornered corridor must force failed repairs"
        );
        assert!(
            max_debt > 0,
            "failed repairs must surface as past-due window debt"
        );
    }

    /// A gap in `advance` calls (e.g. service deadline sheds) must not
    /// drift the slide schedule: repair rounds stay aligned to multiples
    /// of the period.
    #[test]
    fn advance_gap_keeps_repairs_on_the_period_grid() {
        let m = WarehouseMatrix::empty(3, 10);
        let mut twp = TwpPlanner::new(
            m,
            TwpConfig {
                window: 10,
                period: 5,
                ..Default::default()
            },
        );
        twp.advance(0);
        assert_eq!(twp.stats.repair_rounds, 1);
        // Nothing advances for 13 steps; the round fires late...
        twp.advance(13);
        assert_eq!(twp.stats.repair_rounds, 2);
        // ...but the next one is due at t=15 (the grid), not t=13+5=18.
        twp.advance(14);
        assert_eq!(twp.stats.repair_rounds, 2);
        twp.advance(15);
        assert_eq!(twp.stats.repair_rounds, 3, "slide drifted off the grid");
        twp.advance(19);
        assert_eq!(twp.stats.repair_rounds, 3);
        twp.advance(20);
        assert_eq!(twp.stats.repair_rounds, 4);
    }

    #[test]
    fn repair_preserves_travelled_prefix() {
        let m = WarehouseMatrix::empty(3, 30);
        let mut twp = TwpPlanner::new(
            m,
            TwpConfig {
                window: 10,
                period: 5,
                ..Default::default()
            },
        );
        let r0 = twp
            .plan(&Request::new(
                0,
                0,
                Cell::new(1, 0),
                Cell::new(1, 29),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("r0");
        twp.plan(&Request::new(
            1,
            0,
            Cell::new(1, 29),
            Cell::new(1, 0),
            QueryKind::Pickup,
        ));
        // Slide the window at t=5 and capture the revision for robot 0.
        let revisions = twp.advance(5);
        for (id, revised) in revisions {
            if id == 0 {
                for t in 0..=5 {
                    assert_eq!(
                        revised.position_at(t),
                        r0.position_at(t),
                        "prefix changed at {t}"
                    );
                }
            }
        }
    }
}
