//! TWP — Time-Windowed Planning (Li et al. \[5\], §VIII-A).
//!
//! Instead of resolving collisions over a route's entire lifetime, TWP
//! resolves them only within a sliding time window of `w` steps (the RHCR
//! scheme): routes are planned with reservations enforced for `t <
//! window_end` and optimistically (traffic-free) beyond. Every `h = w/2`
//! steps the window slides and all active routes are *repaired*: their
//! travelled prefixes are kept, and their remaining tails are replanned
//! under the new window. The repairs are reported as route revisions from
//! [`Planner::advance`].
//!
//! This is the paper's state-of-the-art efficiency baseline for fewer than
//! 1,000 robots.

use crate::common::Commitments;
use carp_spacetime::{AStarConfig, SpaceTimeAStar};
use carp_warehouse::matrix::WarehouseMatrix;
use carp_warehouse::memory;
use carp_warehouse::planner::{EngineMetrics, PlanOutcome, Planner};
use carp_warehouse::request::{Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::types::{Cell, Time};
use std::collections::HashMap;

/// TWP configuration.
#[derive(Debug, Clone, Copy)]
pub struct TwpConfig {
    /// Collision-resolution window length `w` in time steps.
    pub window: Time,
    /// Replan period `h` (the window slides every `h` steps); `h ≤ w`.
    pub period: Time,
    /// Underlying search limits.
    pub astar: AStarConfig,
}

impl Default for TwpConfig {
    fn default() -> Self {
        TwpConfig {
            window: 24,
            period: 12,
            astar: AStarConfig::default(),
        }
    }
}

/// Counters for the TWP planner.
#[derive(Debug, Default, Clone, Copy)]
pub struct TwpStats {
    /// Window-slide repair rounds executed.
    pub repair_rounds: usize,
    /// Individual route repairs performed.
    pub repairs: usize,
    /// Repairs that failed (route kept, robot waits in place).
    pub failed_repairs: usize,
}

/// The TWP planner.
#[derive(Debug)]
pub struct TwpPlanner {
    matrix: WarehouseMatrix,
    astar: SpaceTimeAStar,
    commitments: Commitments,
    config: TwpConfig,
    /// Absolute time of the next scheduled repair round.
    next_repair: Time,
    /// Provenance of each active route: the window (repair-round ordinal)
    /// it was planned under, updated whenever a slide repairs its tail.
    provenance: HashMap<RequestId, String>,
    /// Counters.
    pub stats: TwpStats,
    /// High-water mark of search runtime memory.
    pub search_peak_bytes: usize,
}

impl TwpPlanner {
    /// Create a TWP planner.
    pub fn new(matrix: WarehouseMatrix, config: TwpConfig) -> Self {
        assert!(config.period > 0 && config.period <= config.window);
        TwpPlanner {
            matrix,
            astar: SpaceTimeAStar::new(config.astar),
            commitments: Commitments::new(),
            config,
            next_repair: 0,
            provenance: HashMap::new(),
            stats: TwpStats::default(),
            search_peak_bytes: 0,
        }
    }

    /// Number of active committed routes.
    pub fn active_routes(&self) -> usize {
        self.commitments.len()
    }

    fn windowed_plan(&mut self, start: Cell, goal: Cell, depart: Time, now: Time) -> Option<Route> {
        self.astar.config.collision_horizon = Some(now + self.config.window);
        let r = self.astar.plan(
            &self.matrix,
            &self.commitments.reservations,
            None,
            start,
            goal,
            depart,
        );
        self.search_peak_bytes = self.search_peak_bytes.max(self.astar.stats.peak_bytes);
        r
    }

    /// Slide the window: repair every active route whose tail may now hold
    /// unresolved conflicts. Returns the revisions.
    fn repair_round(&mut self, now: Time) -> Vec<(RequestId, Route)> {
        self.stats.repair_rounds += 1;
        let mut ids: Vec<RequestId> = self.commitments.iter().map(|(&id, _)| id).collect();
        ids.sort_unstable();
        let mut revisions = Vec::new();
        for id in ids {
            let Some(old) = self.commitments.withdraw(id) else {
                continue;
            };
            if old.end_time() <= now {
                // Already finished (or finishing now): keep as is.
                self.commitments.commit(id, old);
                continue;
            }
            self.stats.repairs += 1;
            let (prefix, start, depart) = if old.start >= now {
                (None, old.origin(), old.start)
            } else {
                let done = (now - old.start) as usize;
                (
                    Some(Route::new(old.start, old.grids[..=done].to_vec())),
                    old.grids[done],
                    now,
                )
            };
            let goal = old.destination();
            // Repairs must anchor at the robot's physical position: no
            // departure postponement.
            let saved_delay = self.astar.config.max_depart_delay;
            self.astar.config.max_depart_delay = 0;
            let tail = self.windowed_plan(start, goal, depart, now);
            self.astar.config.max_depart_delay = saved_delay;
            match tail {
                Some(tail) => {
                    let full = match prefix {
                        Some(mut p) => {
                            p.chain(&tail);
                            p
                        }
                        None => tail,
                    };
                    let changed = full != old;
                    self.commitments.commit(id, full.clone());
                    self.provenance.insert(
                        id,
                        format!(
                            "window {} (tail repaired at t={now})",
                            self.stats.repair_rounds
                        ),
                    );
                    if changed {
                        revisions.push((id, full));
                    }
                }
                None => {
                    // Could not repair: keep the old (window-valid) route;
                    // its conflicts, if any, sit beyond the window and will
                    // be retried next round.
                    self.stats.failed_repairs += 1;
                    self.commitments.commit(id, old);
                }
            }
        }
        revisions
    }
}

impl Planner for TwpPlanner {
    fn name(&self) -> &'static str {
        "TWP"
    }

    fn plan(&mut self, req: &Request) -> PlanOutcome {
        match self.windowed_plan(req.origin, req.destination, req.t, req.t) {
            Some(route) => {
                self.commitments.commit(req.id, route.clone());
                self.provenance.insert(
                    req.id,
                    format!(
                        "window {} (planned at t={})",
                        self.stats.repair_rounds, req.t
                    ),
                );
                PlanOutcome::Planned(route)
            }
            None => PlanOutcome::Infeasible,
        }
    }

    fn advance(&mut self, now: Time) -> Vec<(RequestId, Route)> {
        for id in self.commitments.retire_before(now) {
            self.provenance.remove(&id);
        }
        if now >= self.next_repair {
            self.next_repair = now + self.config.period;
            self.repair_round(now)
        } else {
            Vec::new()
        }
    }

    fn provenance(&self, id: RequestId) -> Option<String> {
        self.provenance.get(&id).cloned()
    }

    fn engine_metrics(&self) -> Option<EngineMetrics> {
        // TWP has no segment-store engine, but its optimistic beyond-window
        // commits double-book the reservation table by design; surfacing the
        // repair count keeps the window-consistency gap visible now that the
        // table no longer asserts on dense streams (see ROADMAP).
        Some(EngineMetrics {
            reservation_repairs: self.commitments.reservation_repairs(),
            ..EngineMetrics::default()
        })
    }

    fn cancel(&mut self, id: RequestId) -> bool {
        let cancelled = self.commitments.withdraw(id).is_some();
        if cancelled {
            self.provenance.remove(&id);
        }
        cancelled
    }

    fn memory_bytes(&self) -> usize {
        // The paper's MC includes "runtime space consumption during
        // execution": the search high-water is part of the footprint.
        self.commitments.memory_bytes()
            + self
                .provenance
                .values()
                .map(|s| s.capacity())
                .sum::<usize>()
            + memory::hashmap_bytes(&self.provenance)
            + self.search_peak_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carp_warehouse::collision::{first_conflict, validate_routes};
    use carp_warehouse::layout::LayoutConfig;
    use carp_warehouse::tasks::generate_requests;
    use carp_warehouse::QueryKind;
    use std::collections::HashMap;

    /// Drive a request stream through the simulator protocol: advance to
    /// each arrival time (applying revisions), then plan.
    fn run_stream(twp: &mut TwpPlanner, requests: &[Request], horizon: Time) -> Vec<Route> {
        let mut routes: HashMap<RequestId, Route> = HashMap::new();
        let mut next = 0usize;
        for now in 0..=horizon {
            for (id, revised) in twp.advance(now) {
                routes.insert(id, revised);
            }
            while next < requests.len() && requests[next].t <= now {
                if let PlanOutcome::Planned(r) = twp.plan(&requests[next]) {
                    routes.insert(requests[next].id, r);
                }
                next += 1;
            }
        }
        routes.into_values().collect()
    }

    #[test]
    fn window_defers_far_conflicts() {
        let m = WarehouseMatrix::empty(2, 40);
        let mut twp = TwpPlanner::new(
            m,
            TwpConfig {
                window: 8,
                period: 4,
                ..Default::default()
            },
        );
        // Two head-on robots far apart: the conflict is ~20 steps away,
        // beyond the window, so both initially get straight routes.
        let r1 = twp
            .plan(&Request::new(
                0,
                0,
                Cell::new(0, 0),
                Cell::new(0, 39),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("r1");
        let r2 = twp
            .plan(&Request::new(
                1,
                0,
                Cell::new(0, 39),
                Cell::new(0, 0),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("r2");
        assert_eq!(r1.duration(), 39);
        assert_eq!(r2.duration(), 39);
        assert!(
            first_conflict(&r1, &r2).is_some(),
            "unresolved beyond window"
        );
    }

    #[test]
    fn repairs_resolve_deferred_conflicts_in_time() {
        let m = WarehouseMatrix::empty(3, 30);
        let mut twp = TwpPlanner::new(
            m,
            TwpConfig {
                window: 10,
                period: 5,
                ..Default::default()
            },
        );
        let reqs = [
            Request::new(0, 0, Cell::new(1, 0), Cell::new(1, 29), QueryKind::Pickup),
            Request::new(1, 0, Cell::new(1, 29), Cell::new(1, 0), QueryKind::Pickup),
        ];
        let routes = run_stream(&mut twp, &reqs, 120);
        assert_eq!(routes.len(), 2);
        assert_eq!(validate_routes(&routes), None, "window repairs failed");
        assert!(twp.stats.repair_rounds > 0);
    }

    #[test]
    fn dense_stream_final_routes_are_collision_free() {
        let layout = LayoutConfig::small().generate();
        let mut twp = TwpPlanner::new(layout.matrix.clone(), TwpConfig::default());
        let requests = generate_requests(&layout, 60, 2.0, 31);
        let horizon = requests.last().unwrap().t + 200;
        let routes = run_stream(&mut twp, &requests, horizon);
        assert!(routes.len() >= 58);
        assert_eq!(validate_routes(&routes), None);
    }

    #[test]
    fn repair_preserves_travelled_prefix() {
        let m = WarehouseMatrix::empty(3, 30);
        let mut twp = TwpPlanner::new(
            m,
            TwpConfig {
                window: 10,
                period: 5,
                ..Default::default()
            },
        );
        let r0 = twp
            .plan(&Request::new(
                0,
                0,
                Cell::new(1, 0),
                Cell::new(1, 29),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("r0");
        twp.plan(&Request::new(
            1,
            0,
            Cell::new(1, 29),
            Cell::new(1, 0),
            QueryKind::Pickup,
        ));
        // Slide the window at t=5 and capture the revision for robot 0.
        let revisions = twp.advance(5);
        for (id, revised) in revisions {
            if id == 0 {
                for t in 0..=5 {
                    assert_eq!(
                        revised.position_at(t),
                        r0.position_at(t),
                        "prefix changed at {t}"
                    );
                }
            }
        }
    }
}
