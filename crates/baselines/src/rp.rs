//! RP — Replanning (Švancara et al. \[3\], §VIII-A).
//!
//! For each new request, first plan the shortest route *ignoring* other
//! robots. If it conflicts with committed routes, gather the conflicting
//! group and replan it jointly — together with the new request — using an
//! offline optimal method (Conflict-Based Search \[2\]). Replanned robots
//! keep their already-travelled prefixes; only their futures change, which
//! the planner reports as route revisions. When CBS exhausts its budget the
//! planner degrades to prioritized space-time A\* for the new request only.

use crate::common::Commitments;
use carp_spacetime::cbs::{CbsAgent, CbsConfig, CbsSolver};
use carp_spacetime::{ReservationTable, SpaceTimeAStar};
use carp_warehouse::matrix::WarehouseMatrix;
use carp_warehouse::memory;
use carp_warehouse::planner::{EngineMetrics, PlanOutcome, Planner};
use carp_warehouse::request::{Request, RequestId};
use carp_warehouse::route::Route;
use carp_warehouse::types::Time;
use std::collections::HashMap;

/// RP configuration.
#[derive(Debug, Clone, Copy)]
pub struct RpConfig {
    /// CBS budget for joint replanning.
    pub cbs: CbsConfig,
    /// Largest group size CBS will attempt; bigger groups degrade to
    /// prioritized planning immediately.
    pub max_group: usize,
}

impl Default for RpConfig {
    fn default() -> Self {
        // CBS low-level searches get tighter budgets than plain prioritized
        // planning: replanned tails are short and a stuck branch must fail
        // fast so the planner can degrade to prioritized A* (the behaviour
        // that makes RP slow-but-bounded in the paper's evaluation).
        let mut cbs = CbsConfig {
            max_nodes: 128,
            ..CbsConfig::default()
        };
        cbs.astar.max_expansions = 50_000;
        cbs.astar.horizon = 1024;
        RpConfig { cbs, max_group: 6 }
    }
}

/// Counters for the RP planner.
#[derive(Debug, Default, Clone, Copy)]
pub struct RpStats {
    /// Requests planned without any conflict.
    pub conflict_free: usize,
    /// Joint CBS replans performed.
    pub replans: usize,
    /// Times CBS failed and prioritized A\* took over.
    pub cbs_bailouts: usize,
}

/// The RP planner.
#[derive(Debug)]
pub struct RpPlanner {
    matrix: WarehouseMatrix,
    astar: SpaceTimeAStar,
    cbs: CbsSolver,
    commitments: Commitments,
    config: RpConfig,
    /// Route revisions produced by joint replanning, delivered on the next
    /// [`Planner::advance`] call.
    pending_revisions: Vec<(RequestId, Route)>,
    /// Provenance of each active route: which code path committed it, and
    /// for CBS replans the full group of jointly replanned request ids.
    provenance: HashMap<RequestId, String>,
    /// Counters.
    pub stats: RpStats,
    /// High-water mark of search runtime memory.
    pub search_peak_bytes: usize,
}

impl RpPlanner {
    /// Create an RP planner.
    pub fn new(matrix: WarehouseMatrix, config: RpConfig) -> Self {
        // Replanned robots are mid-flight: their tails must start exactly at
        // the truncation instant, so the joint solver may never postpone a
        // departure (a contested start fails the CBS branch instead, and the
        // planner degrades to prioritized A*).
        let mut cbs_cfg = config.cbs;
        cbs_cfg.astar.max_depart_delay = 0;
        RpPlanner {
            matrix,
            astar: SpaceTimeAStar::new(config.cbs.astar),
            cbs: CbsSolver::new(cbs_cfg),
            commitments: Commitments::new(),
            config,
            pending_revisions: Vec::new(),
            provenance: HashMap::new(),
            stats: RpStats::default(),
            search_peak_bytes: 0,
        }
    }

    /// Render the id list of a CBS replanning group (the new request plus
    /// every jointly replanned robot), sorted for stable output.
    fn group_label(req: RequestId, group: &[RequestId]) -> String {
        let mut ids: Vec<RequestId> = Vec::with_capacity(group.len() + 1);
        ids.push(req);
        ids.extend_from_slice(group);
        ids.sort_unstable();
        let mut label = String::from("cbs group [");
        for (i, id) in ids.iter().enumerate() {
            if i > 0 {
                label.push(',');
            }
            label.push_str(&id.to_string());
        }
        label.push(']');
        label
    }

    /// Number of active committed routes.
    pub fn active_routes(&self) -> usize {
        self.commitments.len()
    }

    /// Plan ignoring all other robots (the optimistic first attempt).
    fn plan_ignoring_traffic(&mut self, req: &Request) -> Option<Route> {
        let empty = ReservationTable::new();
        let r = self.astar.plan(
            &self.matrix,
            &empty,
            None,
            req.origin,
            req.destination,
            req.t,
        );
        self.search_peak_bytes = self.search_peak_bytes.max(self.astar.stats.peak_bytes);
        r
    }

    /// Prioritized fallback: avoid everything that is committed.
    fn plan_prioritized(&mut self, req: &Request) -> Option<Route> {
        let r = self.astar.plan(
            &self.matrix,
            &self.commitments.reservations,
            None,
            req.origin,
            req.destination,
            req.t,
        );
        self.search_peak_bytes = self.search_peak_bytes.max(self.astar.stats.peak_bytes);
        r
    }

    /// Jointly replan `group` (existing ids) together with the new request.
    /// Returns the new route for the request on success; revisions for the
    /// group are queued internally.
    fn replan_group(&mut self, req: &Request, group: &[RequestId]) -> Option<Route> {
        // Withdraw group routes, split them into past prefix + future need.
        let now = req.t;
        let mut agents = vec![CbsAgent {
            start: req.origin,
            goal: req.destination,
            depart: now,
        }];
        let mut withdrawn: Vec<(RequestId, Route, Option<Route>)> = Vec::new();
        for &id in group {
            let Some(old) = self.commitments.withdraw(id) else {
                continue;
            };
            let (prefix, start, depart) = if old.start >= now {
                (None, old.origin(), old.start)
            } else {
                let done = (now - old.start) as usize;
                let prefix = Route::new(old.start, old.grids[..=done].to_vec());
                (Some(prefix), old.grids[done], now)
            };
            agents.push(CbsAgent {
                start,
                goal: old.destination(),
                depart,
            });
            withdrawn.push((id, old, prefix));
        }

        let solved = self
            .cbs
            .solve(&self.matrix, &self.commitments.reservations, &agents);
        self.search_peak_bytes = self.search_peak_bytes.max(self.cbs.stats.peak_bytes);

        let Some(mut routes) = solved else {
            // Joint replanning failed: restore the original routes untouched
            // and let the caller degrade to prioritized planning.
            for (id, old, _) in withdrawn {
                self.commitments.commit(id, old);
            }
            return None;
        };
        let new_route = routes.remove(0);
        let label = Self::group_label(req.id, group);
        for ((id, _, prefix), tail) in withdrawn.into_iter().zip(routes) {
            let full = match prefix {
                Some(mut p) => {
                    // max_depart_delay = 0 guarantees the tail starts exactly
                    // where and when the prefix ends.
                    p.chain(&tail);
                    p
                }
                None => tail,
            };
            self.commitments.commit(id, full.clone());
            self.provenance.insert(id, format!("{label} (revised)"));
            self.pending_revisions.push((id, full));
        }
        Some(new_route)
    }
}

impl Planner for RpPlanner {
    fn name(&self) -> &'static str {
        "RP"
    }

    fn plan(&mut self, req: &Request) -> PlanOutcome {
        let optimistic = self.plan_ignoring_traffic(req);
        let (route, label) = match optimistic {
            Some(candidate) => {
                let conflicts = self.commitments.conflicting_ids(&candidate);
                if conflicts.is_empty() {
                    self.stats.conflict_free += 1;
                    (Some(candidate), String::from("conflict-free"))
                } else if conflicts.len() <= self.config.max_group {
                    self.stats.replans += 1;
                    match self.replan_group(req, &conflicts) {
                        Some(r) => (Some(r), Self::group_label(req.id, &conflicts)),
                        None => {
                            self.stats.cbs_bailouts += 1;
                            (
                                self.plan_prioritized(req),
                                String::from("prioritized fallback (cbs bailout)"),
                            )
                        }
                    }
                } else {
                    self.stats.cbs_bailouts += 1;
                    (
                        self.plan_prioritized(req),
                        format!(
                            "prioritized fallback (group of {} too large)",
                            conflicts.len()
                        ),
                    )
                }
            }
            None => (None, String::new()),
        };
        match route {
            Some(route) => {
                self.commitments.commit(req.id, route.clone());
                self.provenance.insert(req.id, label);
                PlanOutcome::Planned(route)
            }
            None => PlanOutcome::Infeasible,
        }
    }

    fn advance(&mut self, now: Time) -> Vec<(RequestId, Route)> {
        for id in self.commitments.retire_before(now) {
            self.provenance.remove(&id);
        }
        core::mem::take(&mut self.pending_revisions)
    }

    fn provenance(&self, id: RequestId) -> Option<String> {
        self.provenance.get(&id).cloned()
    }

    fn engine_metrics(&self) -> Option<EngineMetrics> {
        // RP resolves every conflict before committing (CBS joint replans
        // and the prioritized fallback both avoid the full table), so all
        // its bookings live in the exclusive hard layer and the soft-layer
        // counters must read zero; surfacing them keeps that invariant
        // visible in the day report.
        Some(EngineMetrics {
            soft_bookings: self.commitments.soft_bookings(),
            window_debt: 0,
            ..EngineMetrics::default()
        })
    }

    fn cancel(&mut self, id: RequestId) -> bool {
        let cancelled = self.commitments.withdraw(id).is_some();
        if cancelled {
            self.provenance.remove(&id);
        }
        cancelled
    }

    fn memory_bytes(&self) -> usize {
        // The paper's MC includes "runtime space consumption during
        // execution": the search high-water is part of the footprint.
        self.commitments.memory_bytes()
            + self
                .pending_revisions
                .iter()
                .map(|(_, r)| r.memory_bytes())
                .sum::<usize>()
            + self
                .provenance
                .values()
                .map(|s| s.capacity())
                .sum::<usize>()
            + memory::hashmap_bytes(&self.provenance)
            + self.search_peak_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carp_warehouse::collision::validate_routes;
    use carp_warehouse::layout::LayoutConfig;
    use carp_warehouse::tasks::generate_requests;
    use carp_warehouse::types::Cell;
    use carp_warehouse::QueryKind;
    use std::collections::HashMap;

    /// Run a request stream, applying revisions like the simulator would,
    /// and return the final routes.
    fn run_stream(rp: &mut RpPlanner, requests: &[Request]) -> Vec<Route> {
        let mut routes: HashMap<RequestId, Route> = HashMap::new();
        for req in requests {
            if let PlanOutcome::Planned(r) = rp.plan(req) {
                routes.insert(req.id, r);
            }
            for (id, revised) in rp.advance(req.t) {
                routes.insert(id, revised);
            }
        }
        routes.into_values().collect()
    }

    #[test]
    fn conflict_free_stream_never_replans() {
        let m = WarehouseMatrix::empty(8, 8);
        let mut rp = RpPlanner::new(m, RpConfig::default());
        // Two robots on disjoint rows.
        let reqs = [
            Request::new(0, 0, Cell::new(0, 0), Cell::new(0, 7), QueryKind::Pickup),
            Request::new(1, 0, Cell::new(7, 0), Cell::new(7, 7), QueryKind::Pickup),
        ];
        let routes = run_stream(&mut rp, &reqs);
        assert_eq!(routes.len(), 2);
        assert_eq!(rp.stats.conflict_free, 2);
        assert_eq!(rp.stats.replans, 0);
        assert_eq!(validate_routes(&routes), None);
    }

    #[test]
    fn crossing_triggers_joint_replan() {
        let m = WarehouseMatrix::empty(5, 5);
        let mut rp = RpPlanner::new(m, RpConfig::default());
        let reqs = [
            Request::new(0, 0, Cell::new(2, 0), Cell::new(2, 4), QueryKind::Pickup),
            Request::new(1, 0, Cell::new(0, 2), Cell::new(4, 2), QueryKind::Pickup),
        ];
        let routes = run_stream(&mut rp, &reqs);
        assert_eq!(routes.len(), 2);
        assert!(rp.stats.replans >= 1, "crossing must force a replan");
        assert_eq!(validate_routes(&routes), None);
    }

    #[test]
    fn mid_flight_replan_preserves_prefix() {
        let m = WarehouseMatrix::empty(5, 9);
        let mut rp = RpPlanner::new(m, RpConfig::default());
        // Robot 0 sweeps row 2 starting t=0.
        let r0 = rp
            .plan(&Request::new(
                0,
                0,
                Cell::new(2, 0),
                Cell::new(2, 8),
                QueryKind::Pickup,
            ))
            .route()
            .cloned()
            .expect("r0");
        // At t=3, a crossing request conflicts with r0's future.
        let req1 = Request::new(1, 3, Cell::new(0, 6), Cell::new(4, 6), QueryKind::Pickup);
        let r1 = rp.plan(&req1).route().cloned().expect("r1");
        let revisions = rp.advance(3);
        let r0_final = revisions
            .iter()
            .find(|(id, _)| *id == 0)
            .map(|(_, r)| r.clone())
            .unwrap_or(r0.clone());
        // The prefix up to t=3 must be untouched.
        for t in 0..=3 {
            assert_eq!(
                r0_final.position_at(t),
                r0.position_at(t),
                "prefix changed at t={t}"
            );
        }
        assert_eq!(validate_routes(&[r0_final, r1]), None);
    }

    #[test]
    fn dense_stream_is_collision_free() {
        let layout = LayoutConfig::small().generate();
        let mut rp = RpPlanner::new(layout.matrix.clone(), RpConfig::default());
        let requests = generate_requests(&layout, 70, 4.0, 13);
        let routes = run_stream(&mut rp, &requests);
        assert!(routes.len() >= 68);
        assert_eq!(validate_routes(&routes), None);
    }
}
